"""The monitor loop: source → pipeline → incident log, forever.

:func:`run_monitor` wires a :class:`~repro.pipeline.sources.Source`
into the two-stage analysis pipeline (windowed Stemming, TAMP
annotation), persists every emitted window report to the checkpoint
store's incident log, folds reports into an incident tracker, keeps
the metrics registry current, and checkpoints at quiescent points.

Determinism boundary — what resume restores bit-identically:
everything that reaches the incident log (window fingerprints, ranked
stems, TAMP annotations), the pipeline/window/TAMP state behind it,
and the managed incident lifecycle (the
:class:`~repro.incidents.manager.IncidentManager` snapshot rides in
every checkpoint, and the sqlite store is re-synced from it on resume
so a crash/resume run ends with byte-identical incident ids, states
and timestamps). What it deliberately does not restore: the legacy
incident *tracker* (its lifecycle state is an operator-facing live
view, rebuilt from the reports that replay after resume) and the
metrics registry (a resumed process is a new process; its counters
say so).

Crash semantics, used by the chaos tests: a
:class:`~repro.testkit.crash.CrashPlan` fires *after* a batch is
pumped but *before* its outputs are persisted or checkpointed — the
worst legal moment. ``max_events`` stops the run the same hard way
(no flush, no final checkpoint), which is how the CI smoke job
simulates a kill it can later resume from.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional

from repro.incidents.exporter import IncidentExporter
from repro.incidents.manager import IncidentManager, IncidentPolicy
from repro.incidents.store import INCIDENT_DB, IncidentStore
from repro.mrt.ingest import IngestReport
from repro.pipeline.checkpoint import (
    CheckpointError,
    CheckpointState,
    CheckpointStore,
)
from repro.pipeline.metrics import MetricsRegistry
from repro.pipeline.runtime import Pipeline, iter_batches
from repro.pipeline.sources import Pacer, Source
from repro.pipeline.windows import (
    TampAnnotator,
    WindowedStemmer,
    WindowReport,
    WindowState,
)
from repro.stemming.detector import DetectorReport
from repro.stemming.tracker import IncidentTracker
from repro.testkit.crash import CrashPlan


@dataclass(frozen=True)
class MonitorConfig:
    """Everything that shapes a monitor run.

    :meth:`describe` returns the subset that determines the *output*
    (window geometry, stemming knobs, batching/backpressure); that
    subset is written into checkpoints and must match on resume.
    Operational knobs — pacing, worker count, checkpoint cadence,
    ``max_events`` — may differ between the original run and the
    resume without affecting bit-identity.
    """

    window: float = 300.0
    slide: Optional[float] = None
    batch_size: int = 256
    max_queue: int = 64
    policy: str = "block"
    min_strength: int = 2
    max_components: int = 16
    workers: Optional[int] = None
    pace: float = 0.0
    checkpoint_every: int = 1
    keep_checkpoints: int = 3
    resolve_after: float = 600.0
    correlation_window: float = 600.0
    reopen_window: float = 900.0
    investigate_after: int = 2
    prefix_overlap: float = 0.5
    max_events: Optional[int] = None

    def incident_policy(self) -> IncidentPolicy:
        return IncidentPolicy(
            resolve_after=self.resolve_after,
            correlation_window=self.correlation_window,
            reopen_window=self.reopen_window,
            investigate_after=self.investigate_after,
            prefix_overlap=self.prefix_overlap,
            min_strength=self.min_strength,
        )

    def describe(self) -> dict[str, object]:
        return {
            "window": self.window,
            "slide": self.window if self.slide is None else self.slide,
            "batch_size": self.batch_size,
            "max_queue": self.max_queue,
            "policy": self.policy,
            "min_strength": self.min_strength,
            "max_components": self.max_components,
            # Incident-lifecycle knobs are output-shaping too: the
            # manager's state is checkpointed, so resuming under a
            # different policy would grow different incidents.
            "incidents": self.incident_policy().describe(),
        }


@dataclass
class MonitorResult:
    """What one :func:`run_monitor` call accomplished."""

    #: Window reports emitted by *this* run (a resume's list excludes
    #: windows already in the incident log before it started).
    reports: list[WindowReport]
    #: Events processed by this run.
    events: int
    #: Stream offset after the run (== total events ever processed).
    offset: int
    stats: dict[str, dict[str, int]]
    checkpoints_written: int
    #: "end" (source exhausted, flushed) or "max_events" (hard stop).
    stopped: str
    tracker: IncidentTracker = field(default_factory=IncidentTracker)
    #: The managed incident lifecycle built (or resumed) by this run.
    incidents: IncidentManager = field(default_factory=IncidentManager)

    @property
    def report_dicts(self) -> list[dict[str, object]]:
        return [report.to_dict() for report in self.reports]


def run_monitor(
    source: Source,
    config: MonitorConfig,
    *,
    checkpoint_dir: Optional[str | Path] = None,
    resume: bool = False,
    registry: Optional[MetricsRegistry] = None,
    on_report: Optional[Callable[[WindowReport], None]] = None,
    crash_plan: Optional[CrashPlan] = None,
) -> MonitorResult:
    """Run the monitor until the source ends (or a stop/crash fires)."""
    registry = registry if registry is not None else MetricsRegistry()
    store: Optional[CheckpointStore] = None
    incident_store: Optional[IncidentStore] = None
    if checkpoint_dir is not None:
        store = CheckpointStore(
            checkpoint_dir, keep=config.keep_checkpoints
        )
        incident_store = IncidentStore(store.directory / INCIDENT_DB)

    window_stage = WindowedStemmer(
        config.window,
        config.slide,
        min_strength=config.min_strength,
        max_components=config.max_components,
        workers=config.workers,
    )
    tamp_stage = TampAnnotator()
    pipeline = Pipeline(
        [window_stage, tamp_stage],
        max_queue=config.max_queue,
        policy=config.policy,
    )
    tracker = IncidentTracker(resolve_after=config.resolve_after)
    manager = IncidentManager(policy=config.incident_policy())
    registry.register_collector(IncidentExporter(manager))

    start_offset = 0
    reports_emitted = 0
    if resume:
        if store is None:
            raise CheckpointError(
                "resume requires a checkpoint directory"
            )
        state = store.latest()
        if state is None:
            # Crashed before the first checkpoint: nothing to restore,
            # so replay from the top — but wipe any incident-log lines
            # the dead run wrote, or the replay would duplicate them.
            store.truncate_reports(0)
            if incident_store is not None:
                incident_store.sync(manager, 0)
        else:
            state.matches(source.describe(), config.describe())
            window_stage.restore_state(
                WindowState.from_dict(state.window)
            )
            tamp_stage.restore_state(state.tamp)
            pipeline.restore_stats(state.stats)
            start_offset = state.offset
            reports_emitted = state.reports_emitted
            store.truncate_reports(reports_emitted)
            if state.incidents is not None:
                manager.import_state(state.incidents)
            if incident_store is not None:
                # Reconcile: a dead run may have synced rows past this
                # checkpoint; resetting to the snapshot mirrors the
                # report-log truncation above.
                incident_store.sync(manager, reports_emitted)
            if (
                state.ingest is not None
                and source.ingest_report is None
            ):
                source.ingest_report = IngestReport.from_dict(
                    state.ingest
                )

    # -- metric handles -------------------------------------------------
    events_total = registry.counter(
        "repro_pipeline_events_total", "events admitted to the pipeline"
    )
    batches_total = registry.counter(
        "repro_pipeline_batches_total", "batches pumped"
    )
    windows_total = registry.counter(
        "repro_pipeline_windows_total", "window reports emitted"
    )
    incidents_total = registry.counter(
        "repro_pipeline_incidents_total",
        "ranked incident components emitted across all windows",
    )
    dropped_total = registry.counter(
        "repro_pipeline_dropped_total",
        "items rejected by backpressure (drop policy)",
    )
    checkpoints_total = registry.counter(
        "repro_pipeline_checkpoints_total", "checkpoints written"
    )
    events_per_second = registry.gauge(
        "repro_pipeline_events_per_second",
        "events processed per wall-clock second, this run",
    )
    checkpoint_age = registry.gauge(
        "repro_pipeline_checkpoint_age_seconds",
        "seconds since the last checkpoint was written",
    )
    buffer_gauge = registry.gauge(
        "repro_pipeline_buffer_events",
        "events buffered in the current window",
    )
    routes_gauge = registry.gauge(
        "repro_pipeline_tamp_routes", "routes in the live TAMP table"
    )
    strength_gauge = registry.gauge(
        "repro_pipeline_top_strength",
        "strongest live correlation in the window buffer",
    )
    lag_histogram = registry.histogram(
        "repro_pipeline_window_lag_seconds",
        "wall-clock delay between a window closing and its report",
    )
    queue_gauges = {
        name: registry.gauge(
            f"repro_pipeline_queue_depth_{name}",
            f"queued items at the {name} stage",
        )
        for name in pipeline.depths()
    }

    pacer = Pacer(config.pace)
    clock = time.monotonic
    run_start = clock()
    last_checkpoint_clock = run_start
    checkpoints_written = 0
    prior_dropped = 0
    events_done = 0
    offset = start_offset
    run_reports: list[WindowReport] = []
    stopped = "end"

    def handle_outputs(elapsed: float) -> None:
        nonlocal reports_emitted
        for item in pipeline.take():
            assert isinstance(item, WindowReport)
            run_reports.append(item)
            reports_emitted += 1
            windows_total.inc()
            incidents_total.inc(len(item.result.components))
            lag_histogram.observe(elapsed)
            tracker.observe(
                DetectorReport(
                    at=item.end,
                    by_window={config.window: item.result},
                )
            )
            manager.ingest(item)
            if store is not None:
                store.append_report(item.to_dict())
            if on_report is not None:
                on_report(item)

    def write_checkpoint() -> None:
        nonlocal checkpoints_written, last_checkpoint_clock
        assert store is not None
        ingest = source.ingest_report
        store.save(
            CheckpointState(
                source=source.describe(),
                config=config.describe(),
                offset=offset,
                reports_emitted=reports_emitted,
                window=window_stage.export_state().to_dict(),
                tamp=tamp_stage.export_state(),
                stats=pipeline.stats(),
                ingest=None if ingest is None else ingest.to_dict(),
                incidents=manager.export_state(),
            )
        )
        if incident_store is not None:
            incident_store.sync(manager, reports_emitted)
        checkpoints_written += 1
        checkpoints_total.inc()
        last_checkpoint_clock = clock()

    def refresh_gauges() -> None:
        elapsed_run = max(clock() - run_start, 1e-9)
        events_per_second.set(events_done / elapsed_run)
        checkpoint_age.set(clock() - last_checkpoint_clock)
        buffer_gauge.set(window_stage.buffered)
        routes_gauge.set(tamp_stage.tamp.route_count())
        strength_gauge.set(window_stage.top_strength())
        for name, depth in pipeline.depths().items():
            queue_gauges[name].set(depth)

    last_checkpoint_window = window_stage.window_index
    batches = iter_batches(
        source.events(start_offset),
        batch_size=config.batch_size,
        start_offset=start_offset,
    )
    try:
        for batch in batches:
            pacer.wait_for(batch.events[-1].timestamp)
            pumped_at = clock()
            pipeline.feed(batch)
            elapsed = clock() - pumped_at
            offset = batch.end_offset
            events_done += len(batch)
            events_total.inc(len(batch))
            batches_total.inc()
            if crash_plan is not None:
                # After the pump, before persisting outputs or
                # checkpointing: the least convenient legal instant.
                crash_plan.fire(events_done)
            handle_outputs(elapsed)
            dropped_now = sum(
                s["dropped"] for s in pipeline.stats().values()
            )
            if dropped_now > prior_dropped:
                dropped_total.inc(dropped_now - prior_dropped)
                prior_dropped = dropped_now
            if (
                store is not None
                and window_stage.window_index - last_checkpoint_window
                >= config.checkpoint_every
            ):
                write_checkpoint()
                last_checkpoint_window = window_stage.window_index
            refresh_gauges()
            if (
                config.max_events is not None
                and events_done >= config.max_events
            ):
                stopped = "max_events"
                break
        else:
            flush_at = clock()
            pipeline.flush()
            handle_outputs(clock() - flush_at)
            # End of stream: every live incident is over by definition.
            # Never done on a hard stop — a killed run leaves incidents
            # live so the resume keeps growing them identically.
            manager.finalize()
            if store is not None:
                write_checkpoint()
            refresh_gauges()
    finally:
        if incident_store is not None:
            incident_store.close()

    return MonitorResult(
        reports=run_reports,
        events=events_done,
        offset=offset,
        stats=pipeline.stats(),
        checkpoints_written=checkpoints_written,
        stopped=stopped,
        tracker=tracker,
        incidents=manager,
    )
