"""Streaming monitor runtime: the paper's system as a live service.

The batch CLI answers "what happened in this archive?"; this package
answers the question the paper's deployment actually faced — "what is
happening *right now*?" — by composing the existing pieces into a
long-running pipeline:

* :mod:`repro.pipeline.sources` — where events come from: archive
  replay (MRT or JSONL, optionally paced against the wall clock),
  simulator-driven synthetic feeds, quarantine replay, in-memory
  streams.
* :mod:`repro.pipeline.runtime` — the staged pipeline: bounded
  queues, explicit backpressure, per-stage drop accounting, and a
  deterministic cooperative pump.
* :mod:`repro.pipeline.windows` — sliding-window Stemming and
  incremental TAMP annotation with bounded memory.
* :mod:`repro.pipeline.checkpoint` — periodic JSON snapshots plus the
  JSONL incident log; resume is bit-identical, verified by window
  fingerprints.
* :mod:`repro.pipeline.metrics` — counters/gauges/histograms with a
  JSON snapshot and a plain-text scrape endpoint.
* :mod:`repro.pipeline.monitor` — the loop tying it together, exposed
  on the CLI as ``repro monitor``.
"""

from repro.pipeline.checkpoint import (
    CheckpointError,
    CheckpointState,
    CheckpointStore,
)
from repro.pipeline.metrics import MetricsRegistry, MetricsServer
from repro.pipeline.monitor import (
    MonitorConfig,
    MonitorResult,
    run_monitor,
)
from repro.pipeline.runtime import (
    Batch,
    FunctionStage,
    Pipeline,
    Stage,
    iter_batches,
)
from repro.pipeline.sources import (
    FileSource,
    Pacer,
    QuarantineSource,
    ShardView,
    Source,
    StreamSource,
    SyntheticSource,
    shard_for_peer,
)
from repro.pipeline.windows import (
    TampAnnotator,
    WindowedStemmer,
    WindowReport,
)

__all__ = [
    "Batch",
    "CheckpointError",
    "CheckpointState",
    "CheckpointStore",
    "FileSource",
    "FunctionStage",
    "MetricsRegistry",
    "MetricsServer",
    "MonitorConfig",
    "MonitorResult",
    "Pacer",
    "Pipeline",
    "QuarantineSource",
    "ShardView",
    "Source",
    "Stage",
    "StreamSource",
    "SyntheticSource",
    "TampAnnotator",
    "WindowReport",
    "WindowedStemmer",
    "iter_batches",
    "run_monitor",
    "shard_for_peer",
]
