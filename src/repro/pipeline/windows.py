"""Windowed detection stages: sliding Stemming plus incremental TAMP.

:class:`WindowedStemmer` is the pipeline's analysis heart. It buffers
events into a sliding window of ``window`` seconds advancing by
``slide`` seconds (``slide == window`` gives tumbling windows), and at
each boundary runs the full Stemming decomposition over the window's
events — through ``repro.perf`` workers when configured — emitting a
:class:`WindowReport` with the window's fingerprint and ranked stems.
Memory stays bounded: events older than the window are evicted from
the buffer *and subtracted from the stage's live subsequence counter*,
relying on the counter's remove-equals-never-added guarantee (covered
by the eviction-equivalence regression tests).

Ordering contract: the stage re-emits each event batch downstream
*before* the report that closes at or after it, so a downstream
:class:`TampAnnotator` has applied exactly the events preceding a
window boundary when it annotates that window's report. That is what
makes a report's TAMP summary reproducible on resume.

Everything here is deterministic and clock-free — window positions
derive from event timestamps only. Wall-clock concerns (pacing, lag
measurement) live in the source and monitor layers.
"""

from __future__ import annotations

from collections import Counter as TallyCounter
from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.collector.events import BGPEvent
from repro.collector.stream import fingerprint_events
from repro.pipeline.runtime import Batch, Stage
from repro.stemming.counter import SubsequenceCounter
from repro.stemming.encode import format_stem
from repro.stemming.stemmer import Stemmer, StemmingResult
from repro.tamp.incremental import IncrementalTamp


@dataclass
class WindowReport:
    """Ranked incidents for one closed window.

    ``fingerprint`` is :func:`fingerprint_events` over the window's
    events — the bit-identity witness the resume test compares.
    ``result`` carries the full :class:`StemmingResult` for in-process
    consumers (the monitor's incident tracker); :meth:`to_dict` is the
    persisted form.
    """

    index: int
    start: float
    end: float
    event_count: int
    fingerprint: str
    result: StemmingResult
    #: Filled in downstream by :class:`TampAnnotator`.
    tamp: Optional[dict[str, int]] = None

    def ranked_stems(self) -> list[dict[str, object]]:
        return [
            {
                "rank": component.rank,
                "stem": format_stem(component.stem),
                "strength": component.strength,
                "events": component.event_count,
                "prefixes": len(component.prefixes),
            }
            for component in self.result.components
        ]

    def to_dict(self) -> dict[str, object]:
        return {
            "index": self.index,
            "start": self.start,
            "end": self.end,
            "event_count": self.event_count,
            "fingerprint": self.fingerprint,
            "coverage": round(self.result.coverage(), 6),
            "components": self.ranked_stems(),
            "tamp": self.tamp,
        }


@dataclass
class WindowState:
    """The checkpointable core of a :class:`WindowedStemmer`."""

    boundary: Optional[float]
    window_index: int
    buffer: list[str] = field(default_factory=list)

    def to_dict(self) -> dict[str, object]:
        return {
            "boundary": self.boundary,
            "window_index": self.window_index,
            "buffer": self.buffer,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "WindowState":
        boundary = data.get("boundary")
        return cls(
            boundary=None if boundary is None else float(boundary),
            window_index=int(data.get("window_index", 0)),
            buffer=list(data.get("buffer", [])),
        )


class WindowedStemmer(Stage):
    """Sliding-window Stemming over a batched event stream.

    The first event anchors the window ladder: the first boundary is
    ``first_timestamp + window`` and every later boundary is a
    ``slide`` multiple beyond it, so window positions — and therefore
    every downstream fingerprint — depend only on the stream, never on
    when the monitor started. Quiet gaps fast-forward the boundary
    without emitting empty reports.
    """

    name = "window"

    def __init__(
        self,
        window: float,
        slide: Optional[float] = None,
        *,
        min_strength: int = 2,
        max_components: int = 16,
        workers: Optional[int] = None,
    ) -> None:
        super().__init__()
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        slide = window if slide is None else slide
        if not 0 < slide <= window:
            raise ValueError(
                f"slide must be in (0, window], got {slide}"
            )
        self.window = window
        self.slide = slide
        self.stemmer = Stemmer(
            min_strength=min_strength,
            max_components=max_components,
            workers=workers,
        )
        self.counter = SubsequenceCounter()
        self._buffer: deque[BGPEvent] = deque()
        self._boundary: Optional[float] = None
        self._window_index = 0

    # -- Stage interface ------------------------------------------------

    def process(self, item: object) -> Optional[Iterable[object]]:
        if not isinstance(item, Batch):
            raise TypeError(
                f"{self.name} stage expects Batch, got {type(item)!r}"
            )
        out: list[object] = []
        pending: list[BGPEvent] = []
        pending_offset = item.start_offset
        for event in item.events:
            if self._boundary is None:
                self._boundary = event.timestamp + self.window
            while (
                self._boundary is not None
                and event.timestamp >= self._boundary
            ):
                pending_offset = self._emit_pending(
                    out, pending, pending_offset
                )
                self._close_window(out)
            if self._boundary is None:
                # Quiet gap drained the buffer: re-anchor the window
                # ladder on the event that ends the gap.
                self._boundary = event.timestamp + self.window
            self._buffer.append(event)
            self.counter.add_sequence(event.sequence)
            pending.append(event)
        self._emit_pending(out, pending, pending_offset)
        return out

    def flush(self) -> Optional[Iterable[object]]:
        """Close the final partial window at end-of-stream."""
        out: list[object] = []
        if self._buffer:
            self._close_window(out, partial=True)
        return out

    # -- Checkpointing --------------------------------------------------

    def export_state(self) -> WindowState:
        return WindowState(
            boundary=self._boundary,
            window_index=self._window_index,
            buffer=[event.to_json() for event in self._buffer],
        )

    def restore_state(self, state: WindowState) -> None:
        if self._buffer or self._window_index:
            raise ValueError(
                "cannot restore state onto a used window stage"
            )
        self._boundary = state.boundary
        self._window_index = state.window_index
        for line in state.buffer:
            event = BGPEvent.from_json(line)
            self._buffer.append(event)
            self.counter.add_sequence(event.sequence)

    # -- Introspection (read by the monitor for gauges) -----------------

    @property
    def buffered(self) -> int:
        return len(self._buffer)

    @property
    def window_index(self) -> int:
        return self._window_index

    def top_strength(self) -> int:
        """Strongest live correlation in the buffered events."""
        top = self.counter.top()
        return top[1] if top else 0

    # -- Internals ------------------------------------------------------

    def _emit_pending(
        self,
        out: list[object],
        pending: list[BGPEvent],
        pending_offset: int,
    ) -> int:
        """Pass buffered-through events downstream; returns new offset."""
        if pending:
            out.append(
                Batch(
                    tuple(pending),
                    pending_offset,
                    pending_offset + len(pending),
                )
            )
            pending_offset += len(pending)
            pending.clear()
        return pending_offset

    def _close_window(
        self, out: list[object], partial: bool = False
    ) -> None:
        assert self._boundary is not None
        window_events = list(self._buffer)
        if window_events:
            result = self.stemmer.decompose(window_events)
            out.append(
                WindowReport(
                    index=self._window_index,
                    start=self._boundary - self.window,
                    end=self._boundary,
                    event_count=len(window_events),
                    fingerprint=fingerprint_events(window_events),
                    result=result,
                )
            )
            self._window_index += 1
        if partial:
            self._buffer.clear()
            self.counter = SubsequenceCounter()
            return
        self._boundary += self.slide
        self._evict()
        if not self._buffer:
            # Quiet gap: jump straight past the empty windows (the
            # arithmetic, not a loop — gaps can span days).
            self._boundary = None

    def _evict(self) -> None:
        assert self._boundary is not None
        horizon = self._boundary - self.window
        removals: TallyCounter = TallyCounter()
        while self._buffer and self._buffer[0].timestamp < horizon:
            removals[self._buffer.popleft().sequence] += 1
        if removals:
            self.counter.subtract_sequences(removals.items())


class TampAnnotator(Stage):
    """Keeps a live TAMP graph current and annotates window reports.

    Batches are consumed (applied to the graph, nothing re-emitted);
    reports pass through annotated with the graph state *at that
    window's boundary* — valid because :class:`WindowedStemmer` emits
    events-before-report.
    """

    name = "tamp"

    def __init__(self, tamp: Optional[IncrementalTamp] = None) -> None:
        super().__init__()
        self.tamp = tamp if tamp is not None else IncrementalTamp()
        #: pulse_total as of the last annotated window boundary; the
        #: serve layer's cache key — it only moves when a window
        #: advances, so a picture rendered against it stays valid for
        #: every request until the next boundary.
        self._boundary_pulse = 0

    @property
    def boundary_pulse(self) -> int:
        """The graph's pulse count at the last window boundary."""
        return self._boundary_pulse

    def process(self, item: object) -> Optional[Iterable[object]]:
        if isinstance(item, Batch):
            self.tamp.apply_all(item.events)
            return None
        if isinstance(item, WindowReport):
            adds, removes = self.tamp.consume_changes()
            self._boundary_pulse = self.tamp.pulse_total
            item.tamp = {
                "routes": self.tamp.route_count(),
                "nodes": len(self.tamp.graph.nodes()),
                "edges": self.tamp.graph.edge_count(),
                "prefixes": self.tamp.graph.total_prefixes(),
                "pulse_adds": sum(adds.values()),
                "pulse_removes": sum(removes.values()),
                "pulse_version": self._boundary_pulse,
            }
            return (item,)
        raise TypeError(
            f"{self.name} stage expects Batch or WindowReport,"
            f" got {type(item)!r}"
        )

    # -- Checkpointing --------------------------------------------------

    def export_state(self) -> dict[str, object]:
        return {
            "routes": self.tamp.export_route_events(),
            "pulses": self.tamp.export_pulses(),
            "pulse_total": self.tamp.pulse_total,
            "boundary_pulse": self._boundary_pulse,
        }

    def restore_state(self, state: dict) -> None:
        self.tamp.import_route_events(state.get("routes", []))
        self.tamp.import_pulses(dict(state.get("pulses", {})))
        # Rebuilding the route table above recorded one pulse per
        # restored route; overwrite with the checkpointed counter so
        # resume is bit-identical (old checkpoints lack the keys and
        # restart the counter from the rebuild count, which is still
        # monotonic per process).
        if "pulse_total" in state:
            self.tamp.pulse_total = int(state["pulse_total"])
        self._boundary_pulse = int(state.get("boundary_pulse", 0))
