"""Checkpoint persistence for the streaming monitor.

A checkpoint is everything needed to restart the monitor *as if it had
never stopped*: the source identity, the monitor configuration, the
stream offset of the last fully-processed event, the window stage's
buffered events and boundary, the TAMP route table, per-stage
accounting, and the source's ingest report. Checkpoints are plain JSON
(one file per checkpoint, atomic tmp-then-rename writes) so an
operator can inspect them with ``jq``; alongside them the store keeps
``incidents.jsonl`` — one line per emitted window report, the
monitor's durable output.

The resume contract (verified end-to-end in ``tests/pipeline``): the
pipeline only checkpoints at quiescence (queues drained), so state is
exact, not in-flight; on resume the incident log is truncated back to
the checkpoint's window count, dropping reports that post-date the
snapshot; and :meth:`CheckpointState.matches` refuses to resume
against a different source or configuration — a silent mismatch would
produce a plausible-looking but non-reproducible incident log.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

#: Format version; bump on incompatible layout changes.
#: v2 added the ``incidents`` manager snapshot.
CHECKPOINT_VERSION = 2

CHECKPOINT_PREFIX = "checkpoint-"
INCIDENT_LOG = "incidents.jsonl"


class CheckpointError(ValueError):
    """A checkpoint could not be read, or does not match the run."""


@dataclass
class CheckpointState:
    """One snapshot of the monitor, JSON round-trippable."""

    source: dict[str, object]
    config: dict[str, object]
    #: Events fully processed (== index of the next event to read).
    offset: int
    #: Emitted window reports so far (== lines the incident log
    #: should hold at this snapshot).
    reports_emitted: int
    window: dict[str, object] = field(default_factory=dict)
    tamp: dict[str, object] = field(default_factory=dict)
    stats: dict[str, dict[str, int]] = field(default_factory=dict)
    ingest: Optional[dict[str, object]] = None
    #: Incident manager snapshot (``IncidentManager.export_state``).
    incidents: Optional[dict[str, object]] = None
    version: int = CHECKPOINT_VERSION

    def to_json(self) -> str:
        payload = {
            "version": self.version,
            "source": self.source,
            "config": self.config,
            "offset": self.offset,
            "reports_emitted": self.reports_emitted,
            "window": self.window,
            "tamp": self.tamp,
            "stats": self.stats,
            "ingest": self.ingest,
            "incidents": self.incidents,
        }
        return json.dumps(payload, sort_keys=True, indent=1)

    @classmethod
    def from_json(cls, text: str) -> "CheckpointState":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise CheckpointError(f"unreadable checkpoint: {exc}") from exc
        version = data.get("version")
        if version != CHECKPOINT_VERSION:
            raise CheckpointError(
                f"checkpoint version {version!r} unsupported"
                f" (expected {CHECKPOINT_VERSION})"
            )
        return cls(
            source=dict(data["source"]),
            config=dict(data["config"]),
            offset=int(data["offset"]),
            reports_emitted=int(data["reports_emitted"]),
            window=dict(data.get("window", {})),
            tamp=dict(data.get("tamp", {})),
            stats={
                str(name): dict(counters)
                for name, counters in data.get("stats", {}).items()
            },
            ingest=data.get("ingest"),
            incidents=data.get("incidents"),
            version=int(version),
        )

    def matches(
        self, source: dict[str, object], config: dict[str, object]
    ) -> None:
        """Raise :class:`CheckpointError` unless this snapshot was
        taken from the same source and configuration."""
        if self.source != source:
            raise CheckpointError(
                "checkpoint source mismatch:"
                f" saved {self.source!r}, current {source!r}"
            )
        if self.config != config:
            raise CheckpointError(
                "checkpoint config mismatch:"
                f" saved {self.config!r}, current {config!r}"
            )


class CheckpointStore:
    """Numbered checkpoints plus the incident log, in one directory.

    Checkpoint files are named ``checkpoint-<offset padded>.json`` so
    lexical order is resume order. *keep* bounds disk usage; pruning
    never removes the newest file.
    """

    def __init__(self, directory: str | Path, *, keep: int = 3) -> None:
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.keep = keep

    # -- checkpoints ----------------------------------------------------

    def save(self, state: CheckpointState) -> Path:
        """Atomically persist *state*; returns the checkpoint path."""
        name = f"{CHECKPOINT_PREFIX}{state.offset:012d}.json"
        path = self.directory / name
        tmp = self.directory / (name + ".tmp")
        tmp.write_text(state.to_json(), encoding="utf-8")
        os.replace(tmp, path)
        self._prune()
        return path

    def checkpoints(self) -> list[Path]:
        return sorted(
            self.directory.glob(f"{CHECKPOINT_PREFIX}*.json")
        )

    def latest(self) -> Optional[CheckpointState]:
        paths = self.checkpoints()
        if not paths:
            return None
        return CheckpointState.from_json(
            paths[-1].read_text(encoding="utf-8")
        )

    def _prune(self) -> None:
        paths = self.checkpoints()
        for path in paths[: -self.keep]:
            path.unlink()

    # -- incident log ---------------------------------------------------

    @property
    def incident_log(self) -> Path:
        return self.directory / INCIDENT_LOG

    def append_report(self, report: dict[str, object]) -> None:
        with open(self.incident_log, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(report, sort_keys=True))
            handle.write("\n")

    def read_reports(self) -> list[dict[str, object]]:
        if not self.incident_log.exists():
            return []
        reports = []
        with open(self.incident_log, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    reports.append(json.loads(line))
        return reports

    def truncate_reports(self, count: int) -> int:
        """Drop incident-log lines past *count*; returns lines dropped.

        Called on resume: reports emitted after the checkpoint being
        resumed from will be re-emitted (identically) by the replay, so
        keeping them would duplicate windows in the log.
        """
        reports = self.read_reports()
        if len(reports) <= count:
            return 0
        kept = reports[:count]
        tmp = self.directory / (INCIDENT_LOG + ".tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            for report in kept:
                handle.write(json.dumps(report, sort_keys=True))
                handle.write("\n")
        os.replace(tmp, self.incident_log)
        return len(reports) - count
