"""Live metrics for the streaming monitor.

A long-running monitor is only operable if it can answer "is it
keeping up?" without being stopped: events per second, queue depths,
window lag, checkpoint age. This module is a dependency-free metrics
core — counters, gauges and fixed-bucket histograms collected in a
:class:`MetricsRegistry` — with two render surfaces:

* :meth:`MetricsRegistry.snapshot` — a JSON-serializable dict, written
  to disk by ``repro monitor --metrics-out`` (the CI artifact);
* :meth:`MetricsRegistry.render_text` — a Prometheus-style plain-text
  exposition, served by :class:`MetricsServer` on
  ``repro monitor --metrics-port`` (``/metrics`` for text,
  ``/metrics.json`` for the snapshot).

The registry is deliberately *not* process-global (no module-level
mutable state — the PIPE001 rule polices exactly that pattern in
stages): the monitor owns one registry per run, so two monitors in one
process never share counters and a resumed run starts from a clean
slate.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Sequence

#: Default histogram buckets (seconds): tuned for window-lag style
#: latencies, microseconds through a minute.
DEFAULT_BUCKETS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
    30.0, 60.0,
)


class Counter:
    """A monotonically increasing count."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def to_value(self) -> float:
        return self.value

    def render(self) -> list[str]:
        return [f"{self.name} {_format_number(self.value)}"]


class Gauge:
    """A value that goes up and down (queue depth, checkpoint age)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def to_value(self) -> float:
        return self.value

    def render(self) -> list[str]:
        return [f"{self.name} {_format_number(self.value)}"]


class Histogram:
    """Fixed-bucket histogram with quantile estimation.

    Bounds are upper bucket edges; observations above the last bound
    land in an implicit overflow bucket. Quantiles interpolate to a
    bucket's upper bound (the overflow bucket answers with the maximum
    observed value), which is the usual fixed-bucket trade-off: cheap,
    bounded memory, and monotonic — good enough to tell a 5 ms window
    lag from a 5 s one, which is what the p99 gauge is for.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        bounds: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("histogram bounds must be sorted and non-empty")
        self.name = name
        self.help = help
        self.bounds = tuple(float(b) for b in bounds)
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.max = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if value > self.max:
            self.max = value
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[index] += 1
                return
        self.bucket_counts[-1] += 1

    def quantile(self, q: float) -> float:
        """The value at quantile *q* in [0, 1], 0.0 when empty."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        target = q * self.count
        cumulative = 0
        for index, bound in enumerate(self.bounds):
            cumulative += self.bucket_counts[index]
            if cumulative >= target:
                return min(bound, self.max)
        return self.max

    def to_value(self) -> dict[str, object]:
        return {
            "count": self.count,
            "sum": self.sum,
            "max": self.max,
            "p50": self.quantile(0.50),
            "p99": self.quantile(0.99),
            "buckets": {
                _format_number(bound): count
                for bound, count in zip(self.bounds, self.bucket_counts)
            },
            "overflow": self.bucket_counts[-1],
        }

    def render(self) -> list[str]:
        lines = []
        cumulative = 0
        for bound, count in zip(self.bounds, self.bucket_counts):
            cumulative += count
            lines.append(
                f'{self.name}_bucket{{le="{_format_number(bound)}"}}'
                f" {cumulative}"
            )
        lines.append(f'{self.name}_bucket{{le="+Inf"}} {self.count}')
        lines.append(f"{self.name}_sum {_format_number(self.sum)}")
        lines.append(f"{self.name}_count {self.count}")
        return lines


Metric = Counter | Gauge | Histogram


class MetricsRegistry:
    """A named collection of metrics, one per monitor run.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: the
    pipeline, the window stage and the monitor loop can all reach for
    ``registry.counter("repro_pipeline_events_total")`` without
    coordinating construction. Re-requesting a name with a different
    metric kind is a programming error and raises.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Metric] = {}
        self._collectors: list[object] = []
        self._lock = threading.Lock()

    def register_collector(self, collector: object) -> None:
        """Attach a live collector rendered fresh at every scrape.

        A collector computes its metrics from owned state at render
        time (e.g. the incident exporter derives ages from the current
        incident set) instead of pushing updates into the registry. It
        must provide ``render_text() -> str`` and
        ``to_snapshot() -> dict``; its output is appended to both
        exposition surfaces.
        """
        for method in ("render_text", "to_snapshot"):
            if not callable(getattr(collector, method, None)):
                raise TypeError(
                    f"collector {collector!r} lacks {method}()"
                )
        with self._lock:
            self._collectors.append(collector)

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(
        self,
        name: str,
        help: str = "",
        bounds: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = Histogram(name, help, bounds)
                self._metrics[name] = metric
            elif not isinstance(metric, Histogram):
                raise ValueError(
                    f"metric {name!r} is a {metric.kind}, not a histogram"
                )
            return metric

    def _get_or_create(self, cls: type, name: str, help: str):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name, help)
                self._metrics[name] = metric
            elif not isinstance(metric, cls):
                raise ValueError(
                    f"metric {name!r} is a {metric.kind},"
                    f" not a {cls.kind}"
                )
            return metric

    def get(self, name: str) -> Optional[Metric]:
        with self._lock:
            return self._metrics.get(name)

    def snapshot(self) -> dict[str, object]:
        """JSON-serializable view of every metric, sorted by name."""
        with self._lock:
            metrics = sorted(self._metrics.items())
            collectors = list(self._collectors)
        result = {name: metric.to_value() for name, metric in metrics}
        for collector in collectors:
            result.update(collector.to_snapshot())
        return result

    def render_text(self) -> str:
        """Prometheus-style plain-text exposition."""
        with self._lock:
            metrics = sorted(self._metrics.items())
            collectors = list(self._collectors)
        lines: list[str] = []
        for name, metric in metrics:
            if metric.help:
                lines.append(f"# HELP {name} {metric.help}")
            lines.append(f"# TYPE {name} {metric.kind}")
            lines.extend(metric.render())
        for collector in collectors:
            lines.append(collector.render_text().rstrip("\n"))
        return "\n".join(lines) + "\n"


def _format_number(value: float) -> str:
    """Render 3 as ``3`` and 0.25 as ``0.25`` (no trailing zeros)."""
    if value == int(value):
        return str(int(value))
    return repr(value)


class _BoundedThreadingHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer with a hard cap on handler threads.

    The stock server spawns one unbounded daemon thread per
    connection — a scrape storm (or the serve layer proxying a burst)
    could pile up thousands. A semaphore taken *before* accept-side
    dispatch and released when the handler thread finishes bounds the
    live handler count; excess connections queue in the listen backlog
    instead of as threads.
    """

    max_threads = 8

    def process_request(self, request, client_address) -> None:
        gate = getattr(self, "_thread_gate", None)
        if gate is None:
            gate = self._thread_gate = threading.BoundedSemaphore(
                self.max_threads
            )
        gate.acquire()
        try:
            super().process_request(request, client_address)
        except BaseException:
            gate.release()
            raise

    def process_request_thread(self, request, client_address) -> None:
        try:
            super().process_request_thread(request, client_address)
        finally:
            self._thread_gate.release()


class MetricsServer:
    """Serves a registry over HTTP on a background thread.

    ``/metrics`` returns the plain-text exposition, ``/metrics.json``
    the JSON snapshot. Port 0 binds an ephemeral port (tests); the
    bound port is on :attr:`port`. The server thread is a daemon and
    :meth:`close` is idempotent, so a monitor killed mid-run never
    hangs on it. At most *max_threads* requests are handled
    concurrently; the rest wait in the accept queue.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        port: int = 0,
        *,
        max_threads: int = 8,
    ) -> None:
        server = self  # close over the outer object, not the handler

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 (stdlib API name)
                if self.path in ("/metrics", "/"):
                    body = server.registry.render_text().encode("utf-8")
                    content_type = "text/plain; charset=utf-8"
                elif self.path == "/metrics.json":
                    body = json.dumps(
                        server.registry.snapshot(), sort_keys=True
                    ).encode("utf-8")
                    content_type = "application/json"
                else:
                    self.send_error(404)
                    return
                self.send_response(200)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args: object) -> None:
                pass  # scrapes must not spam the monitor's stdout

        self.registry = registry
        self._httpd = _BoundedThreadingHTTPServer(
            ("127.0.0.1", port), Handler
        )
        self._httpd.max_threads = max(1, int(max_threads))
        self.port = int(self._httpd.server_address[1])
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-metrics",
            daemon=True,
        )
        self._thread.start()

    def close(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()

    def __enter__(self) -> "MetricsServer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
