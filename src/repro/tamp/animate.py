"""TAMP animations.

Given a baseline route snapshot and an event stream, generate the paper's
fixed-duration animation: 30 seconds of play at 25 frames per second (750
frames), regardless of whether the incident spanned seconds or days. Each
frame consolidates every routing change in its slice of the real
timerange and colors each edge by what happened to its prefix count:

* black — not changing,
* green — gaining prefixes,
* blue — losing prefixes,
* yellow — flapping too fast to animate (gains *and* losses in one frame),
* and an edge that has lost prefixes keeps a gray shadow at the largest
  count it ever carried.

The animator also records a per-edge prefix-count time series — the
impulse plot next to Figure 3's animation controls — and an animation
clock string showing time into the incident.

The frame loop runs entirely on packed edge ids (DESIGN.md §10): frame
diffs come from the maintainer's id-keyed pulse counters, counts from
id-level weight lookups, and tracked-edge samples land in flat arrays.
Frames *store* id-keyed mappings and decode to token pairs lazily on
first access, so a 750-frame animation of a large incident decodes
nothing until a renderer or test actually reads an edge.
"""

from __future__ import annotations

import enum
from array import array
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Mapping, Optional, Sequence

from repro.bgp.rib import Route
from repro.collector.events import Token
from repro.collector.stream import EventStream
from repro.perf import gc_paused
from repro.tamp.incremental import IncrementalTamp, PeerNamer, default_peer_namer

Edge = tuple[Token, Token]

PLAY_DURATION_SECONDS = 30.0
FRAMES_PER_SECOND = 25


class EdgeState(enum.Enum):
    STABLE = "stable"
    GAINING = "gaining"
    LOSING = "losing"
    FLAPPING = "flapping"


class LazyEdgeMap(Mapping):
    """An edge-id-keyed mapping that decodes keys on first token access.

    The id-keyed store is the live view (:attr:`ids`) — the animator and
    the SVG renderer's track builder read it directly. Token-level reads
    (``frame.edge_counts[edge]``, iteration, ``in``) materialize a
    decoded dict once and serve from it after; a map nobody reads as
    tokens never decodes. Quiet frames share one shadow map, so the
    decode also happens at most once per distinct snapshot.
    """

    __slots__ = ("ids", "_decode", "_decoded")

    def __init__(
        self, ids: Mapping[int, object], decode: Callable[[int], Edge]
    ) -> None:
        #: The id-keyed backing store (packed edge id -> value).
        self.ids = ids
        self._decode = decode
        self._decoded: Optional[dict[Edge, object]] = None

    def _materialize(self) -> dict[Edge, object]:
        decoded = self._decoded
        if decoded is None:
            decode = self._decode
            decoded = self._decoded = {
                decode(eid): value for eid, value in self.ids.items()
            }
        return decoded

    def __getitem__(self, edge: Edge) -> object:
        return self._materialize()[edge]

    def __iter__(self) -> Iterator[Edge]:
        return iter(self._materialize())

    def __len__(self) -> int:
        return len(self.ids)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, LazyEdgeMap):
            other = other._materialize()
        if isinstance(other, Mapping):
            return self._materialize() == dict(other)
        return NotImplemented

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __repr__(self) -> str:
        return f"LazyEdgeMap({self._materialize()!r})"


@dataclass(frozen=True)
class TampFrame:
    """One animation frame: consolidated changes over a time slice."""

    index: int
    #: Real (incident) time covered: [start, end).
    start: float
    end: float
    #: Edges whose prefix count changed this frame, with their new counts
    #: (a :class:`LazyEdgeMap`: id-keyed, decoded on token access).
    edge_counts: Mapping[Edge, int]
    #: Change state per touched edge (untouched edges are STABLE/black).
    edge_states: Mapping[Edge, EdgeState]
    #: Historical-maximum counts for edges below their peak (shadows).
    shadows: Mapping[Edge, int]

    @property
    def changed_edges(self) -> int:
        return len(self.edge_states)

    def state_of(self, edge: Edge) -> EdgeState:
        return self.edge_states.get(edge, EdgeState.STABLE)

    def clock_text(self) -> str:
        """The Figure 3 animation clock: time into the incident."""
        seconds = self.end
        if seconds < 1.0:
            return f"t = {seconds * 1000:.0f} ms"
        if seconds < 120.0:
            return f"t = {seconds:.1f} s"
        if seconds < 2 * 3600.0:
            return f"t = {seconds / 60:.1f} min"
        return f"t = {seconds / 3600:.1f} h"


@dataclass(frozen=True)
class EdgeSeries:
    """Prefix-count samples over time for one selected edge.

    The series is stored as two flat parallel arrays (sample times and
    counts) — a flapping edge collects one sample per touching event,
    and at incident scale tuple-of-tuples storage was most of the
    tracking cost.
    """

    edge: Edge
    #: Sample timestamps (``array('d')``).
    times: Sequence[float]
    #: Prefix counts at those timestamps (``array('q')``).
    values: Sequence[int]

    @property
    def samples(self) -> tuple[tuple[float, int], ...]:
        """(time, count) pairs, zipped from the flat arrays."""
        return tuple(zip(self.times, self.values))

    def counts(self) -> list[int]:
        return list(self.values)

    def is_impulse_train(self) -> bool:
        """True when the count alternates direction (the Figure 3 plot).

        A monotone ramp is not an impulse train: what matters is the
        number of up/down *reversals*, the visual signature of a prefix
        flapping on and off an edge.
        """
        counts = self.values
        if len(counts) < 4:
            return False
        deltas = [
            b - a for a, b in zip(counts, counts[1:]) if b != a
        ]
        reversals = sum(
            1
            for d1, d2 in zip(deltas, deltas[1:])
            if (d1 > 0) != (d2 > 0)
        )
        return reversals >= 3


@dataclass
class TampAnimation:
    """The generated animation: frames plus the final graph state."""

    frames: list[TampFrame]
    tamp: IncrementalTamp
    timerange: float
    play_duration: float = PLAY_DURATION_SECONDS
    fps: int = FRAMES_PER_SECOND
    series: dict[Edge, EdgeSeries] = field(default_factory=dict)

    @property
    def frame_count(self) -> int:
        return len(self.frames)

    def frames_with_changes(self) -> list[TampFrame]:
        return [f for f in self.frames if f.changed_edges]

    def states_seen(self, edge: Edge) -> set[EdgeState]:
        return {f.state_of(edge) for f in self.frames if edge in f.edge_states}

    def final_shadows(self) -> dict[Edge, int]:
        return dict(self.frames[-1].shadows) if self.frames else {}


def animate_stream(
    events: EventStream,
    baseline: Iterable[Route] = (),
    site_name: str = "site",
    peer_namer: PeerNamer = default_peer_namer,
    play_duration: float = PLAY_DURATION_SECONDS,
    fps: int = FRAMES_PER_SECOND,
    track_edges: Iterable[Edge] = (),
    include_prefix_leaves: bool = False,
    tamp: "IncrementalTamp | None" = None,
) -> TampAnimation:
    """Build the animation for *events* on top of *baseline* routes.

    *track_edges* selects edges whose prefix count is sampled after every
    event touching them (the per-edge plot). The frame count is
    ``play_duration × fps`` — fixed, per the paper, however long the
    incident really ran.

    Pass a pre-loaded *tamp* to skip baseline loading (the paper times
    its algorithms "starting at the current state of the system", i.e.
    table rebuild excluded); the instance is consumed — it ends at the
    post-incident state.
    """
    if play_duration <= 0 or fps <= 0:
        raise ValueError("play duration and fps must be positive")
    if tamp is None:
        tamp = IncrementalTamp(
            site_name=site_name,
            peer_namer=peer_namer,
            include_prefix_leaves=include_prefix_leaves,
        )
        tamp.load_routes(baseline)
    frame_count = int(round(play_duration * fps))
    start = events.start_time if len(events) else 0.0
    end = events.end_time if len(events) else 0.0
    timerange = max(0.0, (end or 0.0) - (start or 0.0))
    slice_width = timerange / frame_count if frame_count else 0.0

    graph = tamp.graph
    weight_id = graph.weight_id
    decode = graph.decode_pair
    # Tracked edges intern up front; samples accumulate in flat arrays.
    tracked: dict[int, tuple[Edge, array, array]] = {
        graph.intern_pair(*edge): (edge, array("d"), array("q"))
        for edge in track_edges
    }

    def sample_tracked(now: float) -> None:
        for eid, (_, times, counts) in tracked.items():
            times.append(now)
            counts.append(weight_id(eid))

    #: Historical-maximum count per edge id, seeded from the baseline.
    max_counts: dict[int, int] = {
        eid: len(store) for eid, store in graph.raw_id_edges()
    }
    #: Edges currently below their historical peak, with that peak.
    shadowed: dict[int, int] = {}
    #: Shared snapshot of *shadowed*, re-copied only on change: quiet
    #: frames alias one map instead of copying the shadow set 750 times.
    shadow_snapshot = LazyEdgeMap({}, decode)
    shadows_dirty = False

    frames: list[TampFrame] = []
    all_events = list(events)
    origin = start or 0.0
    # Frame boundaries resolve to event indices in one bisection pass
    # over the stream's timestamp keys instead of a per-event timestamp
    # comparison in the frame loop; the last frame takes the remainder
    # to absorb float rounding.
    boundaries = [
        origin + (index + 1) * slice_width for index in range(frame_count - 1)
    ]
    if isinstance(events, EventStream):
        breaks = events.slice_indices(boundaries)
    else:
        import bisect

        keys = [event.timestamp for event in all_events]
        breaks = [bisect.bisect_left(keys, b) for b in boundaries]
    breaks.append(len(all_events))
    sample_tracked(0.0)
    event_index = 0
    apply = tamp.apply
    # The replay allocates only acyclic containers while the route
    # table and event list sit live on the heap — exactly the profile
    # the GC guard exists for (see repro.perf.gcguard).
    with gc_paused():
        for index in range(frame_count):
            frame_start = origin + index * slice_width
            frame_end = origin + (index + 1) * slice_width
            frame_break = breaks[index]
            # Consolidate every event in this slice. Resolving the
            # touched edge ids per event (from the maintainer's apply
            # memo — no re-tokenization) exists only to sample tracked
            # edges; without trackers the batch devolves to bare
            # applies.
            if tracked:
                for event in all_events[event_index:frame_break]:
                    apply(event)
                    for eid in tamp.event_edge_ids(event):
                        entry = tracked.get(eid)
                        if entry is not None:
                            entry[1].append(event.timestamp)
                            entry[2].append(weight_id(eid))
            else:
                for event in all_events[event_index:frame_break]:
                    apply(event)
            event_index = frame_break
            adds, removes = tamp.consume_id_changes()
            edge_states: dict[int, EdgeState] = {}
            edge_counts: dict[int, int] = {}
            for eid in adds.keys() | removes.keys():
                ups = adds.get(eid, 0)
                downs = removes.get(eid, 0)
                if ups and downs:
                    state = EdgeState.FLAPPING
                elif ups:
                    state = EdgeState.GAINING
                elif downs:
                    state = EdgeState.LOSING
                else:
                    state = EdgeState.STABLE
                edge_states[eid] = state
                count = weight_id(eid)
                edge_counts[eid] = count
                peak = max_counts.get(eid, 0)
                if count > peak:
                    peak = count
                    max_counts[eid] = count
                # Maintain the shadow set incrementally: only edges
                # whose count is below their peak carry a gray shadow.
                if count < peak:
                    if shadowed.get(eid) != peak:
                        shadowed[eid] = peak
                        shadows_dirty = True
                elif shadowed.pop(eid, None) is not None:
                    shadows_dirty = True
            if shadows_dirty:
                shadow_snapshot = LazyEdgeMap(dict(shadowed), decode)
                shadows_dirty = False
            frames.append(
                TampFrame(
                    index=index,
                    start=frame_start - origin,
                    end=frame_end - origin,
                    edge_counts=LazyEdgeMap(edge_counts, decode),
                    edge_states=LazyEdgeMap(edge_states, decode),
                    shadows=shadow_snapshot,
                )
            )
    series = {
        edge: EdgeSeries(edge=edge, times=times, values=counts)
        for edge, times, counts in tracked.values()
    }
    return TampAnimation(
        frames=frames,
        tamp=tamp,
        timerange=timerange,
        play_duration=play_duration,
        fps=fps,
        series=series,
    )
