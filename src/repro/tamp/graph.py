"""The merged TAMP graph.

Merging per-router trees is where TAMP's "one picture says 1,000,000
routes" comes from — and where the crucial subtlety lives: edge weights
are **unique prefix counts**, so merging performs a *set union* of the
prefixes carried on the same edge, never an addition (Figure 1(c): the
NexthopA–AS1 edge weighs 4, not 3+3, because two prefixes are common).
An optional site root (the REX recorder in Figure 2's leftmost box) ties
the router roots together.

Implementation notes:

* Each edge stores a *reference count per prefix* — how many
  currently-installed routes thread that prefix over that edge. The
  weight is the number of distinct prefixes (union semantics), while
  the refcount makes incremental removal O(path length): when router X
  withdraws a route, the prefix only leaves an AS-level edge if no
  other router's route still traverses it.
* The stores are interned (DESIGN.md §10): nodes are dense ids from a
  per-build :class:`SymbolTable`, prefixes are value-derived packed ids
  (:func:`repro.interning.pack_prefix`), an edge key packs two token
  ids into one int, and a refcount map is ``{prefix id: count}``.
  Merging a tree is then per-edge C-level id counting, and
  ``total_prefixes()`` is the size of a union of int-key views — no
  token tuple is hashed and no Prefix object is touched on the hot
  path. Every public method still speaks tokens and prefixes: ids are
  decoded at the query boundary, which on realistic workloads means on
  *pruned* graphs, never per-route.
"""

from __future__ import annotations

from collections import deque
from itertools import chain as _iter_chain
from typing import Iterable, Iterator, Optional

from repro.collector.events import Token
from repro.interning import EDGE_MASK, EDGE_SHIFT, IdSet, SymbolTable
from repro.net.prefix import Prefix
from repro.tamp.tree import Edge, TampTree, chain_ids

try:
    # Counter's C increment loop, usable on a plain dict; the public
    # Counter wrapper costs one object + two isinstance checks per
    # update call, which the merge loop pays millions of times.
    from collections import _count_elements  # type: ignore[attr-defined]
except ImportError:  # pragma: no cover - CPython always has it
    def _count_elements(mapping: dict, iterable: Iterable) -> None:
        get = mapping.get
        for element in iterable:
            mapping[element] = get(element, 0) + 1


class TampGraph:
    """A directed graph over TAMP node tokens with prefix-set weights."""

    __slots__ = (
        "site_root",
        "_symbols",
        "_edges",
        "_children",
        "_parents",
        "_fringe",
        "_total",
        "_adj_dirty",
        "_has_site_edge",
    )

    def __init__(
        self,
        site_name: Optional[str] = None,
        symbols: Optional[SymbolTable] = None,
    ) -> None:
        self.site_root: Optional[Token] = (
            ("root", site_name) if site_name is not None else None
        )
        #: Per-build symbol table; derived graphs (copies, prunes) share
        #: their parent's table — it is append-only, so sharing is safe.
        self._symbols = SymbolTable() if symbols is None else symbols
        # packed edge id -> {prefix id: refcount}
        self._edges: dict[int, dict[int, int]] = {}
        self._children: dict[int, set[int]] = {}
        self._parents: dict[int, set[int]] = {}
        #: The prefix-leaf fringe: tail token id -> {prefix id: refcount}.
        #: Mirrors :attr:`TampTree._leaves` — the edge into a ``("pfx",
        #: p)`` node carries exactly ``{p}``, so the widest part of a
        #: realistic graph collapses to one store per tail instead of one
        #: edge entry (plus adjacency) per (tail, prefix) pair, and a
        #: route group's whole fringe lands in one C counting call. The
        #: batch merge paths fill this; queries synthesize the implied
        #: leaf edges at the decode boundary, interning the ``("pfx",
        #: p)`` token only if a caller actually asks to see the leaf.
        self._fringe: dict[int, dict[int, int]] = {}
        #: True = the adjacency maps are stale and must be rebuilt from
        #: the edge keys before use (see :meth:`_adj`). Bulk merges only
        #: mark; incremental mutators keep the maps live while clean.
        self._adj_dirty = False
        #: Set by bulk merges that created/updated the site-root edge —
        #: lets :meth:`roots` skip the adjacency rebuild on freshly
        #: batch-built graphs. Cleared pessimistically on edge removal.
        self._has_site_edge = False
        #: Cached distinct-prefix count; None = recompute. Pruning calls
        #: edge_fraction per edge, which divides by this — without the
        #: cache every fraction walks every edge's prefix map.
        self._total: Optional[int] = None

    def _invalidate_cache(self) -> None:
        """The cache-invalidation hook.

        Every method that can change edge/prefix membership must call
        this (enforced statically: rule CACHE001 of ``repro lint``).
        Refcount-only branches may legitimately skip it — membership
        did not change — but the hook must be reachable in the method.
        """
        self._total = None

    @property
    def symbols(self) -> SymbolTable:
        """The graph's symbol table (id ↔ token/prefix mapping)."""
        return self._symbols

    # repro: allow[CACHE001] pure adjacency rebuild — edge/prefix
    # membership is untouched, so the cached prefix total stays valid.
    def _adj(self) -> tuple[dict[int, set[int]], dict[int, set[int]]]:
        """The (children, parents) adjacency maps, rebuilt when stale.

        Bulk merges never maintain adjacency — they only mark it dirty
        — because the hot batch pipeline (merge, flat prune) can answer
        everything from the edge keys alone. The maps are rebuilt here,
        in one pass over the keys, the first time a traversal actually
        asks; incremental mutators keep them live once (re)built. The
        fringe is never represented in adjacency — fringe-aware readers
        overlay it at the decode boundary.
        """
        if self._adj_dirty:
            children: dict[int, set[int]] = {}
            parents: dict[int, set[int]] = {}
            for eid in self._edges:
                parent = eid >> EDGE_SHIFT
                child = eid & EDGE_MASK
                seen = children.get(parent)
                if seen is None:
                    children[parent] = {child}
                else:
                    seen.add(child)
                seen = parents.get(child)
                if seen is None:
                    parents[child] = {parent}
                else:
                    seen.add(parent)
            self._children = children
            self._parents = parents
            self._adj_dirty = False
        return self._children, self._parents

    # ------------------------------------------------------------------
    # Merging
    # ------------------------------------------------------------------

    @classmethod
    def merge(
        cls, trees: Iterable[TampTree], site_name: Optional[str] = None
    ) -> "TampGraph":
        """Merge per-router trees with prefix-set union on shared edges."""
        graph = cls(site_name)
        for tree in trees:
            graph.merge_tree(tree)
        return graph

    def merge_tree(self, tree: TampTree) -> None:
        """Merge one router tree (id-level union on shared edges).

        A tree sharing this graph's symbol table merges without any
        translation; a foreign tree's ids are remapped through a table
        merge first (the parallel shard-join path — see
        :mod:`repro.tamp.picture`).
        """
        if tree.symbols is self._symbols:
            self._merge_ids(tree, None)
        else:
            self._merge_ids(tree, self._symbols.remap_tokens(tree.symbols))

    def _merge_ids(
        self, tree: TampTree, token_map: Optional[list[int]]
    ) -> None:
        """Fold *tree*'s columns into the refcount stores.

        ``token_map`` translates the tree's token-id space into this
        graph's (None when the tables are shared). Prefix ids are
        value-derived, so every table already agrees on them — a
        foreign tree's columns count straight into the stores with no
        translation. Interior columns and the leaf fringe increment
        refcounts through the C counting loop — a column whose edge is
        new to the graph becomes its whole store in one
        ``dict.fromkeys`` (columns are sets, so every initial count is
        1). The site-root link carries the union of the root-adjacent
        columns, as in the original builder; those columns are read off
        the tree's root adjacency up front so the per-edge loop stays
        comparison-free.
        """
        self._invalidate_cache()
        self._adj_dirty = True
        edges = self._edges
        root_id = tree._root_id
        collect_root = self.site_root is not None
        root_union: IdSet = IdSet()
        if collect_root:
            base = tree._root_id << EDGE_SHIFT
            for child in tree._children.get(tree._root_id, ()):
                root_union.update(tree._edges[base | child])
        if token_map is None:
            for eid, column in tree._edges.items():
                store = edges.get(eid)
                if store is None:
                    edges[eid] = dict.fromkeys(column, 1)
                else:
                    _count_elements(store, column)
        else:
            root_id = token_map[root_id]
            for eid, column in tree._edges.items():
                parent = token_map[eid >> EDGE_SHIFT]
                child = token_map[eid & EDGE_MASK]
                eid = (parent << EDGE_SHIFT) | child
                store = edges.get(eid)
                if store is None:
                    edges[eid] = dict.fromkeys(column, 1)
                else:
                    _count_elements(store, column)
        fringe = self._fringe
        for tail, leaf_members in tree._leaves.items():
            if token_map is not None:
                tail = token_map[tail]
            store = fringe.get(tail)
            if store is None:
                fringe[tail] = dict.fromkeys(leaf_members, 1)
            else:
                _count_elements(store, leaf_members)
        if collect_root and root_union:
            site_root = self.site_root
            assert site_root is not None
            site_id = self._symbols.intern_token(site_root)
            eid = (site_id << EDGE_SHIFT) | root_id
            store = edges.get(eid)
            if store is None:
                edges[eid] = store = {}
            _count_elements(store, root_union)
            self._has_site_edge = True

    def merge_router(
        self,
        router_name: str,
        routes: Iterable,
        include_prefix_leaves: bool = True,
        chain_cache: Optional[dict] = None,
    ) -> None:
        """Fold one router's routes directly into the refcount stores.

        The single-router batch path (:meth:`merge_view` over a
        one-router view): equivalent to building the router's
        :class:`TampTree` against this graph's table and merging it,
        without materializing the intermediate columns. The
        equivalence rests on RIB uniqueness — a route table holds at
        most one route per (router, prefix), so every (edge, prefix)
        pair occurs at most once per router and per-group increments
        equal per-tree set merges. Callers passing a table with
        duplicate prefixes per router would double-count; every route
        source in this project (RIBs, replayed event tables) satisfies
        the invariant.

        *chain_cache* memoizes interned chains per attribute bundle
        (see :func:`repro.tamp.tree.chain_ids`); pass one shared dict
        across the routers of a build.
        """
        by_attrs: dict = {}
        for route in routes:
            by_attrs.setdefault(route.attributes, []).append(route.prefix)
        self.merge_view(
            [(router_name, by_attrs.items())],
            include_prefix_leaves,
            chain_cache,
        )

    def merge_entries(
        self,
        router_name: str,
        entries: Iterable,
        include_prefix_leaves: bool = True,
        chain_cache: Optional[dict] = None,
    ) -> None:
        """:meth:`merge_router` over raw (prefix, attributes) pairs.

        The whole-table batch path: :meth:`AdjRibIn.entries
        <repro.bgp.rib.AdjRibIn.entries>` yields native dict items, so
        a full-view build never constructs the per-route
        :class:`~repro.bgp.rib.Route` wrappers (seconds of pure
        allocation at ISP scale). Same RIB-uniqueness precondition as
        :meth:`merge_router`.
        """
        by_attrs: dict = {}
        for prefix, attributes in entries:
            by_attrs.setdefault(attributes, []).append(prefix)
        self.merge_view(
            [(router_name, by_attrs.items())],
            include_prefix_leaves,
            chain_cache,
        )

    def merge_groups(
        self,
        router_name: str,
        groups,
        include_prefix_leaves: bool = True,
        chain_cache: Optional[dict] = None,
    ) -> None:
        """:meth:`merge_router` over pre-grouped attribute buckets.

        *groups* yields (attribute bundle, iterable of the prefixes
        announced with it) pairs — exactly the index
        :meth:`AdjRibIn.grouped_entries
        <repro.bgp.rib.AdjRibIn.grouped_entries>` maintains at announce
        time, so a whole-view build skips the per-route grouping pass
        entirely. Same RIB-uniqueness precondition as
        :meth:`merge_router` — each prefix at most once per bundle.
        """
        self.merge_view(
            [(router_name, groups)], include_prefix_leaves, chain_cache
        )

    def merge_view(
        self,
        router_groups: Iterable,
        include_prefix_leaves: bool = True,
        chain_cache: Optional[dict] = None,
    ) -> None:
        """Fold a whole site view into the refcount stores in one pass.

        *router_groups* yields (router name, groups) per router, where
        groups is a mapping — or an iterable of pairs — from attribute
        bundle to the prefixes announced with it (the shape
        :meth:`AdjRibIn.grouped_entries
        <repro.bgp.rib.AdjRibIn.grouped_entries>` maintains). Same
        RIB-uniqueness precondition as :meth:`merge_router`.

        A thin encoding shim over :meth:`merge_id_view`: prefixes are
        packed to value-derived ids (:func:`repro.interning.pack_prefix`
        inlined — two attribute loads and two shifts each, no table
        probe through ``Prefix.__hash__``) group by group, lazily, so
        the id-level pass downstream never sees a Prefix object.
        """

        def encode(groups):
            if hasattr(groups, "items"):
                groups = groups.items()
            for attributes, prefixes in groups:
                yield attributes, [
                    (p.length << 32) | (p.network >> (32 - p.length))
                    for p in prefixes
                ]

        self.merge_id_view(
            ((name, encode(groups)) for name, groups in router_groups),
            include_prefix_leaves,
            chain_cache,
        )

    def merge_id_view(
        self,
        router_groups: Iterable,
        include_prefix_leaves: bool = True,
        chain_cache: Optional[dict] = None,
    ) -> None:
        """Fold a whole pre-encoded site view into the refcount stores.

        Like :meth:`merge_view`, but each router's groups yield
        (attribute bundle, prefix-id collection) — e.g. the id columns
        :meth:`AdjRibIn.grouped_pid_entries
        <repro.bgp.rib.AdjRibIn.grouped_pid_entries>` maintains per
        UPDATE, which is how the batch picture avoids re-encoding
        millions of prefixes it already holds encoded. The collections
        are only iterated (never mutated, never kept past the call), so
        live dict views are fine. Same RIB-uniqueness precondition as
        :meth:`merge_router`.

        The pass is bucketed by *distinct chain*, not by group: real
        views share attribute bundles massively across routers (~9k
        distinct chains against ~560k groups on the ISP-Anon profile),
        and a chain's interior edges and leaf fringe are independent
        of which router threads it. So the router loop only flushes
        what is genuinely per-router — the root edge per (router,
        nexthop head) and the site link — while each group's prefix-id
        list is parked under its chain. One flush per distinct chain
        then counts the concatenated lists into the interior and
        fringe stores: millions of per-group dict probes collapse into
        a few thousand C-level counting calls over long lists.

        Concatenated chain/root buckets carry cross-group (and the
        chain buckets cross-router) multiplicity, so fresh stores are
        counted up from empty rather than ``dict.fromkeys`` — the
        refcounts, not just the weights, stay identical to the
        per-tree merge.
        """
        self._invalidate_cache()
        self._adj_dirty = True
        symbols = self._symbols
        if chain_cache is None:
            chain_cache = {}
        edges = self._edges
        fringe = self._fringe
        concat = _iter_chain.from_iterable
        site_id = None
        if self.site_root is not None:
            site_id = symbols.intern_token(self.site_root)
        # A fresh graph can count its distinct prefixes for free during
        # the chain flush (every group's pids land in exactly one
        # bucket), saving the pruner's full-store union scan later.
        seen: Optional[set] = None
        if not edges and not fringe:
            seen = set()
        # attribute bundle -> [chain, pids, pids, ...]. One probe per
        # group; chain_cache persists across calls (chains survive for
        # the next view), while the buckets live only for this pass.
        by_chain: dict = {}
        bucket_get = by_chain.get
        for router_name, groups in router_groups:
            if hasattr(groups, "items"):
                groups = groups.items()
            root: Token = ("router", router_name)
            root_id = symbols.intern_token(root)
            root_base = root_id << EDGE_SHIFT
            router_lists: list = []
            for attributes, pids in groups:
                bucket = bucket_get(attributes)
                if bucket is None:
                    chain = chain_cache.get(attributes)
                    if chain is None:
                        chain = chain_ids(
                            symbols, chain_cache, root, None, attributes
                        )
                    by_chain[attributes] = bucket = [chain, pids]
                else:
                    chain = bucket[0]
                    bucket.append(pids)
                # Root edge per (router, head), flushed inline: groups
                # are duplicate-free (RIB uniqueness), so a fresh store
                # is one fromkeys; a router threading several bundles
                # over one nexthop counts into the existing store.
                eid = root_base | chain[0]
                store = edges.get(eid)
                if store is None:
                    edges[eid] = dict.fromkeys(pids, 1)
                else:
                    _count_elements(store, pids)
                if site_id is not None:
                    router_lists.append(pids)
            if site_id is not None and router_lists:
                members = (
                    router_lists[0]
                    if len(router_lists) == 1
                    else list(concat(router_lists))
                )
                eid = (site_id << EDGE_SHIFT) | root_id
                store = edges.get(eid)
                if store is None:
                    edges[eid] = dict.fromkeys(members, 1)
                else:
                    _count_elements(store, members)
                self._has_site_edge = True
        for bucket in by_chain.values():
            head, interior, tail = bucket[0]
            lists = bucket[1:]
            members = lists[0] if len(lists) == 1 else list(concat(lists))
            if seen is not None:
                seen.update(members)
            for eid in interior:
                store = edges.get(eid)
                if store is None:
                    edges[eid] = store = {}
                _count_elements(store, members)
            if include_prefix_leaves:
                store = fringe.get(tail)
                if store is None:
                    fringe[tail] = store = {}
                _count_elements(store, members)
        if seen is not None:
            self._total = len(seen)

    def merge_view_shards(
        self, shards: Iterable, include_prefix_leaves: bool = True
    ) -> None:
        """Join per-worker view fragments into the refcount stores.

        Each shard contributes ``(symbols, edge_stores, chain_lists)``
        as produced by a worker running the per-router half of
        :meth:`merge_id_view` over its slice of the routers (see
        :func:`repro.tamp.picture._build_rex_view_shard`):

        * *edge_stores* — the root and site-link refcount stores, keyed
          by shard-local packed edge ids. Shards partition the routers
          and every one of these edges is per-router, so the remapped
          stores are disjoint across shards and install wholesale — no
          counting, no copying.
        * *chain_lists* — attribute bundle → flat prefix-id list. The
          interior/fringe flush is genuinely cross-shard (chains are
          shared across routers), so it runs here, over the
          concatenated lists, exactly as the serial flush would.

        Only token ids cross an id-space boundary: prefix ids are
        value-derived (:func:`repro.interning.pack_prefix`), so every
        shard already encoded prefixes identically and the stores and
        lists merge without translation.

        Join into a *fresh* graph (the batch builders do): the
        wholesale store install relies on the shards of one build being
        the only contributors of those per-router edges — joining over
        a graph that already holds one of the routers would replace its
        stores instead of merging them.
        """
        self._invalidate_cache()
        self._adj_dirty = True
        symbols = self._symbols
        edges = self._edges
        fringe = self._fringe
        concat = _iter_chain.from_iterable
        seen: Optional[set] = None
        if not edges and not fringe:
            seen = set()
        merged: dict = {}
        for shard_symbols, shard_edges, chain_lists in shards:
            token_map = symbols.remap_tokens(shard_symbols)
            if shard_edges:
                # Disjoint-by-construction: every shard edge is
                # (router → head) or (site → router) and routers are
                # partitioned, so zip-update never collides.
                edges.update(
                    zip(
                        (
                            (token_map[eid >> EDGE_SHIFT] << EDGE_SHIFT)
                            | token_map[eid & EDGE_MASK]
                            for eid in shard_edges
                        ),
                        shard_edges.values(),
                    )
                )
            for attributes, flat in chain_lists.items():
                lists = merged.get(attributes)
                if lists is None:
                    merged[attributes] = [flat]
                else:
                    lists.append(flat)
        if self.site_root is not None and edges:
            # Workers wire one site link per router with routes; any
            # surviving edge implies at least one such router.
            self._symbols.intern_token(self.site_root)
            self._has_site_edge = True
        chain_cache: dict = {}
        placeholder: Token = ("router", "")
        for attributes, lists in merged.items():
            head, interior, tail = chain_ids(
                symbols, chain_cache, placeholder, None, attributes
            )
            members = lists[0] if len(lists) == 1 else list(concat(lists))
            if seen is not None:
                seen.update(members)
            for eid in interior:
                store = edges.get(eid)
                if store is None:
                    edges[eid] = store = {}
                _count_elements(store, members)
            if include_prefix_leaves:
                store = fringe.get(tail)
                if store is None:
                    fringe[tail] = store = {}
                _count_elements(store, members)
        if seen is not None:
            self._total = len(seen)

    def merge_graph(self, other: "TampGraph") -> None:
        """Fold *other*'s refcount stores into this graph.

        The serve layer's fan-in join (DESIGN.md §14): each monitor
        shard maintains a live :class:`TampGraph` over its slice of the
        peers, and the snapshot layer sums them into one picture. Token
        ids cross the id-space boundary via
        :meth:`~repro.interning.SymbolTable.remap_tokens`; prefix ids
        are value-derived and install untranslated.

        Refcounts *sum* (unlike :meth:`merge_view_shards`'s wholesale
        install): shards partition routes by peer, so a single-shard
        run's per-(edge, prefix) refcount equals the sum of the shard
        counts — which is what makes the merged picture bit-identical
        to an unsharded one.
        """
        self._invalidate_cache()
        self._adj_dirty = True
        self._has_site_edge = False  # pessimistic; roots() rebuilds
        token_map = self._symbols.remap_tokens(other._symbols)
        edges = self._edges
        for eid, store in other._edges.items():
            merged_eid = (
                token_map[eid >> EDGE_SHIFT] << EDGE_SHIFT
            ) | token_map[eid & EDGE_MASK]
            target = edges.get(merged_eid)
            if target is None:
                edges[merged_eid] = dict(store)
            else:
                get = target.get
                for pid, count in store.items():
                    target[pid] = get(pid, 0) + count
        fringe = self._fringe
        for tail, store in other._fringe.items():
            merged_tail = token_map[tail]
            target = fringe.get(merged_tail)
            if target is None:
                fringe[merged_tail] = dict(store)
            else:
                get = target.get
                for pid, count in store.items():
                    target[pid] = get(pid, 0) + count
        if self.site_root is None:
            self.site_root = other.site_root

    # ------------------------------------------------------------------
    # Mutation (used by pruning and incremental animation)
    # ------------------------------------------------------------------

    def intern_pair(self, parent: Token, child: Token) -> int:
        """Intern an edge's tokens; return the packed edge id.

        The id-level mutators below take these — the incremental
        maintainer memoizes one per chain edge so each event apply is
        pure int traffic (see :mod:`repro.tamp.incremental`).
        """
        symbols = self._symbols
        return (
            symbols.intern_token(parent) << EDGE_SHIFT
        ) | symbols.intern_token(child)

    def decode_pair(self, edge_id: int) -> Edge:
        """Decode a packed edge id back to its (parent, child) tokens."""
        return self._symbols.decode_edge(edge_id)

    def add_prefix(self, parent: Token, child: Token, prefix: Prefix) -> bool:
        """Thread one route's *prefix* over the edge (refcount +1).

        Returns True when the prefix newly appeared on the edge (weight
        grew), False for a pure refcount bump — the distinction the
        animator colors edges by.
        """
        return self.add_prefix_ids(
            self.intern_pair(parent, child),
            self._symbols.intern_prefix(prefix),
        )

    def add_prefix_ids(self, edge_id: int, pid: int) -> bool:
        """Id-level :meth:`add_prefix` (edge id from :meth:`intern_pair`)."""
        store = self._edges.get(edge_id)
        if store is None:
            self._edges[edge_id] = {pid: 1}
            if not self._adj_dirty:
                parent = edge_id >> EDGE_SHIFT
                child = edge_id & EDGE_MASK
                self._children.setdefault(parent, set()).add(child)
                self._parents.setdefault(child, set()).add(parent)
            self._invalidate_cache()
            return True
        count = store.get(pid)
        store[pid] = (count or 0) + 1
        if count is None:
            self._invalidate_cache()
            return True
        return False

    def discard_prefix(
        self, parent: Token, child: Token, prefix: Prefix
    ) -> bool:
        """Remove one route's contribution (refcount −1).

        Returns True when the prefix actually left the edge (its last
        reference dropped) — the signal the animator colors edges by.
        """
        symbols = self._symbols
        parent_id = symbols.token_id(parent)
        child_id = symbols.token_id(child)
        if parent_id is None:
            return False
        pid = symbols.prefix_id(prefix)
        if child_id is not None:
            eid = (parent_id << EDGE_SHIFT) | child_id
            if eid in self._edges:
                return self.discard_prefix_ids(eid, pid)
        if child[0] == "pfx" and child[1] == prefix:
            return self._fringe_discard(parent_id, pid)
        return False

    def _fringe_discard(self, tail: int, pid: int) -> bool:
        """Drop one reference to leaf *pid* under *tail* (True = gone)."""
        store = self._fringe.get(tail)
        if store is None:
            return False
        count = store.get(pid)
        if count is None:
            return False
        if count > 1:
            store[pid] = count - 1
            return False
        del store[pid]
        if not store:
            del self._fringe[tail]
        self._invalidate_cache()
        return True

    def discard_prefix_ids(self, edge_id: int, pid: int) -> bool:
        """Id-level :meth:`discard_prefix`."""
        store = self._edges.get(edge_id)
        if store is None:
            return False
        count = store.get(pid)
        if count is None:
            return False
        if count > 1:
            store[pid] = count - 1
            return False
        del store[pid]
        self._invalidate_cache()
        if not store:
            self.remove_edge_ids(edge_id)
        return True

    def remove_edge(self, parent: Token, child: Token) -> None:
        symbols = self._symbols
        parent_id = symbols.token_id(parent)
        child_id = symbols.token_id(child)
        if parent_id is not None and child[0] == "pfx":
            eid = (
                None
                if child_id is None
                else (parent_id << EDGE_SHIFT) | child_id
            )
            if eid is None or eid not in self._edges:
                pid = symbols.prefix_id(child[1])  # type: ignore[arg-type]
                store = self._fringe.get(parent_id)
                if store is not None:
                    store.pop(pid, None)
                    if not store:
                        del self._fringe[parent_id]
                self._invalidate_cache()
                return
        if parent_id is None or child_id is None:
            self._invalidate_cache()
            return
        self.remove_edge_ids((parent_id << EDGE_SHIFT) | child_id)

    def remove_edge_ids(self, edge_id: int) -> None:
        """Id-level :meth:`remove_edge`."""
        self._invalidate_cache()
        # Pessimistic: the removed edge might be the site link, so the
        # roots() short-circuit may no longer assume one exists.
        self._has_site_edge = False
        self._edges.pop(edge_id, None)
        if self._adj_dirty:
            return
        parent = edge_id >> EDGE_SHIFT
        child = edge_id & EDGE_MASK
        children = self._children.get(parent)
        if children is not None:
            children.discard(child)
            if not children:
                del self._children[parent]
        parents = self._parents.get(child)
        if parents is not None:
            parents.discard(parent)
            if not parents:
                del self._parents[child]

    def adopt_edge(
        self, parent: Token, child: Token, prefixes: dict[Prefix, int]
    ) -> None:
        """Install an edge with a copy of an existing refcount map.

        The bulk transfer used when deriving one graph from another
        (pruning builds its survivor graph this way).
        """
        intern_prefix = self._symbols.intern_prefix
        self.adopt_edge_ids(
            self.intern_pair(parent, child),
            {intern_prefix(p): count for p, count in prefixes.items()},
        )

    def adopt_edge_ids(self, edge_id: int, store: dict[int, int]) -> None:
        """Id-level :meth:`adopt_edge`.

        Only valid between graphs sharing a symbol table (pruning: the
        survivor graph is constructed with ``symbols=graph.symbols``).
        """
        self._edges[edge_id] = dict(store)
        if not self._adj_dirty:
            parent = edge_id >> EDGE_SHIFT
            child = edge_id & EDGE_MASK
            self._children.setdefault(parent, set()).add(child)
            self._parents.setdefault(child, set()).add(parent)
        self._invalidate_cache()

    # ------------------------------------------------------------------
    # Queries (the decode boundary — ids never escape)
    # ------------------------------------------------------------------

    def edges(self) -> Iterator[tuple[Edge, set[Prefix]]]:
        symbols = self._symbols
        token = symbols.token
        prefix = symbols.prefix
        for eid, store in self._edges.items():
            yield (
                (token(eid >> EDGE_SHIFT), token(eid & EDGE_MASK)),
                set(map(prefix, store)),
            )
        for tail, store in self._fringe.items():
            tail_token = token(tail)
            for pid in store:
                leaf = prefix(pid)
                yield (tail_token, ("pfx", leaf)), {leaf}

    def raw_edges(self) -> Iterator[tuple[Edge, dict[Prefix, int]]]:
        """Iterate edges with their per-prefix refcount maps.

        The maps are decoded copies — whole-graph passes that only need
        weights should use :meth:`raw_id_edges` instead, which is
        allocation-free for the interior.
        """
        symbols = self._symbols
        token = symbols.token
        prefix = symbols.prefix
        for eid, store in self._edges.items():
            yield (
                (token(eid >> EDGE_SHIFT), token(eid & EDGE_MASK)),
                {prefix(pid): count for pid, count in store.items()},
            )
        for tail, store in self._fringe.items():
            tail_token = token(tail)
            for pid, count in store.items():
                yield (tail_token, ("pfx", prefix(pid))), {prefix(pid): count}

    def raw_id_edges(self) -> Iterator[tuple[int, dict[int, int]]]:
        """Iterate (edge id, refcount map) without token decoding.

        Interior mappings are live internal state — callers must not
        mutate them; fringe leaves are synthesized one-entry maps (and
        intern their ``("pfx", p)`` token on the way out). Whole-graph
        scans that can treat the leaf fringe wholesale — pruning, frame
        diffing — should use :attr:`_edges` plus :meth:`fringe_stores`
        instead of paying the per-leaf synthesis.
        """
        yield from self._edges.items()
        pfx_token_id = self._symbols.pfx_token_id
        pfx_tid = self._symbols.pfx_token_id_map.get
        for tail, store in self._fringe.items():
            base = tail << EDGE_SHIFT
            for pid, count in store.items():
                child = pfx_tid(pid)
                if child is None:
                    child = pfx_token_id(pid)
                yield base | child, {pid: count}

    def fringe_stores(self) -> Iterator[tuple[int, dict[int, int]]]:
        """Iterate (tail token id, {prefix id: refcount}) fringe stores.

        Each entry stands for ``len(store)`` leaf edges of weight 1 (the
        leaf invariant). The mappings are live internal state — callers
        must not mutate them.
        """
        yield from self._fringe.items()

    def edge_list(self) -> list[Edge]:
        decode = self._symbols.decode_edge
        found = [decode(eid) for eid in self._edges]
        token = self._symbols.token
        prefix = self._symbols.prefix
        for tail, store in self._fringe.items():
            tail_token = token(tail)
            found.extend((tail_token, ("pfx", prefix(pid))) for pid in store)
        return found

    def has_edge(self, parent: Token, child: Token) -> bool:
        symbols = self._symbols
        parent_id = symbols.token_id(parent)
        if parent_id is None:
            return False
        child_id = symbols.token_id(child)
        if child_id is not None and (
            (parent_id << EDGE_SHIFT) | child_id
        ) in self._edges:
            return True
        if child[0] == "pfx":
            store = self._fringe.get(parent_id)
            if store is not None:
                pid = symbols.prefix_id(child[1])  # type: ignore[arg-type]
                return pid in store
        return False

    def weight_id(self, edge_id: int) -> int:
        """Id-level :meth:`weight` for interior edges (no token decode).

        Leaf-fringe edges are not addressable by packed id from here;
        the incremental maintainer — the only id-level caller — interns
        its prefix leaves as ordinary edges, so the interior store is
        complete for it.
        """
        store = self._edges.get(edge_id)
        return 0 if store is None else len(store)

    def weight(self, parent: Token, child: Token) -> int:
        """Unique prefixes on the edge — the paper's edge weight."""
        symbols = self._symbols
        parent_id = symbols.token_id(parent)
        if parent_id is None:
            return 0
        child_id = symbols.token_id(child)
        if child_id is not None:
            store = self._edges.get((parent_id << EDGE_SHIFT) | child_id)
            if store is not None:
                return len(store)
        if child[0] == "pfx" and self.has_edge(parent, child):
            return 1
        return 0

    def edge_prefixes(self, parent: Token, child: Token) -> frozenset[Prefix]:
        symbols = self._symbols
        parent_id = symbols.token_id(parent)
        if parent_id is None:
            return frozenset()
        child_id = symbols.token_id(child)
        if child_id is not None:
            store = self._edges.get((parent_id << EDGE_SHIFT) | child_id)
            if store is not None:
                return frozenset(map(symbols.prefix, store))
        if child[0] == "pfx" and self.has_edge(parent, child):
            return frozenset({child[1]})  # type: ignore[arg-type]
        return frozenset()

    def children(self, node: Token) -> set[Token]:
        node_id = self._symbols.token_id(node)
        if node_id is None:
            return set()
        token = self._symbols.token
        child_map, _ = self._adj()
        found = {token(child) for child in child_map.get(node_id, ())}
        store = self._fringe.get(node_id)
        if store is not None:
            prefix = self._symbols.prefix
            found.update(("pfx", prefix(pid)) for pid in store)
        return found

    def parents(self, node: Token) -> set[Token]:
        node_id = self._symbols.token_id(node)
        token = self._symbols.token
        found: set[Token] = set()
        if node_id is not None:
            _, parent_map = self._adj()
            found = {
                token(parent) for parent in parent_map.get(node_id, ())
            }
        if node[0] == "pfx" and self._fringe:
            pid = self._symbols.prefix_id(node[1])  # type: ignore[arg-type]
            found.update(
                token(tail)
                for tail, store in self._fringe.items()
                if pid in store
            )
        return found

    def nodes(self) -> set[Token]:
        ids: set[int] = set()
        for eid in self._edges:
            ids.add(eid >> EDGE_SHIFT)
            ids.add(eid & EDGE_MASK)
        ids.update(self._fringe)
        found = set(map(self._symbols.token, ids))
        prefix = self._symbols.prefix
        for store in self._fringe.values():
            found.update(("pfx", prefix(pid)) for pid in store)
        if self.site_root is not None:
            found.add(self.site_root)
        return found

    def roots(self) -> list[Token]:
        """Nodes with no parents: the site root, or the router roots."""
        site_root = self.site_root
        # Freshly batch-built graphs know they wired the site link —
        # answer without touching (or rebuilding) adjacency at all.
        if site_root is not None and self._has_site_edge:
            return [site_root]
        token = self._symbols.token
        child_map, parent_map = self._adj()
        if site_root is not None:
            site_id = self._symbols.token_id(site_root)
            if site_id is not None and (
                site_id in child_map or site_id in parent_map
            ):
                return [site_root]
        # Every root has an outgoing edge (nodes only exist on edges),
        # so scanning the parent side of the adjacency is exhaustive.
        return sorted(
            (token(n) for n in child_map if not parent_map.get(n)),
            key=str,
        )

    def total_prefixes(self) -> int:
        """Distinct prefixes represented in the graph (the 100% mark).

        Cached until the next mutation: pruning asks for this once per
        edge fraction, and the answer only changes when an edge's prefix
        membership does.
        """
        if self._total is None:
            seen: set[int] = set()
            for store in self._edges.values():
                seen.update(store)
            for store in self._fringe.values():
                seen.update(store)
            self._total = len(seen)
        return self._total

    def all_prefixes(self) -> set[Prefix]:
        seen: set[int] = set()
        for store in self._edges.values():
            seen.update(store)
        for store in self._fringe.values():
            seen.update(store)
        return set(map(self._symbols.prefix, seen))

    def edge_fraction(self, parent: Token, child: Token) -> float:
        """This edge's share of all prefixes (drives thickness/pruning)."""
        total = self.total_prefixes()
        if total == 0:
            return 0.0
        return self.weight(parent, child) / total

    def depths(self) -> dict[Token, int]:
        """BFS depth of every node from the root set (for pruning/layout)."""
        token = self._symbols.token
        by_id = self._id_depths()
        found = {token(node): depth for node, depth in by_id.items()}
        if self._fringe:
            prefix = self._symbols.prefix
            for tail, store in self._fringe.items():
                tail_depth = by_id.get(tail)
                if tail_depth is None:
                    continue
                below = tail_depth + 1
                for pid in store:
                    leaf: Token = ("pfx", prefix(pid))
                    if leaf not in found or found[leaf] > below:
                        found[leaf] = below
        return found

    def _id_depths(self) -> dict[int, int]:
        """BFS depths keyed by token id (the prune-internal variant)."""
        token_id = self._symbols.token_id
        depths: dict[int, int] = {}
        queue: deque[int] = deque()
        for root in self.roots():
            root_id = token_id(root)
            assert root_id is not None
            depths[root_id] = 0
            queue.append(root_id)
        children, _ = self._adj()
        while queue:
            node = queue.popleft()
            below = depths[node] + 1
            for child in children.get(node, ()):
                if child not in depths:
                    depths[child] = below
                    queue.append(child)
        return depths

    def edge_count(self) -> int:
        return len(self._edges) + sum(
            len(store) for store in self._fringe.values()
        )

    def __len__(self) -> int:
        return self.edge_count()

    def copy(self) -> "TampGraph":
        duplicate = TampGraph(symbols=self._symbols)
        duplicate.site_root = self.site_root
        duplicate._edges = {
            eid: dict(store) for eid, store in self._edges.items()
        }
        if self._adj_dirty:
            # Stale maps are not worth copying — the duplicate rebuilds
            # its own from the edge keys on first traversal.
            duplicate._adj_dirty = True
        else:
            duplicate._children = {
                node: set(children)
                for node, children in self._children.items()
            }
            duplicate._parents = {
                node: set(parents)
                for node, parents in self._parents.items()
            }
        duplicate._fringe = {
            tail: dict(store) for tail, store in self._fringe.items()
        }
        duplicate._has_site_edge = self._has_site_edge
        duplicate._total = self._total
        return duplicate
