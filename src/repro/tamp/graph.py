"""The merged TAMP graph.

Merging per-router trees is where TAMP's "one picture says 1,000,000
routes" comes from — and where the crucial subtlety lives: edge weights
are **unique prefix counts**, so merging performs a *set union* of the
prefixes carried on the same edge, never an addition (Figure 1(c): the
NexthopA–AS1 edge weighs 4, not 3+3, because two prefixes are common).
An optional site root (the REX recorder in Figure 2's leftmost box) ties
the router roots together.

Implementation notes:

* Each edge stores a *reference count per prefix* — how many
  currently-installed routes thread that prefix over that edge. The
  weight is the number of distinct prefixes (union semantics), while
  the refcount makes incremental removal O(path length): when router X
  withdraws a route, the prefix only leaves an AS-level edge if no
  other router's route still traverses it.
* The stores are interned (DESIGN.md §10): nodes and prefixes are
  dense ids from a per-build :class:`SymbolTable`, an edge key packs
  two token ids into one int, and a refcount map is ``{prefix id:
  count}``. Merging a tree is then per-edge C-level id counting, and
  ``total_prefixes()`` is the size of a union of int-key views — no
  token tuple is hashed and no Prefix object is touched on the hot
  path. Every public method still speaks tokens and prefixes: ids are
  decoded at the query boundary, which on realistic workloads means on
  *pruned* graphs, never per-route.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Iterator, Optional

from repro.collector.events import Token
from repro.interning import EDGE_MASK, EDGE_SHIFT, IdSet, SymbolTable
from repro.net.prefix import Prefix
from repro.tamp.tree import Edge, TampTree, chain_ids

try:
    # Counter's C increment loop, usable on a plain dict; the public
    # Counter wrapper costs one object + two isinstance checks per
    # update call, which the merge loop pays millions of times.
    from collections import _count_elements  # type: ignore[attr-defined]
except ImportError:  # pragma: no cover - CPython always has it
    def _count_elements(mapping: dict, iterable: Iterable) -> None:
        get = mapping.get
        for element in iterable:
            mapping[element] = get(element, 0) + 1


class TampGraph:
    """A directed graph over TAMP node tokens with prefix-set weights."""

    __slots__ = (
        "site_root",
        "_symbols",
        "_edges",
        "_children",
        "_parents",
        "_total",
    )

    def __init__(
        self,
        site_name: Optional[str] = None,
        symbols: Optional[SymbolTable] = None,
    ) -> None:
        self.site_root: Optional[Token] = (
            ("root", site_name) if site_name is not None else None
        )
        #: Per-build symbol table; derived graphs (copies, prunes) share
        #: their parent's table — it is append-only, so sharing is safe.
        self._symbols = SymbolTable() if symbols is None else symbols
        # packed edge id -> {prefix id: refcount}
        self._edges: dict[int, dict[int, int]] = {}
        self._children: dict[int, set[int]] = {}
        self._parents: dict[int, set[int]] = {}
        #: Cached distinct-prefix count; None = recompute. Pruning calls
        #: edge_fraction per edge, which divides by this — without the
        #: cache every fraction walks every edge's prefix map.
        self._total: Optional[int] = None

    def _invalidate_cache(self) -> None:
        """The cache-invalidation hook.

        Every method that can change edge/prefix membership must call
        this (enforced statically: rule CACHE001 of ``repro lint``).
        Refcount-only branches may legitimately skip it — membership
        did not change — but the hook must be reachable in the method.
        """
        self._total = None

    @property
    def symbols(self) -> SymbolTable:
        """The graph's symbol table (id ↔ token/prefix mapping)."""
        return self._symbols

    # ------------------------------------------------------------------
    # Merging
    # ------------------------------------------------------------------

    @classmethod
    def merge(
        cls, trees: Iterable[TampTree], site_name: Optional[str] = None
    ) -> "TampGraph":
        """Merge per-router trees with prefix-set union on shared edges."""
        graph = cls(site_name)
        for tree in trees:
            graph.merge_tree(tree)
        return graph

    def merge_tree(self, tree: TampTree) -> None:
        """Merge one router tree (id-level union on shared edges).

        A tree sharing this graph's symbol table merges without any
        translation; a foreign tree's ids are remapped through a table
        merge first (the parallel shard-join path — see
        :mod:`repro.tamp.picture`).
        """
        if tree.symbols is self._symbols:
            self._merge_ids(tree, None, None)
        else:
            token_map = self._symbols.remap_tokens(tree.symbols)
            prefix_map = self._symbols.remap_prefixes(tree.symbols)
            self._merge_ids(tree, token_map, prefix_map)

    def _merge_ids(
        self,
        tree: TampTree,
        token_map: Optional[list[int]],
        prefix_map: Optional[list[int]],
    ) -> None:
        """Fold *tree*'s columns into the refcount stores.

        ``token_map``/``prefix_map`` translate the tree's id space into
        this graph's (both None when the spaces are shared). Interior
        columns and the leaf fringe increment refcounts through the C
        counting loop — a column whose edge is new to the graph becomes
        its whole store in one ``dict.fromkeys`` (columns are sets, so
        every initial count is 1). The site-root link carries the union
        of the root-adjacent columns, as in the original builder; those
        columns are read off the tree's root adjacency up front so the
        per-edge loop stays comparison-free.
        """
        self._invalidate_cache()
        edges = self._edges
        children = self._children
        parents = self._parents
        root_id = tree._root_id
        collect_root = self.site_root is not None
        root_union: IdSet = IdSet()
        if collect_root:
            base = tree._root_id << EDGE_SHIFT
            for child in tree._children.get(tree._root_id, ()):
                root_union.update(tree._edges[base | child])
        if token_map is None:
            for eid, column in tree._edges.items():
                store = edges.get(eid)
                if store is None:
                    edges[eid] = dict.fromkeys(column, 1)
                    parent = eid >> EDGE_SHIFT
                    child = eid & EDGE_MASK
                    children.setdefault(parent, set()).add(child)
                    parents.setdefault(child, set()).add(parent)
                else:
                    _count_elements(store, column)
        else:
            assert prefix_map is not None
            root_id = token_map[root_id]
            if root_union:
                root_union = IdSet(map(prefix_map.__getitem__, root_union))
            for eid, column in tree._edges.items():
                parent = token_map[eid >> EDGE_SHIFT]
                child = token_map[eid & EDGE_MASK]
                members = list(map(prefix_map.__getitem__, column))
                eid = (parent << EDGE_SHIFT) | child
                store = edges.get(eid)
                if store is None:
                    edges[eid] = dict.fromkeys(members, 1)
                    children.setdefault(parent, set()).add(child)
                    parents.setdefault(child, set()).add(parent)
                else:
                    _count_elements(store, members)
        pfx_token_id = self._symbols.pfx_token_id
        pfx_tid = self._symbols.pfx_token_id_map.get
        for tail, fringe in tree._leaves.items():
            leaf_members: Iterable[int] = fringe
            if token_map is not None:
                tail = token_map[tail]
                assert prefix_map is not None
                leaf_members = list(map(prefix_map.__getitem__, fringe))
            base = tail << EDGE_SHIFT
            kids = children.get(tail)
            if kids is None:
                kids = children[tail] = set()
            for pid in leaf_members:
                child = pfx_tid(pid)
                if child is None:
                    child = pfx_token_id(pid)
                eid = base | child
                store = edges.get(eid)
                if store is None:
                    edges[eid] = {pid: 1}
                    kids.add(child)
                    tails = parents.get(child)
                    if tails is None:
                        parents[child] = {tail}
                    else:
                        tails.add(tail)
                else:
                    store[pid] = store.get(pid, 0) + 1
        if collect_root and root_union:
            site_root = self.site_root
            assert site_root is not None
            site_id = self._symbols.intern_token(site_root)
            eid = (site_id << EDGE_SHIFT) | root_id
            store = edges.get(eid)
            if store is None:
                edges[eid] = store = {}
                children.setdefault(site_id, set()).add(root_id)
                parents.setdefault(root_id, set()).add(site_id)
            _count_elements(store, root_union)

    def merge_router(
        self,
        router_name: str,
        routes: Iterable,
        include_prefix_leaves: bool = True,
        chain_cache: Optional[dict] = None,
    ) -> None:
        """Fold one router's routes directly into the refcount stores.

        The serial batch-build fast path (:mod:`repro.tamp.picture`):
        equivalent to building the router's :class:`TampTree` against
        this graph's table and merging it, without materializing the
        intermediate columns. The equivalence rests on RIB uniqueness —
        a route table holds at most one route per (router, prefix), so
        every (edge, prefix) pair occurs at most once per router and
        per-group increments equal per-tree set merges. Callers passing
        a table with duplicate prefixes per router would double-count;
        every route source in this project (RIBs, replayed event
        tables) satisfies the invariant.

        *chain_cache* memoizes interned chains per attribute bundle
        (see :func:`repro.tamp.tree.chain_ids`); pass one shared dict
        across the routers of a build.
        """
        by_attrs: dict = {}
        for route in routes:
            by_attrs.setdefault(route.attributes, []).append(route.prefix)
        self._merge_grouped(
            router_name, by_attrs, include_prefix_leaves, chain_cache
        )

    def merge_entries(
        self,
        router_name: str,
        entries: Iterable,
        include_prefix_leaves: bool = True,
        chain_cache: Optional[dict] = None,
    ) -> None:
        """:meth:`merge_router` over raw (prefix, attributes) pairs.

        The whole-table batch path: :meth:`AdjRibIn.entries
        <repro.bgp.rib.AdjRibIn.entries>` yields native dict items, so
        a full-view build never constructs the per-route
        :class:`~repro.bgp.rib.Route` wrappers (seconds of pure
        allocation at ISP scale). Same RIB-uniqueness precondition as
        :meth:`merge_router`.
        """
        by_attrs: dict = {}
        for prefix, attributes in entries:
            by_attrs.setdefault(attributes, []).append(prefix)
        self._merge_grouped(
            router_name, by_attrs, include_prefix_leaves, chain_cache
        )

    def _merge_grouped(
        self,
        router_name: str,
        by_attrs: dict,
        include_prefix_leaves: bool,
        chain_cache: Optional[dict],
    ) -> None:
        """Fold attribute-grouped prefixes into the refcount stores."""
        self._invalidate_cache()
        symbols = self._symbols
        root: Token = ("router", router_name)
        root_id = symbols.intern_token(root)
        if chain_cache is None:
            chain_cache = {}
        edges = self._edges
        children = self._children
        parents = self._parents
        intern_prefix = symbols.intern_prefix
        pid_get = symbols.prefix_id_map.get
        pfx_token_id = symbols.pfx_token_id
        pfx_tid = symbols.pfx_token_id_map.get
        site_eid = None
        if self.site_root is not None:
            site_id = symbols.intern_token(self.site_root)
            site_eid = (site_id << EDGE_SHIFT) | root_id
        root_base = root_id << EDGE_SHIFT
        for attributes, prefixes in by_attrs.items():
            pids = [
                pid
                if (pid := pid_get(prefix)) is not None
                else intern_prefix(prefix)
                for prefix in prefixes
            ]
            head, interior, tail = chain_ids(
                symbols, chain_cache, root, prefixes[0], attributes
            )
            eid = root_base | head
            store = edges.get(eid)
            if store is None:
                edges[eid] = dict.fromkeys(pids, 1)
                children.setdefault(root_id, set()).add(head)
                parents.setdefault(head, set()).add(root_id)
            else:
                _count_elements(store, pids)
            for eid in interior:
                store = edges.get(eid)
                if store is None:
                    edges[eid] = dict.fromkeys(pids, 1)
                    parent = eid >> EDGE_SHIFT
                    child = eid & EDGE_MASK
                    children.setdefault(parent, set()).add(child)
                    parents.setdefault(child, set()).add(parent)
                else:
                    _count_elements(store, pids)
            if include_prefix_leaves:
                base = tail << EDGE_SHIFT
                kids = children.get(tail)
                if kids is None:
                    kids = children[tail] = set()
                for pid in pids:
                    child = pfx_tid(pid)
                    if child is None:
                        child = pfx_token_id(pid)
                    eid = base | child
                    store = edges.get(eid)
                    if store is None:
                        edges[eid] = {pid: 1}
                        kids.add(child)
                        tails = parents.get(child)
                        if tails is None:
                            parents[child] = {tail}
                        else:
                            tails.add(tail)
                    else:
                        store[pid] = store.get(pid, 0) + 1
            if site_eid is not None:
                store = edges.get(site_eid)
                if store is None:
                    edges[site_eid] = dict.fromkeys(pids, 1)
                    children.setdefault(site_id, set()).add(root_id)
                    parents.setdefault(root_id, set()).add(site_id)
                else:
                    _count_elements(store, pids)

    # ------------------------------------------------------------------
    # Mutation (used by pruning and incremental animation)
    # ------------------------------------------------------------------

    def intern_pair(self, parent: Token, child: Token) -> int:
        """Intern an edge's tokens; return the packed edge id.

        The id-level mutators below take these — the incremental
        maintainer memoizes one per chain edge so each event apply is
        pure int traffic (see :mod:`repro.tamp.incremental`).
        """
        symbols = self._symbols
        return (
            symbols.intern_token(parent) << EDGE_SHIFT
        ) | symbols.intern_token(child)

    def decode_pair(self, edge_id: int) -> Edge:
        """Decode a packed edge id back to its (parent, child) tokens."""
        return self._symbols.decode_edge(edge_id)

    def add_prefix(self, parent: Token, child: Token, prefix: Prefix) -> bool:
        """Thread one route's *prefix* over the edge (refcount +1).

        Returns True when the prefix newly appeared on the edge (weight
        grew), False for a pure refcount bump — the distinction the
        animator colors edges by.
        """
        return self.add_prefix_ids(
            self.intern_pair(parent, child),
            self._symbols.intern_prefix(prefix),
        )

    def add_prefix_ids(self, edge_id: int, pid: int) -> bool:
        """Id-level :meth:`add_prefix` (edge id from :meth:`intern_pair`)."""
        store = self._edges.get(edge_id)
        if store is None:
            self._edges[edge_id] = {pid: 1}
            parent = edge_id >> EDGE_SHIFT
            child = edge_id & EDGE_MASK
            self._children.setdefault(parent, set()).add(child)
            self._parents.setdefault(child, set()).add(parent)
            self._invalidate_cache()
            return True
        count = store.get(pid)
        store[pid] = (count or 0) + 1
        if count is None:
            self._invalidate_cache()
            return True
        return False

    def discard_prefix(
        self, parent: Token, child: Token, prefix: Prefix
    ) -> bool:
        """Remove one route's contribution (refcount −1).

        Returns True when the prefix actually left the edge (its last
        reference dropped) — the signal the animator colors edges by.
        """
        symbols = self._symbols
        parent_id = symbols.token_id(parent)
        child_id = symbols.token_id(child)
        pid = symbols.prefix_id(prefix)
        if parent_id is None or child_id is None or pid is None:
            return False
        return self.discard_prefix_ids(
            (parent_id << EDGE_SHIFT) | child_id, pid
        )

    def discard_prefix_ids(self, edge_id: int, pid: int) -> bool:
        """Id-level :meth:`discard_prefix`."""
        store = self._edges.get(edge_id)
        if store is None:
            return False
        count = store.get(pid)
        if count is None:
            return False
        if count > 1:
            store[pid] = count - 1
            return False
        del store[pid]
        self._invalidate_cache()
        if not store:
            self.remove_edge_ids(edge_id)
        return True

    def remove_edge(self, parent: Token, child: Token) -> None:
        symbols = self._symbols
        parent_id = symbols.token_id(parent)
        child_id = symbols.token_id(child)
        if parent_id is None or child_id is None:
            self._invalidate_cache()
            return
        self.remove_edge_ids((parent_id << EDGE_SHIFT) | child_id)

    def remove_edge_ids(self, edge_id: int) -> None:
        """Id-level :meth:`remove_edge`."""
        self._invalidate_cache()
        self._edges.pop(edge_id, None)
        parent = edge_id >> EDGE_SHIFT
        child = edge_id & EDGE_MASK
        children = self._children.get(parent)
        if children is not None:
            children.discard(child)
            if not children:
                del self._children[parent]
        parents = self._parents.get(child)
        if parents is not None:
            parents.discard(parent)
            if not parents:
                del self._parents[child]

    def adopt_edge(
        self, parent: Token, child: Token, prefixes: dict[Prefix, int]
    ) -> None:
        """Install an edge with a copy of an existing refcount map.

        The bulk transfer used when deriving one graph from another
        (pruning builds its survivor graph this way).
        """
        intern_prefix = self._symbols.intern_prefix
        self.adopt_edge_ids(
            self.intern_pair(parent, child),
            {intern_prefix(p): count for p, count in prefixes.items()},
        )

    def adopt_edge_ids(self, edge_id: int, store: dict[int, int]) -> None:
        """Id-level :meth:`adopt_edge`.

        Only valid between graphs sharing a symbol table (pruning: the
        survivor graph is constructed with ``symbols=graph.symbols``).
        """
        self._edges[edge_id] = dict(store)
        parent = edge_id >> EDGE_SHIFT
        child = edge_id & EDGE_MASK
        self._children.setdefault(parent, set()).add(child)
        self._parents.setdefault(child, set()).add(parent)
        self._invalidate_cache()

    # ------------------------------------------------------------------
    # Queries (the decode boundary — ids never escape)
    # ------------------------------------------------------------------

    def edges(self) -> Iterator[tuple[Edge, set[Prefix]]]:
        symbols = self._symbols
        token = symbols.token
        prefix = symbols.prefix
        for eid, store in self._edges.items():
            yield (
                (token(eid >> EDGE_SHIFT), token(eid & EDGE_MASK)),
                set(map(prefix, store)),
            )

    def raw_edges(self) -> Iterator[tuple[Edge, dict[Prefix, int]]]:
        """Iterate edges with their per-prefix refcount maps.

        The maps are decoded copies — whole-graph passes that only need
        weights should use :meth:`raw_id_edges` instead, which is
        allocation-free.
        """
        symbols = self._symbols
        token = symbols.token
        prefix = symbols.prefix
        for eid, store in self._edges.items():
            yield (
                (token(eid >> EDGE_SHIFT), token(eid & EDGE_MASK)),
                {prefix(pid): count for pid, count in store.items()},
            )

    def raw_id_edges(self) -> Iterator[tuple[int, dict[int, int]]]:
        """Iterate (edge id, live refcount map) without decoding.

        The yielded mappings are internal state — callers must not
        mutate them. This is the pruning fast path: the keep/drop
        decision only needs ``len(map)``, so decoding 2M edges' tokens
        to throw 99% of them away would dominate the prune.
        """
        yield from self._edges.items()

    def edge_list(self) -> list[Edge]:
        decode = self._symbols.decode_edge
        return [decode(eid) for eid in self._edges]

    def has_edge(self, parent: Token, child: Token) -> bool:
        symbols = self._symbols
        parent_id = symbols.token_id(parent)
        child_id = symbols.token_id(child)
        if parent_id is None or child_id is None:
            return False
        return ((parent_id << EDGE_SHIFT) | child_id) in self._edges

    def weight(self, parent: Token, child: Token) -> int:
        """Unique prefixes on the edge — the paper's edge weight."""
        symbols = self._symbols
        parent_id = symbols.token_id(parent)
        child_id = symbols.token_id(child)
        if parent_id is None or child_id is None:
            return 0
        store = self._edges.get((parent_id << EDGE_SHIFT) | child_id)
        return 0 if store is None else len(store)

    def edge_prefixes(self, parent: Token, child: Token) -> frozenset[Prefix]:
        symbols = self._symbols
        parent_id = symbols.token_id(parent)
        child_id = symbols.token_id(child)
        if parent_id is None or child_id is None:
            return frozenset()
        store = self._edges.get((parent_id << EDGE_SHIFT) | child_id)
        if store is None:
            return frozenset()
        return frozenset(map(symbols.prefix, store))

    def children(self, node: Token) -> set[Token]:
        node_id = self._symbols.token_id(node)
        if node_id is None:
            return set()
        token = self._symbols.token
        return {token(child) for child in self._children.get(node_id, ())}

    def parents(self, node: Token) -> set[Token]:
        node_id = self._symbols.token_id(node)
        if node_id is None:
            return set()
        token = self._symbols.token
        return {token(parent) for parent in self._parents.get(node_id, ())}

    def nodes(self) -> set[Token]:
        ids: set[int] = set()
        for eid in self._edges:
            ids.add(eid >> EDGE_SHIFT)
            ids.add(eid & EDGE_MASK)
        found = set(map(self._symbols.token, ids))
        if self.site_root is not None:
            found.add(self.site_root)
        return found

    def roots(self) -> list[Token]:
        """Nodes with no parents: the site root, or the router roots."""
        token = self._symbols.token
        site_root = self.site_root
        if site_root is not None:
            site_id = self._symbols.token_id(site_root)
            if site_id is not None and (
                site_id in self._children or site_id in self._parents
            ):
                return [site_root]
        # Every root has an outgoing edge (nodes only exist on edges),
        # so scanning the parent side of the adjacency is exhaustive.
        parents = self._parents
        return sorted(
            (token(n) for n in self._children if not parents.get(n)),
            key=str,
        )

    def total_prefixes(self) -> int:
        """Distinct prefixes represented in the graph (the 100% mark).

        Cached until the next mutation: pruning asks for this once per
        edge fraction, and the answer only changes when an edge's prefix
        membership does.
        """
        if self._total is None:
            seen: set[int] = set()
            for store in self._edges.values():
                seen.update(store)
            self._total = len(seen)
        return self._total

    def all_prefixes(self) -> set[Prefix]:
        seen: set[int] = set()
        for store in self._edges.values():
            seen.update(store)
        return set(map(self._symbols.prefix, seen))

    def edge_fraction(self, parent: Token, child: Token) -> float:
        """This edge's share of all prefixes (drives thickness/pruning)."""
        total = self.total_prefixes()
        if total == 0:
            return 0.0
        return self.weight(parent, child) / total

    def depths(self) -> dict[Token, int]:
        """BFS depth of every node from the root set (for pruning/layout)."""
        token = self._symbols.token
        return {
            token(node): depth for node, depth in self._id_depths().items()
        }

    def _id_depths(self) -> dict[int, int]:
        """BFS depths keyed by token id (the prune-internal variant)."""
        token_id = self._symbols.token_id
        depths: dict[int, int] = {}
        queue: deque[int] = deque()
        for root in self.roots():
            root_id = token_id(root)
            assert root_id is not None
            depths[root_id] = 0
            queue.append(root_id)
        children = self._children
        while queue:
            node = queue.popleft()
            below = depths[node] + 1
            for child in children.get(node, ()):
                if child not in depths:
                    depths[child] = below
                    queue.append(child)
        return depths

    def edge_count(self) -> int:
        return len(self._edges)

    def __len__(self) -> int:
        return len(self._edges)

    def copy(self) -> "TampGraph":
        duplicate = TampGraph(symbols=self._symbols)
        duplicate.site_root = self.site_root
        duplicate._edges = {
            eid: dict(store) for eid, store in self._edges.items()
        }
        duplicate._children = {
            node: set(children) for node, children in self._children.items()
        }
        duplicate._parents = {
            node: set(parents) for node, parents in self._parents.items()
        }
        duplicate._total = self._total
        return duplicate
