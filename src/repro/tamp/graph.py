"""The merged TAMP graph.

Merging per-router trees is where TAMP's "one picture says 1,000,000
routes" comes from — and where the crucial subtlety lives: edge weights
are **unique prefix counts**, so merging performs a *set union* of the
prefixes carried on the same edge, never an addition (Figure 1(c): the
NexthopA–AS1 edge weighs 4, not 3+3, because two prefixes are common).
An optional site root (the REX recorder in Figure 2's leftmost box) ties
the router roots together.

Implementation note: each edge stores a *reference count per prefix* —
how many currently-installed routes thread that prefix over that edge.
The weight is the number of distinct prefixes (union semantics), while
the refcount makes incremental removal O(path length): when router X
withdraws a route, the prefix only leaves an AS-level edge if no other
router's route still traverses it.
"""

from __future__ import annotations

from collections import Counter, deque
from typing import Iterable, Iterator, Optional

from repro.collector.events import Token
from repro.net.prefix import Prefix
from repro.tamp.tree import Edge, TampTree


class TampGraph:
    """A directed graph over TAMP node tokens with prefix-set weights."""

    __slots__ = ("site_root", "_edges", "_children", "_parents", "_total")

    def __init__(self, site_name: Optional[str] = None) -> None:
        self.site_root: Optional[Token] = (
            ("root", site_name) if site_name is not None else None
        )
        # edge -> {prefix: refcount}
        self._edges: dict[Edge, dict[Prefix, int]] = {}
        self._children: dict[Token, set[Token]] = {}
        self._parents: dict[Token, set[Token]] = {}
        #: Cached distinct-prefix count; None = recompute. Pruning calls
        #: edge_fraction per edge, which divides by this — without the
        #: cache every fraction walks every edge's prefix set.
        self._total: Optional[int] = None

    def _invalidate_cache(self) -> None:
        """The cache-invalidation hook.

        Every method that can change edge/prefix membership must call
        this (enforced statically: rule CACHE001 of ``repro lint``).
        Refcount-only branches may legitimately skip it — membership
        did not change — but the hook must be reachable in the method.
        """
        self._total = None

    @classmethod
    def merge(
        cls, trees: Iterable[TampTree], site_name: Optional[str] = None
    ) -> "TampGraph":
        """Merge per-router trees with prefix-set union on shared edges."""
        graph = cls(site_name)
        for tree in trees:
            graph.merge_tree(tree)
        return graph

    def merge_tree(self, tree: TampTree) -> None:
        # One pass over the tree's edges: merge each, collecting the
        # root-adjacent prefix union for the site-root link as we go.
        site_root = self.site_root
        tree_root = tree.root
        root_prefixes: set[Prefix] = set()
        for (parent, child), prefixes in tree.edges():
            self._bulk_add(parent, child, prefixes)
            if site_root is not None and parent == tree_root:
                root_prefixes |= prefixes
        if site_root is not None:
            self._bulk_add(site_root, tree_root, root_prefixes)

    def _bulk_add(self, parent: Token, child: Token, prefixes) -> None:
        """Add a whole prefix set to an edge (refcount +1 each).

        ``Counter.update`` runs the increment loop in C, which is what
        keeps merging a 1.5M-route view affordable.
        """
        if not prefixes:
            return
        self._invalidate_cache()
        edge = (parent, child)
        existing = self._edges.get(edge)
        if existing is None:
            existing = Counter()
            self._edges[edge] = existing
            self._children.setdefault(parent, set()).add(child)
            self._parents.setdefault(child, set()).add(parent)
        existing.update(prefixes)

    # ------------------------------------------------------------------
    # Mutation (used by pruning and incremental animation)
    # ------------------------------------------------------------------

    def add_prefix(self, parent: Token, child: Token, prefix: Prefix) -> bool:
        """Thread one route's *prefix* over the edge (refcount +1).

        Returns True when the prefix newly appeared on the edge (weight
        grew), False for a pure refcount bump — the distinction the
        animator colors edges by.
        """
        edge = (parent, child)
        prefixes = self._edges.get(edge)
        if prefixes is None:
            self._edges[edge] = {prefix: 1}
            self._children.setdefault(parent, set()).add(child)
            self._parents.setdefault(child, set()).add(parent)
            self._invalidate_cache()
            return True
        count = prefixes.get(prefix)
        prefixes[prefix] = (count or 0) + 1
        if count is None:
            self._invalidate_cache()
            return True
        return False

    def discard_prefix(
        self, parent: Token, child: Token, prefix: Prefix
    ) -> bool:
        """Remove one route's contribution (refcount −1).

        Returns True when the prefix actually left the edge (its last
        reference dropped) — the signal the animator colors edges by.
        """
        edge = (parent, child)
        prefixes = self._edges.get(edge)
        if prefixes is None:
            return False
        count = prefixes.get(prefix)
        if count is None:
            return False
        if count > 1:
            prefixes[prefix] = count - 1
            return False
        del prefixes[prefix]
        self._invalidate_cache()
        if not prefixes:
            self.remove_edge(parent, child)
        return True

    def remove_edge(self, parent: Token, child: Token) -> None:
        self._invalidate_cache()
        self._edges.pop((parent, child), None)
        children = self._children.get(parent)
        if children is not None:
            children.discard(child)
            if not children:
                del self._children[parent]
        parents = self._parents.get(child)
        if parents is not None:
            parents.discard(parent)
            if not parents:
                del self._parents[child]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def edges(self) -> Iterator[tuple[Edge, set[Prefix]]]:
        for edge, prefixes in self._edges.items():
            yield edge, set(prefixes)

    def raw_edges(self) -> Iterator[tuple[Edge, dict[Prefix, int]]]:
        """Iterate edges without copying the prefix maps.

        The yielded mappings are live internal state — callers must not
        mutate them. Exists for whole-graph passes (pruning, statistics)
        where per-edge set copies would dominate the runtime.
        """
        yield from self._edges.items()

    def adopt_edge(
        self, parent: Token, child: Token, prefixes: dict[Prefix, int]
    ) -> None:
        """Install an edge with a copy of an existing refcount map.

        The bulk transfer used when deriving one graph from another
        (pruning builds its survivor graph this way).
        """
        self._edges[(parent, child)] = dict(prefixes)
        self._children.setdefault(parent, set()).add(child)
        self._parents.setdefault(child, set()).add(parent)
        self._invalidate_cache()

    def edge_list(self) -> list[Edge]:
        return list(self._edges)

    def has_edge(self, parent: Token, child: Token) -> bool:
        return (parent, child) in self._edges

    def weight(self, parent: Token, child: Token) -> int:
        """Unique prefixes on the edge — the paper's edge weight."""
        return len(self._edges.get((parent, child), ()))

    def edge_prefixes(self, parent: Token, child: Token) -> frozenset[Prefix]:
        return frozenset(self._edges.get((parent, child), ()))

    def children(self, node: Token) -> set[Token]:
        return set(self._children.get(node, ()))

    def parents(self, node: Token) -> set[Token]:
        return set(self._parents.get(node, ()))

    def nodes(self) -> set[Token]:
        found: set[Token] = set()
        if self.site_root is not None:
            found.add(self.site_root)
        for parent, child in self._edges:
            found.add(parent)
            found.add(child)
        return found

    def roots(self) -> list[Token]:
        """Nodes with no parents: the site root, or the router roots."""
        if self.site_root is not None and self.site_root in self.nodes():
            return [self.site_root]
        return sorted(
            (n for n in self.nodes() if not self._parents.get(n)),
            key=str,
        )

    def total_prefixes(self) -> int:
        """Distinct prefixes represented in the graph (the 100% mark).

        Cached until the next mutation: pruning asks for this once per
        edge fraction, and the answer only changes when an edge's prefix
        membership does.
        """
        if self._total is None:
            self._total = len(self.all_prefixes())
        return self._total

    def all_prefixes(self) -> set[Prefix]:
        prefixes: set[Prefix] = set()
        for edge_prefixes in self._edges.values():
            prefixes.update(edge_prefixes)
        return prefixes

    def edge_fraction(self, parent: Token, child: Token) -> float:
        """This edge's share of all prefixes (drives thickness/pruning)."""
        total = self.total_prefixes()
        if total == 0:
            return 0.0
        return self.weight(parent, child) / total

    def depths(self) -> dict[Token, int]:
        """BFS depth of every node from the root set (for pruning/layout)."""
        depths: dict[Token, int] = {}
        queue: deque[Token] = deque()
        for root in self.roots():
            depths[root] = 0
            queue.append(root)
        while queue:
            node = queue.popleft()
            for child in self._children.get(node, ()):
                if child not in depths:
                    depths[child] = depths[node] + 1
                    queue.append(child)
        return depths

    def edge_count(self) -> int:
        return len(self._edges)

    def __len__(self) -> int:
        return len(self._edges)

    def copy(self) -> "TampGraph":
        duplicate = TampGraph()
        duplicate.site_root = self.site_root
        duplicate._edges = {
            edge: dict(prefixes) for edge, prefixes in self._edges.items()
        }
        duplicate._children = {
            node: set(children) for node, children in self._children.items()
        }
        duplicate._parents = {
            node: set(parents) for node, parents in self._parents.items()
        }
        duplicate._total = self._total
        return duplicate
