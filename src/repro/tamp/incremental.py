"""Incremental TAMP maintenance from an event stream.

A router's TAMP tree changes with every BGP message: announcements add
branches or thicken edges, withdrawals thin or remove them. This module
keeps a merged TAMP graph current against a stream of collector events,
which is what the animation builds on.

The maintainer owns a route table keyed by (peer, prefix): to apply an
announcement that replaces an existing route, the old route's
contribution is removed from the graph before the new one is added —
otherwise edges would accumulate ghost prefixes. The graph's per-edge
refcounts (see :mod:`repro.tamp.graph`) keep each apply O(path length).

Applies run entirely at id level: the memo caches packed edge ids (not
token pairs), so a route flap is a handful of int dict operations, and
the pulse counters the animator consumes are keyed by edge id until
:meth:`IncrementalTamp.consume_changes` decodes them at the boundary.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from repro.bgp.rib import Route
from repro.collector.events import BGPEvent, EventKind, Token
from repro.net.attributes import PathAttributes
from repro.net.prefix import Prefix, format_address
from repro.tamp.graph import TampGraph
from repro.tamp.tree import route_path_tokens

#: Names the router node for a peer address in the merged graph.
PeerNamer = Callable[[int], str]

#: Token-level pulse counts, as handed to the animator.
PulseCounts = dict[tuple[Token, Token], int]


def default_peer_namer(peer: int) -> str:
    return format_address(peer)


class IncrementalTamp:
    """A live TAMP graph fed by BGP events."""

    def __init__(
        self,
        site_name: str = "site",
        peer_namer: PeerNamer = default_peer_namer,
        include_prefix_leaves: bool = False,
    ) -> None:
        self.graph = TampGraph(site_name)
        self.peer_namer = peer_namer
        self.include_prefix_leaves = include_prefix_leaves
        self._routes: dict[tuple[int, Prefix], PathAttributes] = {}
        #: Per-edge add/remove pulse counts since the last consume,
        #: keyed by packed edge id; the animator reads these (decoded)
        #: to color edges per frame.
        self._adds: dict[int, int] = {}
        self._removes: dict[int, int] = {}
        #: Monotonic count of every pulse ever recorded (adds plus
        #: removes, never reset by a consume). This is the serve
        #: layer's delta-invalidation version: a picture snapshot keyed
        #: on it stays valid exactly until the graph's edge membership
        #: next changes. Checkpoint restore sets it explicitly so the
        #: counter is bit-identical across crash/resume.
        self.pulse_total = 0
        #: peer -> chain key -> the packed edge ids the route threads.
        #: A flapping route announces and withdraws the same chain
        #: thousands of times; memoizing turns each apply into two dict
        #: lookups. Without prefix leaves (the animation default) the
        #: chain depends only on (peer, attrs), so the inner key is the
        #: attribute bundle alone — its hash is cached on the instance.
        #: Bounded by the distinct routes seen, i.e. the same order as
        #: the route table itself.
        self._edge_ids: dict[int, dict] = {}

    # ------------------------------------------------------------------
    # Loading and applying
    # ------------------------------------------------------------------

    def load_routes(self, routes: Iterable[Route]) -> None:
        """Install a snapshot (e.g. ``rex.all_routes()``) as the baseline."""
        for route in routes:
            self._install(route.peer, route.prefix, route.attributes)
        self.consume_changes()  # the baseline is not "change"

    def apply(self, event: BGPEvent) -> None:
        """Apply one collector event."""
        if event.is_withdrawal:
            self._withdraw(event.peer, event.prefix)
        else:
            self._install(event.peer, event.prefix, event.attributes)

    def apply_all(self, events: Iterable[BGPEvent]) -> None:
        for event in events:
            self.apply(event)

    # ------------------------------------------------------------------
    # Change tracking (consumed by the animator per frame)
    # ------------------------------------------------------------------

    def consume_changes(self) -> tuple[PulseCounts, PulseCounts]:
        """Return and reset (adds, removes) pulse counts per edge.

        The internal counters are id-keyed; this is their decode
        boundary — the caller sees real token pairs. Per-frame
        consumers (the animator) should take
        :meth:`consume_id_changes` instead and decode lazily.
        """
        adds, removes = self.consume_id_changes()
        decode = self.graph.decode_pair
        return (
            {decode(eid): count for eid, count in adds.items()},
            {decode(eid): count for eid, count in removes.items()},
        )

    def consume_id_changes(self) -> tuple[dict[int, int], dict[int, int]]:
        """Id-keyed :meth:`consume_changes`: the raw per-edge pulse
        counters, keyed by packed edge id, reset on read.

        This is the animator's per-frame diff source (DESIGN.md §10):
        750 frames of a large incident never decode a token unless
        something downstream actually renders them.
        """
        adds, removes = self._adds, self._removes
        self._adds, self._removes = {}, {}
        return adds, removes

    def event_edge_ids(self, event: BGPEvent) -> list[int]:
        """The packed edge ids *event*'s route threads.

        Served from the same (peer, attrs) memo the applies use, so
        sampling a tracked edge after an apply costs two dict probes —
        never a :func:`~repro.tamp.tree.route_path_tokens` re-render.
        """
        return self._ids_for(event.peer, event.prefix, event.attributes)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def route_count(self) -> int:
        return len(self._routes)

    def current_attributes(
        self, peer: int, prefix: Prefix
    ) -> Optional[PathAttributes]:
        return self._routes.get((peer, prefix))

    # ------------------------------------------------------------------
    # Checkpointing (used by repro.pipeline)
    # ------------------------------------------------------------------

    def export_route_events(self) -> list[str]:
        """Serialize the route table as announce-event JSON lines.

        The graph, refcounts and memo caches are all derivable from the
        route table, so the table *is* the checkpointable state. Routes
        are encoded as zero-timestamp announce events — the one
        round-trippable wire format the project already has — sorted by
        (peer, prefix) so identical tables always serialize identically.
        """
        lines: list[str] = []
        for (peer, prefix), attrs in sorted(
            self._routes.items(),
            key=lambda item: (item[0][0], str(item[0][1])),
        ):
            event = BGPEvent(0.0, EventKind.ANNOUNCE, peer, prefix, attrs)
            lines.append(event.to_json())
        return lines

    def import_route_events(self, lines: Iterable[str]) -> None:
        """Rebuild the route table from :meth:`export_route_events`.

        Only valid on a fresh maintainer: restoring on top of existing
        routes would merge two route tables into a graph neither
        describes.
        """
        if self._routes:
            raise ValueError(
                "cannot import route events into a non-empty maintainer"
            )
        for line in lines:
            event = BGPEvent.from_json(line)
            self._install(event.peer, event.prefix, event.attributes)
        self.consume_changes()  # restored baseline is not "change"

    def export_pulses(self) -> dict[str, list]:
        """Serialize the unconsumed pulse counts.

        A checkpoint can land mid-pulse-period (between two window
        reports); without these the first post-resume report would
        undercount edge activity. Only valid without prefix leaves,
        where edge tokens are (str, str|int) pairs and survive a JSON
        round trip unchanged.
        """
        if self.include_prefix_leaves:
            raise ValueError(
                "pulse export requires include_prefix_leaves=False"
            )
        decode = self.graph.decode_pair

        def encode(pulses: dict[int, int]) -> list:
            decoded = [
                (decode(eid), count) for eid, count in pulses.items()
            ]
            return [
                [list(edge[0]), list(edge[1]), count]
                for edge, count in sorted(
                    decoded, key=lambda item: repr(item[0])
                )
            ]

        return {
            "adds": encode(self._adds),
            "removes": encode(self._removes),
        }

    def import_pulses(self, data: dict[str, list]) -> None:
        """Restore pulse counts from :meth:`export_pulses`."""
        intern_pair = self.graph.intern_pair

        def decode(items: list) -> dict[int, int]:
            return {
                intern_pair(tuple(head), tuple(tail)): int(count)
                for head, tail, count in items
            }

        self._adds = decode(data.get("adds", []))
        self._removes = decode(data.get("removes", []))

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _chain(self, peer: int, prefix: Prefix, attrs: PathAttributes):
        root: Token = ("router", self.peer_namer(peer))
        chain = route_path_tokens(
            root, prefix, attrs, self.include_prefix_leaves
        )
        if self.graph.site_root is not None:
            return [self.graph.site_root, *chain]
        return chain

    def _ids_for(
        self, peer: int, prefix: Prefix, attrs: PathAttributes
    ) -> list[int]:
        by_peer = self._edge_ids.get(peer)
        if by_peer is None:
            by_peer = self._edge_ids[peer] = {}
        key = (prefix, attrs) if self.include_prefix_leaves else attrs
        edge_ids = by_peer.get(key)
        if edge_ids is None:
            chain = self._chain(peer, prefix, attrs)
            intern_pair = self.graph.intern_pair
            edge_ids = by_peer[key] = [
                intern_pair(parent, child)
                for parent, child in zip(chain, chain[1:])
            ]
        return edge_ids

    def _install(
        self, peer: int, prefix: Prefix, attrs: PathAttributes
    ) -> None:
        key = (peer, prefix)
        old = self._routes.get(key)
        if old == attrs:
            return
        if old is not None:
            self._remove_contribution(peer, prefix, old)
        self._routes[key] = attrs
        pid = self.graph.symbols.intern_prefix(prefix)
        add_prefix = self.graph.add_prefix_ids
        adds = self._adds
        for eid in self._ids_for(peer, prefix, attrs):
            if add_prefix(eid, pid):
                adds[eid] = adds.get(eid, 0) + 1
                self.pulse_total += 1

    def _withdraw(self, peer: int, prefix: Prefix) -> None:
        old = self._routes.pop((peer, prefix), None)
        if old is None:
            return
        self._remove_contribution(peer, prefix, old)

    def _remove_contribution(
        self, peer: int, prefix: Prefix, attrs: PathAttributes
    ) -> None:
        pid = self.graph.symbols.prefix_id(prefix)
        discard_prefix = self.graph.discard_prefix_ids
        removes = self._removes
        for eid in self._ids_for(peer, prefix, attrs):
            if discard_prefix(eid, pid):
                removes[eid] = removes.get(eid, 0) + 1
                self.pulse_total += 1
