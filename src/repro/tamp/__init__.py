"""TAMP: Threshold And Merge Prefixes.

Section III-A of the paper. TAMP turns a set of BGP routes into a picture
of inter-domain routing *as the routers see it*: each router's routes form
a virtual tree (router → BGP nexthops → ASes along the path → prefixes),
the trees merge into a graph whose edge weights are unique-prefix counts
(set union, never addition), thresholds prune the long tail so only the
heavily used structure remains, and a layered layout renders left-to-right
with edge thickness proportional to prefixes carried.

Given an event stream instead of a snapshot, :mod:`repro.tamp.animate`
produces a fixed-duration animation (30 s at 25 fps by default) whose edge
colors encode change: black stable, green gaining, blue losing, yellow
flapping too fast to animate, with a gray shadow marking each shrunken
edge's historical maximum.
"""

from repro.tamp.tree import TampTree, route_path_tokens
from repro.tamp.graph import TampGraph
from repro.tamp.picture import (
    build_picture,
    picture_from_events,
    picture_from_rex,
)
from repro.tamp.prune import prune_flat, prune_hierarchical
from repro.tamp.layout import layout_graph, LayoutResult
from repro.tamp.render import render_ascii, render_svg
from repro.tamp.incremental import IncrementalTamp
from repro.tamp.animate import (
    EdgeState,
    TampAnimation,
    TampFrame,
    animate_stream,
)
from repro.tamp.svg_animation import render_svg_animation

__all__ = [
    "TampTree",
    "TampGraph",
    "route_path_tokens",
    "build_picture",
    "picture_from_events",
    "picture_from_rex",
    "prune_flat",
    "prune_hierarchical",
    "layout_graph",
    "LayoutResult",
    "render_ascii",
    "render_svg",
    "IncrementalTamp",
    "TampAnimation",
    "TampFrame",
    "EdgeState",
    "animate_stream",
    "render_svg_animation",
]
