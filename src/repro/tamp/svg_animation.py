"""Self-contained animated SVG export.

The paper shipped TAMP animations as a custom player; the portable
equivalent today is an SVG with SMIL timing — one file, plays in any
browser, no JavaScript. Edges animate stroke color through the paper's
state palette (black/green/blue/yellow) and stroke width through their
prefix counts; the animation clock ticks along the bottom.

Only edges that actually change get ``<animate>`` elements (a 750-frame
animation of a quiet graph stays small); static structure is drawn once.
"""

from __future__ import annotations

from functools import partial
from typing import Optional
from xml.sax.saxutils import escape

from repro.net.prefix import Prefix
from repro.perf import effective_workers, map_shards, partition
from repro.tamp.animate import EdgeState, TampAnimation
from repro.tamp.graph import TampGraph
from repro.tamp.layout import layout_graph
from repro.tamp.render import STATE_COLORS, node_label

_STATE_COLOR = {
    EdgeState.STABLE: STATE_COLORS["stable"],
    EdgeState.GAINING: STATE_COLORS["gaining"],
    EdgeState.LOSING: STATE_COLORS["losing"],
    EdgeState.FLAPPING: STATE_COLORS["flapping"],
}

#: Placeholder prefix used to materialize display-only edges.
_DISPLAY_PREFIX = Prefix(0, 0)


def render_svg_animation(
    animation: TampAnimation,
    title: str = "",
    max_thickness: float = 12.0,
    workers: Optional[int] = None,
) -> str:
    """Render *animation* as one SMIL-animated SVG document string.

    *workers* parallelizes the per-edge keyframe rendering across a
    :mod:`repro.perf` pool (None = the ``REPRO_WORKERS`` environment
    variable); small graphs render serially either way.
    """
    display, seen_edges = _display_graph(animation)
    layout = layout_graph(display)
    margin = 120.0
    width = layout.width + 2 * margin
    height = layout.height + 2 * margin + 40
    duration = animation.play_duration
    frame_count = max(1, animation.frame_count)
    total = max(1, _max_count(animation))
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width:.0f}"'
        f' height="{height:.0f}" viewBox="0 0 {width:.0f} {height:.0f}">',
        '<rect width="100%" height="100%" fill="white"/>',
    ]
    if title:
        parts.append(
            f'<text x="{width / 2:.0f}" y="24" text-anchor="middle"'
            f' font-size="16" font-family="sans-serif">{escape(title)}</text>'
        )

    def position(node):
        x, y = layout.positions[node]
        return x + margin, y + margin

    # One pass over the frames collects every edge's change track,
    # keyed by packed edge id; the per-edge work below then touches
    # only that edge's own changes instead of re-walking all 750 frames
    # per edge. This loop is the decode boundary: each edge id decodes
    # exactly once, into its layout-position job.
    state_tracks, count_tracks = _edge_tracks(animation)
    weight_id = animation.tamp.graph.weight_id
    edge_jobs = []
    for eid, edge in sorted(seen_edges.items(), key=lambda item: str(item[1])):
        parent, child = edge
        if parent not in layout.positions or child not in layout.positions:
            continue
        count_track = count_tracks.get(eid, ())
        initial = count_track[0][1] if count_track else weight_id(eid)
        edge_jobs.append(
            (
                position(parent),
                position(child),
                state_tracks.get(eid, ()),
                count_track,
                initial,
            )
        )
    workers = effective_workers(workers, units=len(edge_jobs))
    if workers <= 1:
        parts.extend(
            _render_edge_shard(
                edge_jobs, frame_count, total, max_thickness, duration
            )
        )
    else:
        shard_render = partial(
            _render_edge_shard,
            frame_count=frame_count,
            total=total,
            max_thickness=max_thickness,
            duration=duration,
        )
        for rendered in map_shards(
            shard_render, partition(edge_jobs, workers), workers
        ):
            parts.extend(rendered)
    for node in layout.positions:
        x, y = position(node)
        label = escape(node_label(node))
        half = max(30, 4 * len(label))
        parts.append(
            f'<rect x="{x - half:.1f}" y="{y - 11:.1f}" width="{2 * half:.1f}"'
            f' height="22" fill="#f4f4f4" stroke="#333" rx="3"/>'
        )
        parts.append(
            f'<text x="{x:.1f}" y="{y + 4:.1f}" text-anchor="middle"'
            f' font-size="11" font-family="sans-serif">{label}</text>'
        )
    parts.append(_clock(animation, margin, height, duration))
    parts.append("</svg>")
    return "\n".join(parts)


def _display_graph(animation: TampAnimation) -> tuple[TampGraph, dict]:
    """The union of edges alive at the end or touched during play.

    Collected as packed edge ids (live graph edges plus every frame's
    id-keyed count store), decoded once into the edge-id → token-pair
    map the job builder consumes.
    """
    graph = animation.tamp.graph
    display = TampGraph()
    display.site_root = graph.site_root
    seen_ids = {eid for eid, _ in graph.raw_id_edges()}
    for frame in animation.frames:
        seen_ids.update(frame.edge_counts.ids)
    decode = graph.decode_pair
    seen = {eid: decode(eid) for eid in seen_ids}
    for parent, child in seen.values():
        display.add_prefix(parent, child, _DISPLAY_PREFIX)
    return display, seen


def _max_count(animation: TampAnimation) -> int:
    best = 0
    for _, store in animation.tamp.graph.raw_id_edges():
        best = max(best, len(store))
    for frame in animation.frames:
        counts = frame.edge_counts.ids.values()
        if counts:
            best = max(best, max(counts))
        peaks = frame.shadows.ids.values()
        if peaks:
            best = max(best, max(peaks))
    return best


def _edge_tracks(animation: TampAnimation):
    """Per-edge-id (frame index, state) and (frame index, count) tracks.

    Built in a single pass over the frames' id-keyed stores so the
    renderer's per-edge keyframe construction is proportional to each
    edge's own changes, not to edges × frames — and decodes nothing.
    """
    state_tracks: dict[int, list] = {}
    count_tracks: dict[int, list] = {}
    for frame in animation.frames:
        index = frame.index
        for eid, state in frame.edge_states.ids.items():
            track = state_tracks.get(eid)
            if track is None:
                track = state_tracks[eid] = []
            track.append((index, state))
        for eid, count in frame.edge_counts.ids.items():
            track = count_tracks.get(eid)
            if track is None:
                track = count_tracks[eid] = []
            track.append((index, count))
    return state_tracks, count_tracks


def _render_edge_shard(shard, frame_count, total, max_thickness, duration):
    """Render a shard of edge jobs to SVG fragments.

    Module-level with plain-tuple jobs so shards can cross the
    repro.perf worker-pool boundary.
    """
    parts: list[str] = []
    for (x1, y1), (x2, y2), state_track, count_track, initial in shard:
        color_keys, width_keys = _keyframes(
            state_track, count_track, initial, frame_count, total,
            max_thickness,
        )
        initial_width = width_keys[0][1] if width_keys else 0.6
        parts.append(
            f'<line x1="{x1:.1f}" y1="{y1:.1f}" x2="{x2:.1f}" y2="{y2:.1f}"'
            f' stroke="#000000" stroke-width="{initial_width:.2f}">'
        )
        if len(color_keys) > 1:
            parts.append(_animate("stroke", color_keys, duration))
        if len(width_keys) > 1:
            parts.append(
                _animate(
                    "stroke-width",
                    [(t, f"{v:.2f}") for t, v in width_keys],
                    duration,
                )
            )
        parts.append("</line>")
    return parts


def _keyframes(
    state_track, count_track, initial, frame_count, total, max_thickness
):
    """(time-fraction, value) lists for stroke color and width.

    The initial width comes from the edge's first recorded count — the
    pre-animation value is not observable from the frames — or from the
    final graph when the edge never changes (*initial*, resolved by the
    caller).
    """
    color_keys: list[tuple[float, str]] = [(0.0, _STATE_COLOR[EdgeState.STABLE])]
    width_keys: list[tuple[float, float]] = []
    width_keys.append((0.0, _width(initial or 0, total, max_thickness)))
    for index, state in state_track:
        t = (index + 1) / frame_count
        color_keys.append((t, _STATE_COLOR[state]))
        # Revert to stable on the following frame unless it changes
        # again (a same-time change key loses to the revert in _dedupe,
        # matching the historical frame-walk renderer).
        revert = min(1.0, t + 1.0 / frame_count)
        color_keys.append((revert, _STATE_COLOR[EdgeState.STABLE]))
    for index, count in count_track:
        t = (index + 1) / frame_count
        width_keys.append((t, _width(count, total, max_thickness)))
    color_keys = _dedupe(color_keys)
    width_keys = _dedupe(width_keys)
    return color_keys, width_keys


def _width(count: int, total: int, max_thickness: float) -> float:
    return max(0.6, max_thickness * count / total)


def _dedupe(keys):
    """Drop out-of-order / duplicate key times (SMIL requires monotone)."""
    out = []
    last_time = -1.0
    for t, value in keys:
        if t <= last_time:
            continue
        out.append((t, value))
        last_time = t
    return out


def _animate(attribute: str, keys, duration: float) -> str:
    key_times = ";".join(f"{t:.4f}" for t, _ in keys)
    values = ";".join(str(v) for _, v in keys)
    return (
        f'<animate attributeName="{attribute}" dur="{duration:.1f}s"'
        f' repeatCount="indefinite" calcMode="discrete"'
        f' keyTimes="{key_times}" values="{values}"/>'
    )


def _clock(animation: TampAnimation, margin, height, duration) -> str:
    """The Figure 3 animation clock, ticking via SMIL."""
    if not animation.frames:
        return ""
    # A text element per ~second of play, toggled visible in sequence.
    steps = min(30, len(animation.frames))
    stride = max(1, len(animation.frames) // steps)
    parts = []
    for i in range(0, len(animation.frames), stride):
        frame = animation.frames[i]
        begin = (frame.index / max(1, animation.frame_count)) * duration
        parts.append(
            f'<text x="{margin:.0f}" y="{height - 16:.0f}" font-size="13"'
            f' font-family="monospace" opacity="0">'
            f"{escape(frame.clock_text())}"
            f'<animate attributeName="opacity" begin="{begin:.2f}s"'
            f' dur="{duration / steps:.2f}s" values="1;1" fill="remove"'
            f' repeatCount="1"/></text>'
        )
    return "\n".join(parts)
