"""Self-contained animated SVG export.

The paper shipped TAMP animations as a custom player; the portable
equivalent today is an SVG with SMIL timing — one file, plays in any
browser, no JavaScript. Edges animate stroke color through the paper's
state palette (black/green/blue/yellow) and stroke width through their
prefix counts; the animation clock ticks along the bottom.

Only edges that actually change get ``<animate>`` elements (a 750-frame
animation of a quiet graph stays small); static structure is drawn once.
"""

from __future__ import annotations

from xml.sax.saxutils import escape

from repro.net.prefix import Prefix
from repro.tamp.animate import EdgeState, TampAnimation
from repro.tamp.graph import TampGraph
from repro.tamp.layout import layout_graph
from repro.tamp.render import STATE_COLORS, node_label

_STATE_COLOR = {
    EdgeState.STABLE: STATE_COLORS["stable"],
    EdgeState.GAINING: STATE_COLORS["gaining"],
    EdgeState.LOSING: STATE_COLORS["losing"],
    EdgeState.FLAPPING: STATE_COLORS["flapping"],
}

#: Placeholder prefix used to materialize display-only edges.
_DISPLAY_PREFIX = Prefix(0, 0)


def render_svg_animation(
    animation: TampAnimation,
    title: str = "",
    max_thickness: float = 12.0,
) -> str:
    """Render *animation* as one SMIL-animated SVG document string."""
    display, seen_edges = _display_graph(animation)
    layout = layout_graph(display)
    margin = 120.0
    width = layout.width + 2 * margin
    height = layout.height + 2 * margin + 40
    duration = animation.play_duration
    frame_count = max(1, animation.frame_count)
    total = max(1, _max_count(animation))
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width:.0f}"'
        f' height="{height:.0f}" viewBox="0 0 {width:.0f} {height:.0f}">',
        '<rect width="100%" height="100%" fill="white"/>',
    ]
    if title:
        parts.append(
            f'<text x="{width / 2:.0f}" y="24" text-anchor="middle"'
            f' font-size="16" font-family="sans-serif">{escape(title)}</text>'
        )

    def position(node):
        x, y = layout.positions[node]
        return x + margin, y + margin

    for edge in sorted(seen_edges, key=str):
        parent, child = edge
        if parent not in layout.positions or child not in layout.positions:
            continue
        (x1, y1), (x2, y2) = position(parent), position(child)
        color_keys, width_keys = _keyframes(animation, edge, frame_count, total,
                                            max_thickness)
        initial_width = width_keys[0][1] if width_keys else 0.6
        parts.append(
            f'<line x1="{x1:.1f}" y1="{y1:.1f}" x2="{x2:.1f}" y2="{y2:.1f}"'
            f' stroke="#000000" stroke-width="{initial_width:.2f}">'
        )
        if len(color_keys) > 1:
            parts.append(_animate("stroke", color_keys, duration))
        if len(width_keys) > 1:
            parts.append(
                _animate(
                    "stroke-width",
                    [(t, f"{v:.2f}") for t, v in width_keys],
                    duration,
                )
            )
        parts.append("</line>")
    for node in layout.positions:
        x, y = position(node)
        label = escape(node_label(node))
        half = max(30, 4 * len(label))
        parts.append(
            f'<rect x="{x - half:.1f}" y="{y - 11:.1f}" width="{2 * half:.1f}"'
            f' height="22" fill="#f4f4f4" stroke="#333" rx="3"/>'
        )
        parts.append(
            f'<text x="{x:.1f}" y="{y + 4:.1f}" text-anchor="middle"'
            f' font-size="11" font-family="sans-serif">{label}</text>'
        )
    parts.append(_clock(animation, margin, height, duration))
    parts.append("</svg>")
    return "\n".join(parts)


def _display_graph(animation: TampAnimation) -> tuple[TampGraph, set]:
    """The union of edges alive at the end or touched during play."""
    display = TampGraph()
    display.site_root = animation.tamp.graph.site_root
    seen = set(animation.tamp.graph.edge_list())
    for frame in animation.frames:
        seen.update(frame.edge_counts)
    for parent, child in seen:
        display.add_prefix(parent, child, _DISPLAY_PREFIX)
    return display, seen


def _max_count(animation: TampAnimation) -> int:
    best = 0
    for (parent, child), prefixes in animation.tamp.graph.edges():
        best = max(best, len(prefixes))
    for frame in animation.frames:
        for count in frame.edge_counts.values():
            best = max(best, count)
        for peak in frame.shadows.values():
            best = max(best, peak)
    return best


def _keyframes(animation, edge, frame_count, total, max_thickness):
    """(time-fraction, value) lists for stroke color and width."""
    color_keys: list[tuple[float, str]] = [(0.0, _STATE_COLOR[EdgeState.STABLE])]
    width_keys: list[tuple[float, float]] = []
    # Initial width: reconstruct from the first frame's view or the final
    # graph when the edge never changes.
    current = None
    for frame in animation.frames:
        if edge in frame.edge_counts:
            break
    else:
        current = animation.tamp.graph.weight(*edge)
    if current is None:
        # Walk backwards from the first change: the edge's pre-animation
        # count equals its first recorded count minus nothing we can see,
        # so start from the first recorded value for display purposes.
        for frame in animation.frames:
            if edge in frame.edge_counts:
                current = frame.edge_counts[edge]
                break
        current = current or 0
    width_keys.append((0.0, _width(current, total, max_thickness)))
    for frame in animation.frames:
        t = (frame.index + 1) / frame_count
        if edge in frame.edge_states:
            color_keys.append((t, _STATE_COLOR[frame.edge_states[edge]]))
            # Revert to stable on the following frame unless it changes
            # again (handled by the next iteration overriding).
            revert = min(1.0, t + 1.0 / frame_count)
            color_keys.append((revert, _STATE_COLOR[EdgeState.STABLE]))
        if edge in frame.edge_counts:
            width_keys.append(
                (t, _width(frame.edge_counts[edge], total, max_thickness))
            )
    color_keys = _dedupe(color_keys)
    width_keys = _dedupe(width_keys)
    return color_keys, width_keys


def _width(count: int, total: int, max_thickness: float) -> float:
    return max(0.6, max_thickness * count / total)


def _dedupe(keys):
    """Drop out-of-order / duplicate key times (SMIL requires monotone)."""
    out = []
    last_time = -1.0
    for t, value in keys:
        if t <= last_time:
            continue
        out.append((t, value))
        last_time = t
    return out


def _animate(attribute: str, keys, duration: float) -> str:
    key_times = ";".join(f"{t:.4f}" for t, _ in keys)
    values = ";".join(str(v) for _, v in keys)
    return (
        f'<animate attributeName="{attribute}" dur="{duration:.1f}s"'
        f' repeatCount="indefinite" calcMode="discrete"'
        f' keyTimes="{key_times}" values="{values}"/>'
    )


def _clock(animation: TampAnimation, margin, height, duration) -> str:
    """The Figure 3 animation clock, ticking via SMIL."""
    if not animation.frames:
        return ""
    # A text element per ~second of play, toggled visible in sequence.
    steps = min(30, len(animation.frames))
    stride = max(1, len(animation.frames) // steps)
    parts = []
    for i in range(0, len(animation.frames), stride):
        frame = animation.frames[i]
        begin = (frame.index / max(1, animation.frame_count)) * duration
        parts.append(
            f'<text x="{margin:.0f}" y="{height - 16:.0f}" font-size="13"'
            f' font-family="monospace" opacity="0">'
            f"{escape(frame.clock_text())}"
            f'<animate attributeName="opacity" begin="{begin:.2f}s"'
            f' dur="{duration / steps:.2f}s" values="1;1" fill="remove"'
            f' repeatCount="1"/></text>'
        )
    return "\n".join(parts)
