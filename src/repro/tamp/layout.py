"""Layered left-to-right graph layout.

The paper used graphviz; we implement the relevant core ourselves: a
Sugiyama-style layered layout. Nodes are ranked by BFS depth from the
root (data flows left-to-right, matching the paper's orientation where
BGP information flows right-to-left), then ordered within each layer by
a few barycenter passes to reduce edge crossings, then assigned
coordinates. The result is plain data that the SVG and ASCII renderers
consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

from repro.collector.events import Token
from repro.tamp.graph import TampGraph

#: Canvas spacing, in abstract units (the SVG renderer scales them).
LAYER_SPACING = 220.0
NODE_SPACING = 46.0


@dataclass(frozen=True)
class LayoutResult:
    """Node coordinates plus the layer structure that produced them."""

    positions: Mapping[Token, tuple[float, float]]
    layers: tuple[tuple[Token, ...], ...]
    width: float
    height: float

    def position(self, node: Token) -> tuple[float, float]:
        return self.positions[node]


def layout_graph(
    graph: TampGraph,
    barycenter_passes: int = 4,
) -> LayoutResult:
    """Compute a layered layout of *graph*."""
    depths = graph.depths()
    if not depths:
        return LayoutResult({}, (), 0.0, 0.0)
    max_depth = max(depths.values())
    layers: list[list[Token]] = [[] for _ in range(max_depth + 1)]
    for node, depth in depths.items():
        layers[depth].append(node)
    for layer in layers:
        layer.sort(key=str)  # deterministic seed order
    _reduce_crossings(graph, layers, barycenter_passes)
    positions: dict[Token, tuple[float, float]] = {}
    tallest = max(len(layer) for layer in layers)
    height = max(1, tallest - 1) * NODE_SPACING
    for depth, layer in enumerate(layers):
        x = depth * LAYER_SPACING
        if len(layer) == 1:
            positions[layer[0]] = (x, height / 2)
            continue
        step = height / (len(layer) - 1)
        for slot, node in enumerate(layer):
            positions[node] = (x, slot * step)
    return LayoutResult(
        positions=positions,
        layers=tuple(tuple(layer) for layer in layers),
        width=max_depth * LAYER_SPACING,
        height=height,
    )


def _reduce_crossings(
    graph: TampGraph, layers: list[list[Token]], passes: int
) -> None:
    """Median/barycenter ordering sweeps, alternating direction."""
    for sweep in range(passes):
        forward = sweep % 2 == 0
        indices = range(1, len(layers)) if forward else range(len(layers) - 2, -1, -1)
        for i in indices:
            reference = layers[i - 1] if forward else layers[i + 1]
            slots = {node: slot for slot, node in enumerate(reference)}
            current = {node: slot for slot, node in enumerate(layers[i])}
            neighbors = graph.parents if forward else graph.children

            def barycenter(node: Token) -> float:
                linked = [slots[n] for n in neighbors(node) if n in slots]
                if not linked:
                    # Keep unlinked nodes near their current slot.
                    return float(current[node])
                return sum(linked) / len(linked)

            layers[i].sort(key=lambda node: (barycenter(node), str(node)))


@dataclass(frozen=True)
class EdgeGeometry:
    """Where to draw one edge, with its visual weight."""

    start: tuple[float, float]
    end: tuple[float, float]
    thickness: float
    fraction: float = field(default=0.0)


def edge_geometry(
    graph: TampGraph,
    layout: LayoutResult,
    max_thickness: float = 14.0,
    min_thickness: float = 0.6,
    weights: Optional[Mapping[tuple[Token, Token], float]] = None,
) -> dict[tuple[Token, Token], EdgeGeometry]:
    """Per-edge drawing data: endpoints and fraction-scaled thickness.

    By default the fraction is the edge's share of unique prefixes (the
    paper's weighting). Passing *weights* — e.g. traffic volumes from
    :func:`repro.traffic.volume.edge_volumes` — draws the Section
    III-D.2 variant where thickness shows where the *bytes* go.
    """
    geometry: dict[tuple[Token, Token], EdgeGeometry] = {}
    if weights is not None:
        total_weight = max(weights.values(), default=0.0)
    else:
        total_weight = float(graph.total_prefixes())
    for (parent, child), prefixes in graph.edges():
        if parent not in layout.positions or child not in layout.positions:
            continue
        if weights is not None:
            value = weights.get((parent, child), 0.0)
        else:
            value = float(len(prefixes))
        fraction = value / total_weight if total_weight else 0.0
        thickness = max(min_thickness, fraction * max_thickness)
        geometry[(parent, child)] = EdgeGeometry(
            start=layout.positions[parent],
            end=layout.positions[child],
            thickness=thickness,
            fraction=fraction,
        )
    return geometry
