"""Graph pruning: the T in TAMP.

A raw TAMP graph of any realistic network is an ink blob — the Internet's
core is well connected with enormous fan-out at the edges. Pruning keeps
only the heavily used structure:

* :func:`prune_flat` drops every edge carrying less than a fixed fraction
  (default 5%) of the graph's total prefixes, then sweeps unreachable
  nodes. This is the paper's default, good from universities to Tier-1s.
* :func:`prune_hierarchical` applies *increasing* thresholds with
  distance from the root. Operators asked for this: everything inside
  their own domain (their routers, nexthops, immediate neighbor ASes)
  stays visible no matter how few prefixes it carries — a router
  announcing just two prefixes can be the story, as in the Figure 5
  backdoor — while the far-away Internet is pruned aggressively.
"""

from __future__ import annotations

from repro.tamp.graph import TampGraph

DEFAULT_THRESHOLD = 0.05


def prune_flat(
    graph: TampGraph, threshold: float = DEFAULT_THRESHOLD
) -> TampGraph:
    """A copy of *graph* keeping only edges with fraction ≥ *threshold*.

    Built survivor-first: on realistic graphs pruning removes the vast
    majority of edges (every prefix leaf, most of the fan-out), so
    copying everything and deleting would do millions of times the work
    of collecting the few heavy edges.
    """
    if not 0.0 <= threshold <= 1.0:
        raise ValueError(f"threshold {threshold} outside [0, 1]")
    total = graph.total_prefixes()
    if total == 0:
        return graph.copy()
    pruned = _survivors(
        graph, lambda parent, depth, weight: weight / total >= threshold
    )
    _sweep_unreachable(pruned, graph.roots())
    return pruned


def _survivors(graph: TampGraph, keep) -> TampGraph:
    """A new graph with the edges *keep*(parent, parent depth, weight)
    accepts."""
    depths = graph.depths()
    pruned = TampGraph()
    pruned.site_root = graph.site_root
    for (parent, child), prefixes in graph.raw_edges():
        if keep(parent, depths.get(parent), len(prefixes)):
            pruned.adopt_edge(parent, child, prefixes)
    return pruned


def prune_hierarchical(
    graph: TampGraph,
    threshold: float = DEFAULT_THRESHOLD,
    keep_depth: int = 3,
    growth: float = 1.0,
) -> TampGraph:
    """Depth-aware pruning.

    Edges whose *parent* lies at depth < *keep_depth* are always kept
    (depth 0 = the site root; with the default 3, routers, nexthops and
    the immediate neighbor ASes all survive — the Figure 5 setting).
    Deeper edges face ``threshold × growth^(depth - keep_depth)``, so a
    growth factor above 1 prunes ever harder toward the Internet's edge.
    """
    if not 0.0 <= threshold <= 1.0:
        raise ValueError(f"threshold {threshold} outside [0, 1]")
    if keep_depth < 0:
        raise ValueError(f"keep_depth {keep_depth} must be non-negative")
    if growth <= 0:
        raise ValueError(f"growth {growth} must be positive")
    total = graph.total_prefixes()
    if total == 0:
        return graph.copy()

    def keep(parent, depth, weight) -> bool:
        if depth is None or depth < keep_depth:
            return True
        effective = min(1.0, threshold * growth ** (depth - keep_depth))
        return weight / total >= effective

    pruned = _survivors(graph, keep)
    _sweep_unreachable(pruned, graph.roots())
    return pruned


def _sweep_unreachable(graph: TampGraph, roots) -> None:
    """Remove edges no longer reachable from the original *roots*.

    Pruning an interior edge can orphan a whole subtree; the orphan must
    not linger as a floating island in the picture. Reachability is
    computed from the pre-prune roots, so an orphaned subtree head does
    not masquerade as a new root.
    """
    from collections import deque

    reachable: set = set()
    queue = deque(roots)
    reachable.update(roots)
    while queue:
        node = queue.popleft()
        # Sorted so the BFS visit order (not just the reachable set) is
        # stable under hash randomization.
        for child in sorted(graph.children(node), key=str):
            if child not in reachable:
                reachable.add(child)
                queue.append(child)
    for parent, child in graph.edge_list():
        if parent not in reachable:
            graph.remove_edge(parent, child)
