"""Graph pruning: the T in TAMP.

A raw TAMP graph of any realistic network is an ink blob — the Internet's
core is well connected with enormous fan-out at the edges. Pruning keeps
only the heavily used structure:

* :func:`prune_flat` drops every edge carrying less than a fixed fraction
  (default 5%) of the graph's total prefixes, then sweeps unreachable
  nodes. This is the paper's default, good from universities to Tier-1s.
* :func:`prune_hierarchical` applies *increasing* thresholds with
  distance from the root. Operators asked for this: everything inside
  their own domain (their routers, nexthops, immediate neighbor ASes)
  stays visible no matter how few prefixes it carries — a router
  announcing just two prefixes can be the story, as in the Figure 5
  backdoor — while the far-away Internet is pruned aggressively.

The keep/drop scan runs at id level over the interior stores plus the
leaf fringe (:meth:`TampGraph.fringe_stores`): on a 1.5M-route graph
well over 99% of edges are dropped, so the scan never decodes a token —
only the survivors, adopted into the pruned graph via the shared symbol
table, ever reach the decode boundary. The fringe carries the leaf
invariant (every leaf edge weighs exactly 1), so the millions of prefix
leaves face one keep/drop decision per tail instead of one per edge;
their ``("pfx", p)`` tokens are only interned when they survive, which
at realistic thresholds is never. The flat prune skips the depth BFS
entirely (its predicate ignores depth).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.interning import EDGE_SHIFT
from repro.tamp.graph import TampGraph

DEFAULT_THRESHOLD = 0.05

#: keep(parent_id, parent_depth, weight) -> survive?
_Keep = Callable[[int, Optional[int], int], bool]


def prune_flat(
    graph: TampGraph, threshold: float = DEFAULT_THRESHOLD
) -> TampGraph:
    """A copy of *graph* keeping only edges with fraction ≥ *threshold*.

    Built survivor-first: on realistic graphs pruning removes the vast
    majority of edges (every prefix leaf, most of the fan-out), so
    copying everything and deleting would do millions of times the work
    of collecting the few heavy edges.
    """
    if not 0.0 <= threshold <= 1.0:
        raise ValueError(f"threshold {threshold} outside [0, 1]")
    total = graph.total_prefixes()
    if total == 0:
        return graph.copy()
    # The flat predicate ignores depth and divides by one constant, so
    # the whole keep/drop question collapses to an integer weight
    # cutoff — the survivor scan is then a bare len() comparison per
    # store, no per-edge lambda call, no float division.
    cutoff = _weight_cutoff(threshold, total)
    pruned = TampGraph(symbols=graph.symbols)
    pruned.site_root = graph.site_root
    adopt = pruned.adopt_edge_ids
    for eid, store in graph._edges.items():
        if len(store) >= cutoff:
            adopt(eid, store)
    if cutoff <= 1:  # fringe edges all weigh exactly 1
        symbols = graph.symbols
        pfx_token_id = symbols.pfx_token_id
        for tail, fstore in graph.fringe_stores():
            base = tail << EDGE_SHIFT
            for pid, count in fstore.items():
                adopt(base | pfx_token_id(pid), {pid: count})
    _sweep_unreachable(pruned, graph.roots())
    return pruned


def _weight_cutoff(threshold: float, total: int) -> int:
    """The least integer weight passing ``weight / total >= threshold``.

    Computed so the integer comparison is *exactly* equivalent to the
    float test for every possible weight — the rounding of the float
    division decides the boundary, not the rounding of
    ``threshold * total``.
    """
    cutoff = round(threshold * total)
    while cutoff > 0 and (cutoff - 1) / total >= threshold:
        cutoff -= 1
    while cutoff <= total and cutoff / total < threshold:
        cutoff += 1
    return cutoff


def _survivors(
    graph: TampGraph, keep: _Keep, use_depths: bool = True
) -> TampGraph:
    """A new graph with the edges *keep*(parent, parent depth, weight)
    accepts."""
    depth_of = graph._id_depths().get if use_depths else None
    pruned = TampGraph(symbols=graph.symbols)
    pruned.site_root = graph.site_root
    for eid, store in graph._edges.items():
        parent = eid >> EDGE_SHIFT
        depth = depth_of(parent) if depth_of is not None else None
        if keep(parent, depth, len(store)):
            pruned.adopt_edge_ids(eid, store)
    # The leaf fringe: every leaf edge weighs exactly 1, so one
    # keep(tail, depth, 1) call decides a tail's whole fringe. Survivors
    # (tiny graphs / permissive thresholds only) materialize as real
    # edges — pruned graphs never carry a fringe, so the reachability
    # sweep's token-level edge removal works uniformly on them.
    symbols = graph.symbols
    for tail, fstore in graph.fringe_stores():
        depth = depth_of(tail) if depth_of is not None else None
        if not keep(tail, depth, 1):
            continue
        base = tail << EDGE_SHIFT
        pfx_token_id = symbols.pfx_token_id
        for pid, count in fstore.items():
            pruned.adopt_edge_ids(base | pfx_token_id(pid), {pid: count})
    return pruned


def prune_hierarchical(
    graph: TampGraph,
    threshold: float = DEFAULT_THRESHOLD,
    keep_depth: int = 3,
    growth: float = 1.0,
) -> TampGraph:
    """Depth-aware pruning.

    Edges whose *parent* lies at depth < *keep_depth* are always kept
    (depth 0 = the site root; with the default 3, routers, nexthops and
    the immediate neighbor ASes all survive — the Figure 5 setting).
    Deeper edges face ``threshold × growth^(depth - keep_depth)``, so a
    growth factor above 1 prunes ever harder toward the Internet's edge.
    """
    if not 0.0 <= threshold <= 1.0:
        raise ValueError(f"threshold {threshold} outside [0, 1]")
    if keep_depth < 0:
        raise ValueError(f"keep_depth {keep_depth} must be non-negative")
    if growth <= 0:
        raise ValueError(f"growth {growth} must be positive")
    total = graph.total_prefixes()
    if total == 0:
        return graph.copy()

    def keep(parent: int, depth: Optional[int], weight: int) -> bool:
        if depth is None or depth < keep_depth:
            return True
        effective = min(1.0, threshold * growth ** (depth - keep_depth))
        return weight / total >= effective

    pruned = _survivors(graph, keep)
    _sweep_unreachable(pruned, graph.roots())
    return pruned


def _sweep_unreachable(graph: TampGraph, roots) -> None:
    """Remove edges no longer reachable from the original *roots*.

    Pruning an interior edge can orphan a whole subtree; the orphan must
    not linger as a floating island in the picture. Reachability is
    computed from the pre-prune roots, so an orphaned subtree head does
    not masquerade as a new root. Runs at token level: the survivor
    graph is already small, and the str-sorted BFS keeps the visit
    order stable under hash randomization.
    """
    from collections import deque

    reachable: set = set()
    queue = deque(roots)
    reachable.update(roots)
    while queue:
        node = queue.popleft()
        # Sorted so the BFS visit order (not just the reachable set) is
        # stable under hash randomization.
        for child in sorted(graph.children(node), key=str):
            if child not in reachable:
                reachable.add(child)
                queue.append(child)
    for parent, child in graph.edge_list():
        if parent not in reachable:
            graph.remove_edge(parent, child)
