"""Per-router TAMP trees.

A router's TAMP tree represents the BGP routes it knows at one moment:
the root is the router, linked to each BGP nexthop of its routes; each
nexthop links to the AS it services; ASes link downstream along the AS
path; leaf ASes link to the prefixes they advertise (Figure 1). Every
edge remembers the *set* of prefixes carried, so the merge step can take
unions instead of mis-adding counts.

Nodes are the same (namespace, value) tokens Stemming uses — ``("router",
name)``, ``("nh", address)``, ``("as", asn)``, ``("pfx", prefix)`` — which
lets a Stemming stem be highlighted directly on a TAMP picture.

Internally the tree is columnar and interned (DESIGN.md §10): tokens and
prefixes are encoded through a per-build :class:`SymbolTable`, edges are
packed int keys mapping to :class:`IdSet` columns of prefix ids, and the
prefix-leaf fringe — by far the widest part of a realistic tree — is a
single ``tail id → IdSet`` map instead of one edge entry per (tail,
prefix) pair, exploiting the leaf invariant that the edge into a
``("pfx", p)`` node carries exactly ``{p}``. Every public query decodes
back to real tokens/prefixes, so callers never see an id.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

from repro.bgp.rib import Route
from repro.collector.events import Token
from repro.interning import EDGE_MASK, EDGE_SHIFT, IdSet, SymbolTable
from repro.net.attributes import PathAttributes
from repro.net.prefix import Prefix

Edge = tuple[Token, Token]

#: Shared memo of interned route chains: attrs bundle -> (id of the
#: first post-root node, packed interior edge ids, id of the tail node).
ChainCache = dict[PathAttributes, tuple[int, tuple[int, ...], int]]


def route_path_tokens(
    router: Token,
    prefix: Prefix,
    attributes: PathAttributes,
    include_prefix_leaf: bool = True,
) -> list[Token]:
    """The node chain a route contributes: router, nexthop, ASes[, prefix].

    Duplicate consecutive ASes (prepending) collapse to one node — a
    prepended path traverses the same AS once. The collapsed AS tokens
    are cached on the path instance (see ``ASPath.collapsed_tokens``).
    """
    chain: list[Token] = [router, ("nh", attributes.nexthop)]
    chain.extend(attributes.as_path.collapsed_tokens())
    if include_prefix_leaf:
        chain.append(("pfx", prefix))
    return chain


def chain_ids(
    symbols: SymbolTable,
    cache: ChainCache,
    root: Token,
    prefix: Optional[Prefix],
    attributes: PathAttributes,
) -> tuple[int, tuple[int, ...], int]:
    """The interned post-root chain for a route, memoized in *cache*.

    Returns (id of the first node after the root, the packed edge ids
    linking the chain after that node, id of the tail node). The root
    itself is excluded — the cache entry depends only on the attribute
    bundle, so trees with different roots can share one cache (the root
    edge packs the caller's root id against the returned head id).
    *prefix* is never part of the chain (the leaf fringe is stored
    separately), so group-level callers may pass None.
    """
    cached = cache.get(attributes)
    if cached is None:
        chain = route_path_tokens(
            root, prefix, attributes, include_prefix_leaf=False
        )
        ids = list(map(symbols.intern_token, chain[1:]))
        cached = cache[attributes] = (
            ids[0],
            tuple(
                (parent << EDGE_SHIFT) | child
                for parent, child in zip(ids, ids[1:])
            ),
            ids[-1],
        )
    return cached


class TampTree:
    """The virtual tree of one router's routes.

    Structurally this is a general graph container (two routes can share
    a tail), but built from a single router's routes it forms the paper's
    tree. It is also the building block :class:`repro.tamp.graph.TampGraph`
    merges.
    """

    __slots__ = (
        "root",
        "include_prefix_leaves",
        "_symbols",
        "_root_id",
        "_chain_cache",
        "_edges",
        "_children",
        "_leaves",
    )

    def __init__(
        self,
        router_name: str,
        include_prefix_leaves: bool = True,
        symbols: Optional[SymbolTable] = None,
        chain_cache: Optional[ChainCache] = None,
    ) -> None:
        self.root: Token = ("router", router_name)
        self.include_prefix_leaves = include_prefix_leaves
        #: Per-build table; pass one in to share ids across the trees of
        #: a shard so the merge step skips the id remap.
        self._symbols = SymbolTable() if symbols is None else symbols
        self._root_id = self._symbols.intern_token(self.root)
        #: attrs bundle -> (head id, interior edge ids, tail id). Real
        #: views share bundles massively across routers (~7% distinct in
        #: the ISP-Anon profile), so a cache shared between the trees of
        #: a build skips the tokenize+intern+pack work for repeat
        #: bundles. Cached ids are only meaningful for the table that
        #: produced them: share a cache only between trees sharing a
        #: symbol table (as :mod:`repro.tamp.picture` does).
        self._chain_cache: ChainCache = (
            {} if chain_cache is None else chain_cache
        )
        #: Interior edges: packed (parent id, child id) -> prefix-id set.
        self._edges: dict[int, IdSet] = {}
        self._children: dict[int, set[int]] = {}
        #: The prefix-leaf fringe: tail token id -> ids of the prefixes
        #: hanging off it. Encodes the implicit edge (tail, ("pfx", p))
        #: with prefix set {p} for each member — the leaf invariant that
        #: lets a group's whole fringe land in one C-level set update.
        self._leaves: dict[int, IdSet] = {}

    @property
    def symbols(self) -> SymbolTable:
        """The tree's symbol table (shared with derived graphs)."""
        return self._symbols

    @classmethod
    def from_routes(
        cls,
        router_name: str,
        routes: Iterable[Route],
        include_prefix_leaves: bool = True,
        symbols: Optional[SymbolTable] = None,
        chain_cache: Optional[ChainCache] = None,
    ) -> "TampTree":
        """Build a tree from a route table.

        Routes are grouped by attribute bundle first: real RIBs share
        bundles massively (BGP's wire format is built around it), and
        all routes sharing a bundle thread the same node chain, so each
        edge takes one bulk set update instead of a per-route insert.
        """
        tree = cls(router_name, include_prefix_leaves, symbols, chain_cache)
        by_attrs: dict[PathAttributes, list[Prefix]] = {}
        for route in routes:
            by_attrs.setdefault(route.attributes, []).append(route.prefix)
        for attributes, prefixes in by_attrs.items():
            tree.add_route_group(prefixes, attributes)
        return tree

    def add_route_group(
        self, prefixes: Iterable[Prefix], attributes: PathAttributes
    ) -> None:
        """Thread many routes sharing one attribute bundle."""
        symbols = self._symbols
        # Value-derived packed ids (pack_prefix inlined): two attribute
        # loads and two shifts per prefix, no table probe through
        # Prefix.__hash__.
        pids = [
            (p.length << 32) | (p.network >> (32 - p.length))
            for p in prefixes
        ]
        head, interior, tail = chain_ids(
            symbols, self._chain_cache, self.root, None, attributes
        )
        edges = self._edges
        children = self._children
        eid = (self._root_id << EDGE_SHIFT) | head
        column = edges.get(eid)
        if column is None:
            edges[eid] = IdSet(pids)
            children.setdefault(self._root_id, set()).add(head)
        else:
            column.update(pids)
        for eid in interior:
            column = edges.get(eid)
            if column is None:
                edges[eid] = IdSet(pids)
                children.setdefault(eid >> EDGE_SHIFT, set()).add(
                    eid & EDGE_MASK
                )
            else:
                column.update(pids)
        if self.include_prefix_leaves:
            fringe = self._leaves.get(tail)
            if fringe is None:
                self._leaves[tail] = IdSet(pids)
            else:
                fringe.update(pids)

    def add_route(self, prefix: Prefix, attributes: PathAttributes) -> None:
        """Thread one route through the tree, weighting each edge."""
        self.add_route_group([prefix], attributes)

    def remove_route(self, prefix: Prefix, attributes: PathAttributes) -> None:
        """Remove one route's contribution (for incremental maintenance)."""
        symbols = self._symbols
        pid = symbols.prefix_id(prefix)
        chain = route_path_tokens(
            self.root, prefix, attributes, include_prefix_leaf=False
        )
        ids: list[Optional[int]] = [self._root_id]
        ids.extend(symbols.token_id(token) for token in chain[1:])
        edges = self._edges
        for parent, child in zip(ids, ids[1:]):
            if parent is None or child is None:
                continue
            eid = (parent << EDGE_SHIFT) | child
            column = edges.get(eid)
            if column is None:
                continue
            column.discard(pid)
            if not column:
                del edges[eid]
                children = self._children.get(parent)
                if children is not None:
                    children.discard(child)
                    if not children:
                        del self._children[parent]
        tail = ids[-1]
        if self.include_prefix_leaves and tail is not None:
            fringe = self._leaves.get(tail)
            if fringe is not None:
                fringe.discard(pid)
                if not fringe:
                    del self._leaves[tail]

    # ------------------------------------------------------------------
    # Queries (the decode boundary — ids never escape)
    # ------------------------------------------------------------------

    def edges(self) -> Iterator[tuple[Edge, set[Prefix]]]:
        symbols = self._symbols
        token = symbols.token
        prefix = symbols.prefix
        for eid, column in self._edges.items():
            yield (
                (token(eid >> EDGE_SHIFT), token(eid & EDGE_MASK)),
                set(map(prefix, column)),
            )
        for tail, fringe in self._leaves.items():
            tail_token = token(tail)
            for pid in fringe:
                leaf = prefix(pid)
                yield (tail_token, ("pfx", leaf)), {leaf}

    def edge_prefixes(self, parent: Token, child: Token) -> set[Prefix]:
        symbols = self._symbols
        parent_id = symbols.token_id(parent)
        if parent_id is None:
            return set()
        if child[0] == "pfx":
            fringe = self._leaves.get(parent_id)
            if fringe is not None:
                pid = symbols.prefix_id(child[1])  # type: ignore[arg-type]
                if pid in fringe:
                    return {child[1]}  # type: ignore[set-item]
        child_id = symbols.token_id(child)
        if child_id is None:
            return set()
        column = self._edges.get((parent_id << EDGE_SHIFT) | child_id)
        if column is None:
            return set()
        return set(map(symbols.prefix, column))

    def weight(self, parent: Token, child: Token) -> int:
        """Unique prefixes carried on the edge — the paper's edge weight."""
        return len(self.edge_prefixes(parent, child))

    def children(self, node: Token) -> set[Token]:
        symbols = self._symbols
        node_id = symbols.token_id(node)
        if node_id is None:
            return set()
        token = symbols.token
        found = {token(child) for child in self._children.get(node_id, ())}
        fringe = self._leaves.get(node_id)
        if fringe is not None:
            prefix = symbols.prefix
            found.update(("pfx", prefix(pid)) for pid in fringe)
        return found

    def nodes(self) -> set[Token]:
        symbols = self._symbols
        token = symbols.token
        ids: set[int] = {self._root_id}
        for eid in self._edges:
            ids.add(eid >> EDGE_SHIFT)
            ids.add(eid & EDGE_MASK)
        found = set(map(token, ids))
        prefix = symbols.prefix
        for fringe in self._leaves.values():
            found.update(("pfx", prefix(pid)) for pid in fringe)
        return found

    def total_prefixes(self) -> int:
        """Distinct prefixes represented anywhere in the tree."""
        seen: set[int] = set()
        for column in self._edges.values():
            seen |= column
        for fringe in self._leaves.values():
            seen |= fringe
        return len(seen)

    def edge_count(self) -> int:
        return len(self._edges) + sum(
            len(fringe) for fringe in self._leaves.values()
        )

    def __len__(self) -> int:
        return self.edge_count()
