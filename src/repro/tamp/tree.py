"""Per-router TAMP trees.

A router's TAMP tree represents the BGP routes it knows at one moment:
the root is the router, linked to each BGP nexthop of its routes; each
nexthop links to the AS it services; ASes link downstream along the AS
path; leaf ASes link to the prefixes they advertise (Figure 1). Every
edge remembers the *set* of prefixes carried, so the merge step can take
unions instead of mis-adding counts.

Nodes are the same (namespace, value) tokens Stemming uses — ``("router",
name)``, ``("nh", address)``, ``("as", asn)``, ``("pfx", prefix)`` — which
lets a Stemming stem be highlighted directly on a TAMP picture.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

from repro.bgp.rib import Route
from repro.collector.events import Token
from repro.net.attributes import PathAttributes
from repro.net.prefix import Prefix

Edge = tuple[Token, Token]


def route_path_tokens(
    router: Token,
    prefix: Prefix,
    attributes: PathAttributes,
    include_prefix_leaf: bool = True,
) -> list[Token]:
    """The node chain a route contributes: router, nexthop, ASes[, prefix].

    Duplicate consecutive ASes (prepending) collapse to one node — a
    prepended path traverses the same AS once. The collapsed AS tokens
    are cached on the path instance (see ``ASPath.collapsed_tokens``).
    """
    chain: list[Token] = [router, ("nh", attributes.nexthop)]
    chain.extend(attributes.as_path.collapsed_tokens())
    if include_prefix_leaf:
        chain.append(("pfx", prefix))
    return chain


class TampTree:
    """The virtual tree of one router's routes.

    Structurally this is a general graph container (two routes can share
    a tail), but built from a single router's routes it forms the paper's
    tree. It is also the building block :class:`repro.tamp.graph.TampGraph`
    merges.
    """

    __slots__ = ("root", "include_prefix_leaves", "_edges", "_children")

    def __init__(
        self,
        router_name: str,
        include_prefix_leaves: bool = True,
    ) -> None:
        self.root: Token = ("router", router_name)
        self.include_prefix_leaves = include_prefix_leaves
        self._edges: dict[Edge, set[Prefix]] = {}
        self._children: dict[Token, set[Token]] = {}

    @classmethod
    def from_routes(
        cls,
        router_name: str,
        routes: Iterable[Route],
        include_prefix_leaves: bool = True,
    ) -> "TampTree":
        """Build a tree from a route table.

        Routes are grouped by attribute bundle first: real RIBs share
        bundles massively (BGP's wire format is built around it), and
        all routes sharing a bundle thread the same node chain, so each
        edge takes one bulk set update instead of a per-route insert.
        """
        tree = cls(router_name, include_prefix_leaves)
        by_attrs: dict[PathAttributes, list[Prefix]] = {}
        for route in routes:
            by_attrs.setdefault(route.attributes, []).append(route.prefix)
        for attributes, prefixes in by_attrs.items():
            tree.add_route_group(prefixes, attributes)
        return tree

    def add_route_group(
        self, prefixes: list[Prefix], attributes: PathAttributes
    ) -> None:
        """Thread many routes sharing one attribute bundle."""
        chain = route_path_tokens(
            self.root, prefixes[0], attributes, include_prefix_leaf=False
        )
        for parent, child in zip(chain, chain[1:]):
            edge = (parent, child)
            existing = self._edges.get(edge)
            if existing is None:
                existing = set()
                self._edges[edge] = existing
                self._children.setdefault(parent, set()).add(child)
            existing.update(prefixes)
        if self.include_prefix_leaves:
            leaf_parent = chain[-1]
            children = self._children.setdefault(leaf_parent, set())
            for prefix in prefixes:
                edge = (leaf_parent, ("pfx", prefix))
                leaf_set = self._edges.get(edge)
                if leaf_set is None:
                    self._edges[edge] = {prefix}
                    children.add(("pfx", prefix))
                else:
                    leaf_set.add(prefix)

    def add_route(self, prefix: Prefix, attributes: PathAttributes) -> None:
        """Thread one route through the tree, weighting each edge."""
        chain = route_path_tokens(
            self.root, prefix, attributes, self.include_prefix_leaves
        )
        for parent, child in zip(chain, chain[1:]):
            edge = (parent, child)
            prefixes = self._edges.get(edge)
            if prefixes is None:
                prefixes = set()
                self._edges[edge] = prefixes
                self._children.setdefault(parent, set()).add(child)
            prefixes.add(prefix)

    def remove_route(self, prefix: Prefix, attributes: PathAttributes) -> None:
        """Remove one route's contribution (for incremental maintenance)."""
        chain = route_path_tokens(
            self.root, prefix, attributes, self.include_prefix_leaves
        )
        for parent, child in zip(chain, chain[1:]):
            edge = (parent, child)
            prefixes = self._edges.get(edge)
            if prefixes is None:
                continue
            prefixes.discard(prefix)
            if not prefixes:
                del self._edges[edge]
                children = self._children.get(parent)
                if children is not None:
                    children.discard(child)
                    if not children:
                        del self._children[parent]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def edges(self) -> Iterator[tuple[Edge, set[Prefix]]]:
        yield from self._edges.items()

    def edge_prefixes(self, parent: Token, child: Token) -> set[Prefix]:
        return self._edges.get((parent, child), set())

    def weight(self, parent: Token, child: Token) -> int:
        """Unique prefixes carried on the edge — the paper's edge weight."""
        return len(self._edges.get((parent, child), ()))

    def children(self, node: Token) -> set[Token]:
        return self._children.get(node, set())

    def nodes(self) -> set[Token]:
        found: set[Token] = {self.root}
        for parent, child in self._edges:
            found.add(parent)
            found.add(child)
        return found

    def total_prefixes(self) -> int:
        """Distinct prefixes represented anywhere in the tree."""
        prefixes: set[Prefix] = set()
        for edge_prefixes in self._edges.values():
            prefixes |= edge_prefixes
        return len(prefixes)

    def edge_count(self) -> int:
        return len(self._edges)

    def __len__(self) -> int:
        return len(self._edges)
