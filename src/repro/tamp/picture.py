"""Batch TAMP picture builds: routes → trees → merged graph, sharded.

This is the orchestration layer over the interned builder (DESIGN.md
§10): group routes per router, build each router's
:class:`~repro.tamp.tree.TampTree` as interned columns, and fold the
trees into one :class:`~repro.tamp.graph.TampGraph`.

Serially, every tree is built against the *graph's* symbol table, so
merging is pure id-level counting with no translation. With workers,
router groups shard across the :mod:`repro.perf` fork pool; each shard
grows its own per-shard table (no shared mutable state — POOL002) and
the parent joins shards by offset remap: the shard's tokens/prefixes
are interned into the parent table in shard order, yielding old→new id
maps the merge translates through. Because shards partition the
routers and remapping preserves first-appearance order, the decoded
result — edges, weights, prune survivors, rendered picture — is
identical to the serial build (asserted by
``tests/tamp/test_interned_equivalence.py``).
"""

from __future__ import annotations

from functools import partial
from itertools import chain as chain_concat
from typing import Callable, Iterable, Optional, Sequence

from repro.bgp.rib import Route
from repro.collector.events import BGPEvent
from repro.interning import EDGE_SHIFT, SymbolTable
from repro.net.attributes import PathAttributes
from repro.net.prefix import Prefix, format_address
from repro.perf import effective_workers, gc_paused, map_shards, partition
from repro.tamp.graph import TampGraph, _count_elements
from repro.tamp.tree import ChainCache, TampTree, chain_ids

#: One router's slice of the view: (router name, its routes).
RouteGroup = tuple[str, Sequence[Route]]


def build_picture(
    route_groups: Sequence[RouteGroup],
    site_name: Optional[str] = None,
    include_prefix_leaves: bool = True,
    workers: Optional[int] = None,
) -> TampGraph:
    """Merge per-router route groups into one (unpruned) TAMP graph."""
    total_routes = sum(len(routes) for _, routes in route_groups)
    count = effective_workers(workers, total_routes)
    count = min(count, len(route_groups)) or 1
    if count <= 1:
        graph = TampGraph(site_name)
        # One merge_view call over the whole view: the chain buckets
        # span routers (attribute bundles are shared massively), so the
        # interior stores take a handful of long C counting calls
        # instead of one probe per (router, group, edge).
        with gc_paused():
            graph.merge_view(
                (
                    (name, _group_by_attrs(routes))
                    for name, routes in route_groups
                ),
                include_prefix_leaves,
            )
        return graph
    build = partial(_build_shard, include_prefix_leaves)
    with gc_paused():
        shard_results = map_shards(
            build, partition(route_groups, count), count
        )
        graph = TampGraph(site_name)
        _join_shard_trees(graph, shard_results)
    return graph


def _group_by_attrs(routes: Iterable[Route]):
    """One router's routes bucketed by attribute bundle, as group pairs."""
    by_attrs: dict[PathAttributes, list[Prefix]] = {}
    for route in routes:
        by_attrs.setdefault(route.attributes, []).append(route.prefix)
    return by_attrs.items()


def _group_entries(pairs: Iterable[tuple[Prefix, PathAttributes]]):
    """(prefix, attrs) pairs bucketed by attribute bundle, as group pairs."""
    by_attrs: dict[PathAttributes, list[Prefix]] = {}
    for prefix, attributes in pairs:
        by_attrs.setdefault(attributes, []).append(prefix)
    return by_attrs.items()


def _join_shard_trees(
    graph: TampGraph, shard_results: Iterable[list[TampTree]]
) -> None:
    """Fold per-shard trees into *graph* via symbol-table offset remap.

    Only token ids need translation — prefix ids are value-derived
    (:func:`repro.interning.pack_prefix`), so every shard already
    computed the same ids and the refcount stores merge key-for-key.
    """
    table: Optional[SymbolTable] = None
    token_map: list[int] = []
    for trees in shard_results:
        for tree in trees:
            if tree.symbols is not table:
                # One remap per shard table (all trees of a shard share
                # one), computed lazily so an empty shard costs nothing.
                table = tree.symbols
                token_map = graph.symbols.remap_tokens(table)
            graph._merge_ids(tree, token_map)


def _build_shard(
    include_prefix_leaves: bool, shard: Sequence[RouteGroup]
) -> list[TampTree]:
    """Build one shard's trees against a fresh per-shard symbol table.

    Module-level (POOL001) and stateless (POOL002): everything the
    worker needs arrives in the shard, everything it produces returns
    in the trees — which share one table, so the parent remaps once
    per shard, not once per tree.
    """
    symbols = SymbolTable()
    chain_cache: ChainCache = {}
    return [
        TampTree.from_routes(
            name,
            routes,
            include_prefix_leaves,
            symbols=symbols,
            chain_cache=chain_cache,
        )
        for name, routes in shard
    ]


#: Fork-inherited build source for the REX sharded path: (rex,
#: peer_namer, site_name), set by the parent immediately before the
#: pool forks and cleared after. Children receive only peer id lists
#: and read the table through this by copy-on-write — the 1.5M routes
#: are never pickled into the pool, which is what kept the sharded
#: picture slower than the serial one. Read-only by contract: workers
#: must never mutate it (POOL002's actual hazard).
_FORK_SOURCE = None


def _sharded_rex_picture(
    rex,
    peers: Sequence[int],
    site_name: Optional[str],
    include_prefix_leaves: bool,
    count: int,
    peer_namer: Callable[[int], str],
) -> TampGraph:
    """Shard a REX picture by peer over a copy-on-write fork pool.

    Workers run the per-router half of the view merge — prefix-id
    columns off the RIB group index, root and site-link stores, chain
    buckets — and the parent installs their stores wholesale and runs
    the one genuinely cross-router phase, the chain flush
    (:meth:`~repro.tamp.graph.TampGraph.merge_view_shards`). What a
    worker returns is a compact id-level fragment (~a few MB per
    million routes), not a graph: serialization is what made the old
    per-peer-tree sharding slower than the serial build.
    """
    global _FORK_SOURCE
    _FORK_SOURCE = (rex, peer_namer, site_name)
    # The guard spans the fork: workers inherit the paused collector,
    # so shard builds dodge the same heap-walk stalls as the parent.
    with gc_paused():
        try:
            shard_results = map_shards(
                _build_rex_view_shard, partition(list(peers), count), count
            )
        finally:
            _FORK_SOURCE = None
        graph = TampGraph(site_name)
        graph.merge_view_shards(shard_results, include_prefix_leaves)
    return graph


def _build_rex_view_shard(peer_shard: Sequence[int]):
    """One worker's view fragment: (symbols, edge stores, chain lists).

    Module-level (POOL001); the only inputs crossing the pool boundary
    are peer ids, everything heavy arrives via :data:`_FORK_SOURCE` in
    the forked address space. The serial fallback inside
    :func:`~repro.perf.map_shards` runs this in-process, where the
    source global is equally visible.

    Mirrors the per-router loop of
    :meth:`~repro.tamp.graph.TampGraph.merge_id_view` against a fresh
    shard-local symbol table: root-edge and site-link stores are built
    here (they are per-router, so the parent can adopt them verbatim
    after a token remap), while interior/fringe counting — cross-router
    by nature — is deferred to the parent's flush. Chain buckets come
    back flattened per attribute bundle: plain int lists, the cheapest
    thing to pickle out of the pool.
    """
    source = _FORK_SOURCE
    assert source is not None, "_build_rex_view_shard outside a sharded build"
    rex, peer_namer, site_name = source
    symbols = SymbolTable()
    chain_cache: ChainCache = {}
    edges: dict[int, dict[int, int]] = {}
    by_chain: dict = {}
    bucket_get = by_chain.get
    concat = chain_concat.from_iterable
    site_id = None
    if site_name is not None:
        site_id = symbols.intern_token(("root", site_name))
    for peer in peer_shard:
        root = ("router", peer_namer(peer))
        root_id = symbols.intern_token(root)
        root_base = root_id << EDGE_SHIFT
        router_lists: list = []
        for attributes, pids in rex.rib(peer).grouped_pid_entries():
            bucket = bucket_get(attributes)
            if bucket is None:
                head = chain_ids(
                    symbols, chain_cache, root, None, attributes
                )[0]
                by_chain[attributes] = bucket = [head, pids]
            else:
                head = bucket[0]
                bucket.append(pids)
            eid = root_base | head
            store = edges.get(eid)
            if store is None:
                edges[eid] = dict.fromkeys(pids, 1)
            else:
                _count_elements(store, pids)
            if site_id is not None:
                router_lists.append(pids)
        if site_id is not None and router_lists:
            members = (
                router_lists[0]
                if len(router_lists) == 1
                else list(concat(router_lists))
            )
            edges[(site_id << EDGE_SHIFT) | root_id] = dict.fromkeys(
                members, 1
            )
    # Flattened to plain lists: dict value views neither pickle nor
    # outlive a worker.
    chain_lists = {
        attributes: (
            list(bucket[1]) if len(bucket) == 2 else list(concat(bucket[1:]))
        )
        for attributes, bucket in by_chain.items()
    }
    return symbols, edges, chain_lists


def picture_from_rex(
    rex,
    site_name: Optional[str] = None,
    include_prefix_leaves: bool = True,
    workers: Optional[int] = None,
    peer_namer: Callable[[int], str] = format_address,
) -> TampGraph:
    """The classic batch picture: one tree per REX peer, merged.

    Serially this streams each peer's attribute-grouped id columns
    (:meth:`~repro.bgp.rib.AdjRibIn.grouped_pid_entries`, maintained
    per UPDATE) through
    :meth:`~repro.tamp.graph.TampGraph.merge_id_view` — no
    :class:`~repro.bgp.rib.Route` wrappers, no per-picture re-grouping
    or re-encoding pass over millions of routes. With workers the
    peers shard across a fork pool that reads the REX by copy-on-write
    (see :func:`_build_rex_view_shard`) — nothing heavy is serialized
    into the children; only compact id-level fragments come back.
    """
    peers = rex.peers()
    count = effective_workers(workers, rex.route_count())
    count = min(count, len(peers)) or 1
    if count <= 1:
        graph = TampGraph(site_name)
        with gc_paused():
            graph.merge_id_view(
                (
                    (peer_namer(peer), rex.rib(peer).grouped_pid_entries())
                    for peer in peers
                ),
                include_prefix_leaves,
            )
        return graph
    return _sharded_rex_picture(
        rex, peers, site_name, include_prefix_leaves, count, peer_namer
    )


def picture_from_events(
    events: Iterable[BGPEvent],
    site_name: Optional[str] = None,
    include_prefix_leaves: bool = False,
    workers: Optional[int] = None,
    peer_namer: Callable[[int], str] = format_address,
) -> TampGraph:
    """The picture after replaying *events* over an empty route table.

    Replays announcements/withdrawals into a (peer, prefix) → attrs
    table — plain dict traffic — then batch-builds the graph from the
    surviving routes. For a render of the *final* state this is
    equivalent to incrementally maintaining the graph event by event
    (same edges, same weights; asserted in the test suite) but skips
    every intermediate graph mutation, which is exactly the work a
    point-in-time render throws away.
    """
    table: dict[tuple[int, Prefix], PathAttributes] = {}
    for event in events:
        if event.is_withdrawal:
            table.pop((event.peer, event.prefix), None)
        else:
            table[(event.peer, event.prefix)] = event.attributes
    by_peer: dict[int, list[tuple[Prefix, PathAttributes]]] = {}
    for (peer, prefix), attrs in table.items():
        by_peer.setdefault(peer, []).append((prefix, attrs))
    count = effective_workers(workers, len(table))
    count = min(count, len(by_peer)) or 1
    if count <= 1:
        graph = TampGraph(site_name)
        with gc_paused():
            graph.merge_view(
                (
                    (peer_namer(peer), _group_entries(pairs))
                    for peer, pairs in by_peer.items()
                ),
                include_prefix_leaves,
            )
        return graph
    groups: list[RouteGroup] = [
        (
            peer_namer(peer),
            [Route(prefix, attrs, peer) for prefix, attrs in pairs],
        )
        for peer, pairs in by_peer.items()
    ]
    return build_picture(groups, site_name, include_prefix_leaves, workers)
