"""Batch TAMP picture builds: routes → trees → merged graph, sharded.

This is the orchestration layer over the interned builder (DESIGN.md
§10): group routes per router, build each router's
:class:`~repro.tamp.tree.TampTree` as interned columns, and fold the
trees into one :class:`~repro.tamp.graph.TampGraph`.

Serially, every tree is built against the *graph's* symbol table, so
merging is pure id-level counting with no translation. With workers,
router groups shard across the :mod:`repro.perf` fork pool; each shard
grows its own per-shard table (no shared mutable state — POOL002) and
the parent joins shards by offset remap: the shard's tokens/prefixes
are interned into the parent table in shard order, yielding old→new id
maps the merge translates through. Because shards partition the
routers and remapping preserves first-appearance order, the decoded
result — edges, weights, prune survivors, rendered picture — is
identical to the serial build (asserted by
``tests/tamp/test_interned_equivalence.py``).
"""

from __future__ import annotations

from functools import partial
from typing import Callable, Iterable, Optional, Sequence

from repro.bgp.rib import Route
from repro.collector.events import BGPEvent
from repro.interning import SymbolTable
from repro.net.attributes import PathAttributes
from repro.net.prefix import Prefix, format_address
from repro.perf import effective_workers, map_shards, partition
from repro.tamp.graph import TampGraph
from repro.tamp.tree import ChainCache, TampTree

#: One router's slice of the view: (router name, its routes).
RouteGroup = tuple[str, Sequence[Route]]


def build_picture(
    route_groups: Sequence[RouteGroup],
    site_name: Optional[str] = None,
    include_prefix_leaves: bool = True,
    workers: Optional[int] = None,
) -> TampGraph:
    """Merge per-router route groups into one (unpruned) TAMP graph."""
    total_routes = sum(len(routes) for _, routes in route_groups)
    count = effective_workers(workers, total_routes)
    count = min(count, len(route_groups)) or 1
    if count <= 1:
        graph = TampGraph(site_name)
        # One chain cache for the whole build: routers share attribute
        # bundles massively, so later routers intern almost no chains.
        # merge_router folds each router straight into the refcount
        # stores — no intermediate tree columns, peak memory one graph.
        chain_cache: ChainCache = {}
        for name, routes in route_groups:
            graph.merge_router(
                name, routes, include_prefix_leaves, chain_cache
            )
        return graph
    build = partial(_build_shard, include_prefix_leaves)
    shard_results = map_shards(build, partition(route_groups, count), count)
    graph = TampGraph(site_name)
    table: Optional[SymbolTable] = None
    token_map: list[int] = []
    prefix_map: list[int] = []
    for trees in shard_results:
        for tree in trees:
            if tree.symbols is not table:
                # One remap per shard table (all trees of a shard share
                # one), computed lazily so an empty shard costs nothing.
                table = tree.symbols
                token_map = graph.symbols.remap_tokens(table)
                prefix_map = graph.symbols.remap_prefixes(table)
            graph._merge_ids(tree, token_map, prefix_map)
    return graph


def _build_shard(
    include_prefix_leaves: bool, shard: Sequence[RouteGroup]
) -> list[TampTree]:
    """Build one shard's trees against a fresh per-shard symbol table.

    Module-level (POOL001) and stateless (POOL002): everything the
    worker needs arrives in the shard, everything it produces returns
    in the trees — which share one table, so the parent remaps once
    per shard, not once per tree.
    """
    symbols = SymbolTable()
    chain_cache: ChainCache = {}
    return [
        TampTree.from_routes(
            name,
            routes,
            include_prefix_leaves,
            symbols=symbols,
            chain_cache=chain_cache,
        )
        for name, routes in shard
    ]


def picture_from_rex(
    rex,
    site_name: Optional[str] = None,
    include_prefix_leaves: bool = True,
    workers: Optional[int] = None,
    peer_namer: Callable[[int], str] = format_address,
) -> TampGraph:
    """The classic batch picture: one tree per REX peer, merged.

    Serially this streams each peer's table through
    :meth:`~repro.tamp.graph.TampGraph.merge_entries` — native
    (prefix, attributes) pairs, no :class:`~repro.bgp.rib.Route`
    wrappers, no intermediate lists. Route groups are only
    materialized when the build shards across workers (shards must
    pickle).
    """
    peers = rex.peers()
    count = effective_workers(workers, rex.route_count())
    count = min(count, len(peers)) or 1
    if count <= 1:
        graph = TampGraph(site_name)
        chain_cache: ChainCache = {}
        for peer in peers:
            graph.merge_entries(
                peer_namer(peer),
                rex.rib(peer).entries(),
                include_prefix_leaves,
                chain_cache,
            )
        return graph
    groups: list[RouteGroup] = [
        (peer_namer(peer), list(rex.rib(peer).routes())) for peer in peers
    ]
    return build_picture(groups, site_name, include_prefix_leaves, workers)


def picture_from_events(
    events: Iterable[BGPEvent],
    site_name: Optional[str] = None,
    include_prefix_leaves: bool = False,
    workers: Optional[int] = None,
    peer_namer: Callable[[int], str] = format_address,
) -> TampGraph:
    """The picture after replaying *events* over an empty route table.

    Replays announcements/withdrawals into a (peer, prefix) → attrs
    table — plain dict traffic — then batch-builds the graph from the
    surviving routes. For a render of the *final* state this is
    equivalent to incrementally maintaining the graph event by event
    (same edges, same weights; asserted in the test suite) but skips
    every intermediate graph mutation, which is exactly the work a
    point-in-time render throws away.
    """
    table: dict[tuple[int, Prefix], PathAttributes] = {}
    for event in events:
        if event.is_withdrawal:
            table.pop((event.peer, event.prefix), None)
        else:
            table[(event.peer, event.prefix)] = event.attributes
    by_peer: dict[int, list[tuple[Prefix, PathAttributes]]] = {}
    for (peer, prefix), attrs in table.items():
        by_peer.setdefault(peer, []).append((prefix, attrs))
    count = effective_workers(workers, len(table))
    count = min(count, len(by_peer)) or 1
    if count <= 1:
        graph = TampGraph(site_name)
        chain_cache: ChainCache = {}
        for peer, pairs in by_peer.items():
            graph.merge_entries(
                peer_namer(peer), pairs, include_prefix_leaves, chain_cache
            )
        return graph
    groups: list[RouteGroup] = [
        (
            peer_namer(peer),
            [Route(prefix, attrs, peer) for prefix, attrs in pairs],
        )
        for peer, pairs in by_peer.items()
    ]
    return build_picture(groups, site_name, include_prefix_leaves, workers)
