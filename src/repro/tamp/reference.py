"""The object-set reference implementation of the TAMP picture build.

This module preserves the original builder — tuple-token dict keys,
per-edge ``set[Prefix]``/``Counter[Prefix]`` stores — exactly as it
shipped before the interning rewrite (DESIGN.md §10). It exists so the
fast path can be *checked*, not trusted:

* ``tests/tamp/test_interned_equivalence.py`` asserts the interned
  builder produces an identical graph (edge set, weights, prune
  survivors, rendered picture) on Berkeley- and ISP-profile inputs;
* ``benchmarks/test_ablations.py`` pits the two against each other to
  quantify the win ("object sets vs interned bitsets").

It is deliberately the *slow* formulation — every INT001 finding below
is the point of the module, hence the suppressions.
"""

from __future__ import annotations

from collections import Counter, deque
from typing import Iterable, Iterator, Optional

from repro.bgp.rib import Route
from repro.collector.events import Token
from repro.net.attributes import PathAttributes
from repro.net.prefix import Prefix
from repro.tamp.tree import Edge, route_path_tokens


class ReferenceTampTree:
    """The pre-interning :class:`repro.tamp.TampTree` (object sets)."""

    __slots__ = ("root", "include_prefix_leaves", "_edges", "_children")

    def __init__(
        self,
        router_name: str,
        include_prefix_leaves: bool = True,
    ) -> None:
        self.root: Token = ("router", router_name)
        self.include_prefix_leaves = include_prefix_leaves
        self._edges: dict[Edge, set[Prefix]] = {}
        self._children: dict[Token, set[Token]] = {}

    @classmethod
    def from_routes(
        cls,
        router_name: str,
        routes: Iterable[Route],
        include_prefix_leaves: bool = True,
    ) -> "ReferenceTampTree":
        """Build a tree from a route table (grouped by attribute bundle)."""
        tree = cls(router_name, include_prefix_leaves)
        by_attrs: dict[PathAttributes, list[Prefix]] = {}
        for route in routes:
            by_attrs.setdefault(route.attributes, []).append(route.prefix)
        for attributes, prefixes in by_attrs.items():
            tree.add_route_group(prefixes, attributes)
        return tree

    def add_route_group(
        self, prefixes: list[Prefix], attributes: PathAttributes
    ) -> None:
        """Thread many routes sharing one attribute bundle."""
        chain = route_path_tokens(
            self.root, prefixes[0], attributes, include_prefix_leaf=False
        )
        for parent, child in zip(chain, chain[1:]):
            # repro: allow[INT001] reference implementation — the
            # un-interned store is what this module exists to preserve.
            edge = (parent, child)
            existing = self._edges.get(edge)
            if existing is None:
                existing = set()
                self._edges[edge] = existing
                self._children.setdefault(parent, set()).add(child)
            existing.update(prefixes)
        if self.include_prefix_leaves:
            leaf_parent = chain[-1]
            children = self._children.setdefault(leaf_parent, set())
            for prefix in prefixes:
                # repro: allow[INT001] reference implementation (see
                # module docstring).
                edge = (leaf_parent, ("pfx", prefix))
                leaf_set = self._edges.get(edge)
                if leaf_set is None:
                    self._edges[edge] = {prefix}
                    children.add(("pfx", prefix))
                else:
                    leaf_set.add(prefix)

    def edges(self) -> Iterator[tuple[Edge, set[Prefix]]]:
        yield from self._edges.items()

    def weight(self, parent: Token, child: Token) -> int:
        return len(self._edges.get((parent, child), ()))

    def total_prefixes(self) -> int:
        prefixes: set[Prefix] = set()
        for edge_prefixes in self._edges.values():
            prefixes |= edge_prefixes
        return len(prefixes)

    def edge_count(self) -> int:
        return len(self._edges)


class ReferenceTampGraph:
    """The pre-interning :class:`repro.tamp.TampGraph` (Counter stores).

    The public query surface matches the interned graph token for
    token, so layout and rendering run on either unchanged — which is
    what lets the equivalence test hash both pictures.
    """

    __slots__ = ("site_root", "_edges", "_children", "_parents", "_total")

    def __init__(self, site_name: Optional[str] = None) -> None:
        self.site_root: Optional[Token] = (
            ("root", site_name) if site_name is not None else None
        )
        self._edges: dict[Edge, dict[Prefix, int]] = {}
        self._children: dict[Token, set[Token]] = {}
        self._parents: dict[Token, set[Token]] = {}
        self._total: Optional[int] = None

    def _invalidate_cache(self) -> None:
        self._total = None

    @classmethod
    def merge(
        cls,
        trees: Iterable[ReferenceTampTree],
        site_name: Optional[str] = None,
    ) -> "ReferenceTampGraph":
        graph = cls(site_name)
        for tree in trees:
            graph.merge_tree(tree)
        return graph

    def merge_tree(self, tree: ReferenceTampTree) -> None:
        site_root = self.site_root
        tree_root = tree.root
        # repro: allow[INT001] reference implementation — object prefix
        # sets are the baseline the interned builder is checked against.
        root_prefixes: set[Prefix] = set()
        for (parent, child), prefixes in tree.edges():
            self._bulk_add(parent, child, prefixes)
            if site_root is not None and parent == tree_root:
                root_prefixes |= prefixes
        if site_root is not None:
            self._bulk_add(site_root, tree_root, root_prefixes)

    def _bulk_add(self, parent: Token, child: Token, prefixes) -> None:
        if not prefixes:
            return
        self._invalidate_cache()
        # repro: allow[INT001] reference implementation (see module
        # docstring).
        edge = (parent, child)
        existing = self._edges.get(edge)
        if existing is None:
            existing = Counter()
            self._edges[edge] = existing
            self._children.setdefault(parent, set()).add(child)
            self._parents.setdefault(child, set()).add(parent)
        existing.update(prefixes)

    def adopt_edge(
        self, parent: Token, child: Token, prefixes: dict[Prefix, int]
    ) -> None:
        self._edges[(parent, child)] = dict(prefixes)
        self._children.setdefault(parent, set()).add(child)
        self._parents.setdefault(child, set()).add(parent)
        self._invalidate_cache()

    def remove_edge(self, parent: Token, child: Token) -> None:
        self._invalidate_cache()
        self._edges.pop((parent, child), None)
        children = self._children.get(parent)
        if children is not None:
            children.discard(child)
            if not children:
                del self._children[parent]
        parents = self._parents.get(child)
        if parents is not None:
            parents.discard(parent)
            if not parents:
                del self._parents[child]

    # -- queries (verbatim from the original TampGraph) ----------------

    def edges(self) -> Iterator[tuple[Edge, set[Prefix]]]:
        for edge, prefixes in self._edges.items():
            yield edge, set(prefixes)

    def raw_edges(self) -> Iterator[tuple[Edge, dict[Prefix, int]]]:
        yield from self._edges.items()

    def edge_list(self) -> list[Edge]:
        return list(self._edges)

    def has_edge(self, parent: Token, child: Token) -> bool:
        return (parent, child) in self._edges

    def weight(self, parent: Token, child: Token) -> int:
        return len(self._edges.get((parent, child), ()))

    def edge_prefixes(self, parent: Token, child: Token) -> frozenset[Prefix]:
        return frozenset(self._edges.get((parent, child), ()))

    def children(self, node: Token) -> set[Token]:
        return set(self._children.get(node, ()))

    def parents(self, node: Token) -> set[Token]:
        return set(self._parents.get(node, ()))

    def nodes(self) -> set[Token]:
        found: set[Token] = set()
        if self.site_root is not None:
            found.add(self.site_root)
        for parent, child in self._edges:
            found.add(parent)
            found.add(child)
        return found

    def roots(self) -> list[Token]:
        if self.site_root is not None and self.site_root in self.nodes():
            return [self.site_root]
        return sorted(
            (n for n in self.nodes() if not self._parents.get(n)),
            key=str,
        )

    def total_prefixes(self) -> int:
        if self._total is None:
            self._total = len(self.all_prefixes())
        return self._total

    def all_prefixes(self) -> set[Prefix]:
        prefixes: set[Prefix] = set()
        for edge_prefixes in self._edges.values():
            prefixes.update(edge_prefixes)
        return prefixes

    def edge_fraction(self, parent: Token, child: Token) -> float:
        total = self.total_prefixes()
        if total == 0:
            return 0.0
        return self.weight(parent, child) / total

    def depths(self) -> dict[Token, int]:
        depths: dict[Token, int] = {}
        queue: deque[Token] = deque()
        for root in self.roots():
            depths[root] = 0
            queue.append(root)
        while queue:
            node = queue.popleft()
            for child in self._children.get(node, ()):
                if child not in depths:
                    depths[child] = depths[node] + 1
                    queue.append(child)
        return depths

    def edge_count(self) -> int:
        return len(self._edges)

    def __len__(self) -> int:
        return len(self._edges)

    def copy(self) -> "ReferenceTampGraph":
        duplicate = ReferenceTampGraph()
        duplicate.site_root = self.site_root
        duplicate._edges = {
            edge: dict(prefixes) for edge, prefixes in self._edges.items()
        }
        duplicate._children = {
            node: set(children) for node, children in self._children.items()
        }
        duplicate._parents = {
            node: set(parents) for node, parents in self._parents.items()
        }
        duplicate._total = self._total
        return duplicate


def reference_prune_flat(
    graph: ReferenceTampGraph, threshold: float = 0.05
) -> ReferenceTampGraph:
    """The original survivor-first flat prune over the object-set graph."""
    if not 0.0 <= threshold <= 1.0:
        raise ValueError(f"threshold {threshold} outside [0, 1]")
    total = graph.total_prefixes()
    if total == 0:
        return graph.copy()
    pruned = ReferenceTampGraph()
    pruned.site_root = graph.site_root
    for (parent, child), prefixes in graph.raw_edges():
        if len(prefixes) / total >= threshold:
            pruned.adopt_edge(parent, child, prefixes)
    _sweep_unreachable(pruned, graph.roots())
    return pruned


def _sweep_unreachable(graph: ReferenceTampGraph, roots) -> None:
    reachable: set = set()
    queue = deque(roots)
    reachable.update(roots)
    while queue:
        node = queue.popleft()
        for child in sorted(graph.children(node), key=str):
            if child not in reachable:
                reachable.add(child)
                queue.append(child)
    for parent, child in graph.edge_list():
        if parent not in reachable:
            graph.remove_edge(parent, child)


def reference_picture(
    route_groups: Iterable[tuple[str, Iterable[Route]]],
    site_name: Optional[str] = None,
    include_prefix_leaves: bool = True,
    threshold: Optional[float] = 0.05,
) -> ReferenceTampGraph:
    """The original end-to-end picture build (trees → merge → prune)."""
    graph = ReferenceTampGraph(site_name)
    for router_name, routes in route_groups:
        graph.merge_tree(
            ReferenceTampTree.from_routes(
                router_name, routes, include_prefix_leaves
            )
        )
    if threshold is None:
        return graph
    return reference_prune_flat(graph, threshold)
