"""Renderers for TAMP pictures.

Two output targets:

* :func:`render_svg` — a standalone SVG document: rectangles for nodes,
  lines for edges with stroke width proportional to prefix share, edge
  color by animation state (black/green/blue/yellow + gray shadows), and
  percentage labels like Figure 2's "80%".
* :func:`render_ascii` — a text rendering for terminals and tests: one
  line per edge with a bar proportional to the prefix share.
"""

from __future__ import annotations

from typing import Mapping, Optional
from xml.sax.saxutils import escape

from repro.collector.events import Token
from repro.net.prefix import format_address
from repro.tamp.graph import TampGraph
from repro.tamp.layout import edge_geometry, layout_graph

#: Edge colors per change state (the paper's animation legend).
STATE_COLORS = {
    "stable": "#000000",
    "gaining": "#1a9641",
    "losing": "#2c7bb6",
    "flapping": "#e6c700",
    "shadow": "#bbbbbb",
}


def node_label(node: Token) -> str:
    """Operator-facing label for a TAMP node."""
    namespace, value = node
    if namespace == "root":
        return str(value)
    if namespace == "router":
        return str(value)
    if namespace == "nh":
        return format_address(value)  # type: ignore[arg-type]
    if namespace == "as":
        return f"AS{value}"
    if namespace == "pfx":
        return str(value)
    raise ValueError(f"unknown node namespace {namespace!r}")


def render_ascii(graph: TampGraph, width: int = 30) -> str:
    """Text view: edges sorted by depth then weight, with share bars.

    >>> # AS11423 -> AS209  [##########          ]  80.0% (96)
    """
    total = graph.total_prefixes()
    depths = graph.depths()
    lines = []
    ordered = sorted(
        graph.edges(),
        key=lambda item: (
            depths.get(item[0][0], 99),
            -len(item[1]),
            str(item[0]),
        ),
    )
    for (parent, child), prefixes in ordered:
        fraction = len(prefixes) / total if total else 0.0
        filled = round(fraction * width)
        bar = "#" * filled + " " * (width - filled)
        lines.append(
            f"{node_label(parent)} -> {node_label(child)}"
            f"  [{bar}]  {fraction:6.1%} ({len(prefixes)})"
        )
    return "\n".join(lines)


def _edge_order(item: tuple) -> str:
    """Deterministic draw order for edge-keyed mappings."""
    return str(item[0])


def render_svg(
    graph: TampGraph,
    edge_states: Optional[Mapping[tuple[Token, Token], str]] = None,
    shadows: Optional[Mapping[tuple[Token, Token], float]] = None,
    title: str = "",
    clock_text: str = "",
    weights: Optional[Mapping[tuple[Token, Token], float]] = None,
) -> str:
    """Render *graph* as a standalone SVG document string.

    *edge_states* maps edges to a state name from :data:`STATE_COLORS`
    (missing edges draw stable/black). *shadows* maps edges to a
    0..1 fraction for the gray historical-maximum shadow behind the
    colored line. *clock_text* draws the animation clock of Figure 3.
    *weights* switches thickness from prefix counts to the supplied
    per-edge values (e.g. traffic volumes — Section III-D.2).
    """
    layout = layout_graph(graph)
    geometry = edge_geometry(graph, layout, weights=weights)
    margin = 120.0
    width = layout.width + 2 * margin
    height = layout.height + 2 * margin + (40 if clock_text else 0)
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width:.0f}"'
        f' height="{height:.0f}" viewBox="0 0 {width:.0f} {height:.0f}">',
        '<rect width="100%" height="100%" fill="white"/>',
    ]
    if title:
        parts.append(
            f'<text x="{width / 2:.0f}" y="24" text-anchor="middle"'
            f' font-size="16" font-family="sans-serif">{escape(title)}</text>'
        )

    def shift(point: tuple[float, float]) -> tuple[float, float]:
        return (point[0] + margin, point[1] + margin)

    # Shadows first (under everything), then edges, then nodes. Both
    # passes draw in sorted edge order: the geometry mapping follows
    # the graph's internal insertion order, which is an implementation
    # detail (e.g. serial vs sharded builds interleave differently) —
    # sorting makes equal graph *content* yield byte-equal documents.
    if shadows:
        for edge, fraction in sorted(shadows.items(), key=_edge_order):
            geo = geometry.get(edge)
            if geo is None:
                continue
            (x1, y1), (x2, y2) = shift(geo.start), shift(geo.end)
            thickness = max(1.0, fraction * 14.0)
            parts.append(
                f'<line x1="{x1:.1f}" y1="{y1:.1f}" x2="{x2:.1f}"'
                f' y2="{y2:.1f}" stroke="{STATE_COLORS["shadow"]}"'
                f' stroke-width="{thickness:.1f}"/>'
            )
    for edge, geo in sorted(geometry.items(), key=_edge_order):
        state = (edge_states or {}).get(edge, "stable")
        color = STATE_COLORS.get(state, STATE_COLORS["stable"])
        (x1, y1), (x2, y2) = shift(geo.start), shift(geo.end)
        parts.append(
            f'<line x1="{x1:.1f}" y1="{y1:.1f}" x2="{x2:.1f}" y2="{y2:.1f}"'
            f' stroke="{color}" stroke-width="{geo.thickness:.1f}"/>'
        )
        label_x, label_y = (x1 + x2) / 2, (y1 + y2) / 2 - 4
        parts.append(
            f'<text x="{label_x:.1f}" y="{label_y:.1f}" font-size="10"'
            f' text-anchor="middle" font-family="sans-serif"'
            f' fill="#555">{geo.fraction:.0%}</text>'
        )
    for node, position in layout.positions.items():
        x, y = shift(position)
        label = escape(node_label(node))
        half_width = max(30, 4 * len(label))
        parts.append(
            f'<rect x="{x - half_width:.1f}" y="{y - 11:.1f}"'
            f' width="{2 * half_width:.1f}" height="22" fill="#f4f4f4"'
            f' stroke="#333" rx="3"/>'
        )
        parts.append(
            f'<text x="{x:.1f}" y="{y + 4:.1f}" text-anchor="middle"'
            f' font-size="11" font-family="sans-serif">{label}</text>'
        )
    if clock_text:
        parts.append(
            f'<text x="{margin:.0f}" y="{height - 16:.0f}" font-size="13"'
            f' font-family="monospace">{escape(clock_text)}</text>'
        )
    parts.append("</svg>")
    return "\n".join(parts)
