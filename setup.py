"""Setup shim.

The execution environment has setuptools but no ``wheel`` package and no
network access, so PEP 660 editable installs (which build a wheel) fail.
Keeping a setup.py lets ``pip install -e .`` fall back to the legacy
``setup.py develop`` path, which needs neither wheel nor the network.
"""

from setuptools import setup

setup()
