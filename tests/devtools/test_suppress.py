"""Unit tests for the ``# repro: allow[RULE]`` suppression scanner."""

from repro.devtools.suppress import Suppressions


class TestInline:
    def test_inline_comment_silences_its_own_line(self):
        sup = Suppressions.scan(
            "x = 1\ny = rng()  # repro: allow[DET001] justified\n"
        )
        assert sup.is_allowed("DET001", 2)
        assert not sup.is_allowed("DET001", 1)

    def test_rule_must_match(self):
        sup = Suppressions.scan("y = f()  # repro: allow[DET001]\n")
        assert not sup.is_allowed("DET002", 1)

    def test_multiple_rules_one_comment(self):
        sup = Suppressions.scan(
            "y = f()  # repro: allow[DET001, POOL002]\n"
        )
        assert sup.is_allowed("DET001", 1)
        assert sup.is_allowed("POOL002", 1)

    def test_star_allows_everything(self):
        sup = Suppressions.scan("y = f()  # repro: allow[*]\n")
        assert sup.is_allowed("CACHE001", 1)


class TestStandalone:
    def test_standalone_comment_covers_next_code_line(self):
        sup = Suppressions.scan(
            "# repro: allow[DET002] insertion order is deterministic\n"
            "x = list(d.values())\n"
        )
        assert sup.is_allowed("DET002", 2)
        assert not sup.is_allowed("DET002", 1)

    def test_justification_block_skips_continuation_comments(self):
        sup = Suppressions.scan(
            "# repro: allow[DET002] the builder is single-threaded\n"
            "# by construction, so insertion order is stable.\n"
            "\n"
            "x = list(d.values())\n"
        )
        assert sup.is_allowed("DET002", 4)

    def test_trailing_comment_at_eof_is_inert(self):
        sup = Suppressions.scan("x = 1\n# repro: allow[DET001]\n")
        assert not sup.is_allowed("DET001", 1)
        # Falls back to its own (code-free) line; nothing to silence.
        assert sup.is_allowed("DET001", 2)


class TestRobustness:
    def test_marker_inside_string_is_not_a_suppression(self):
        sup = Suppressions.scan(
            's = "# repro: allow[DET001]"\nx = f()\n'
        )
        assert not sup.is_allowed("DET001", 1)
        assert not sup.is_allowed("DET001", 2)

    def test_untokenizable_source_falls_back_to_line_scan(self):
        # Unterminated string: tokenize raises, the line scan still
        # honors the comment.
        sup = Suppressions.scan(
            'x = f()  # repro: allow[DET001]\ns = "unterminated\n'
        )
        assert sup.is_allowed("DET001", 1)

    def test_plain_comments_are_ignored(self):
        sup = Suppressions.scan("# just a note\nx = 1\n")
        assert sup.line_count == 0
