"""Tier-1 self-lint: ``src/repro`` must satisfy its own analyzer.

This is the enforcement half of the PR 1 determinism claim: any commit
that introduces an unseeded entropy source, an unordered iteration
feeding ordered output, a fork-pool closure, a mutable default, or a
hookless ``TampGraph`` mutator fails the suite here — with the same
findings ``repro lint src`` would print — unless it carries a justified
``# repro: allow[...]`` comment that a reviewer can see and veto.
"""

from pathlib import Path

from repro.devtools import analyze_paths, render_text

SRC_REPRO = Path(__file__).resolve().parents[2] / "src" / "repro"


def test_source_tree_exists():
    assert SRC_REPRO.is_dir(), SRC_REPRO


def test_source_tree_is_lint_clean():
    findings = analyze_paths([SRC_REPRO])
    assert findings == [], "\n" + render_text(findings)


def test_self_lint_covers_the_whole_package():
    # Guard against the self-lint silently analyzing a subset: the
    # package has dozens of modules and every package dir must appear.
    from repro.devtools import iter_python_files

    files = iter_python_files([SRC_REPRO])
    assert len(files) > 60
    packages = {f.parent.name for f in files}
    for expected in ("stemming", "tamp", "collector", "net", "perf",
                     "devtools", "rules"):
        assert expected in packages
