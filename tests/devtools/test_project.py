"""Project-layer tests: import graph, symbol index, cross-module rules.

The multi-file cases build little ``repro.*`` trees on disk (the
``repro`` anchor is what :func:`module_name_for` keys on) and run the
real engine over them, so the import graph, the re-export resolver and
the whole-program rules are exercised exactly as ``repro lint`` runs
them.
"""

import ast
from pathlib import Path

from repro.devtools.engine import analyze_project, module_name_for
from repro.devtools.project import ProjectContext, build_project


def make_tree(root: Path, files: dict[str, str]) -> list[Path]:
    paths = []
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
        paths.append(path)
    return sorted(paths)


def project_for(root: Path, files: dict[str, str]) -> ProjectContext:
    paths = make_tree(root, files)
    return build_project([(p, module_name_for(p)) for p in paths])


class TestImportGraph:
    def test_direct_edges_and_symbol_imports(self, tmp_path):
        project = project_for(
            tmp_path,
            {
                "repro/a.py": "from repro.b import helper\n",
                "repro/b.py": "import repro.c\n\ndef helper():\n    return 1\n",
                "repro/c.py": "X = 1\n",
            },
        )
        graph = project.import_graph
        assert graph["repro.a"] == frozenset({"repro.b"})
        assert graph["repro.b"] == frozenset({"repro.c"})
        assert graph["repro.c"] == frozenset()

    def test_transitive_closures(self, tmp_path):
        project = project_for(
            tmp_path,
            {
                "repro/a.py": "import repro.b\n",
                "repro/b.py": "import repro.c\n",
                "repro/c.py": "X = 1\n",
                "repro/lone.py": "Y = 2\n",
            },
        )
        assert project.dependencies_of("repro.a") == frozenset(
            {"repro.b", "repro.c"}
        )
        assert project.dependents_of("repro.c") == frozenset(
            {"repro.a", "repro.b"}
        )
        assert project.dependencies_of("repro.lone") == frozenset()
        assert project.dependents_of("repro.lone") == frozenset()

    def test_relative_imports_resolve_against_the_package(self, tmp_path):
        project = project_for(
            tmp_path,
            {
                "repro/pkg/__init__.py": "",
                "repro/pkg/a.py": "from . import b\nfrom .b import f\n",
                "repro/pkg/b.py": "def f():\n    return 1\n",
            },
        )
        assert "repro.pkg.b" in project.import_graph["repro.pkg.a"]

    def test_imports_outside_the_project_are_ignored(self, tmp_path):
        project = project_for(
            tmp_path,
            {"repro/a.py": "import json\nfrom os.path import join\n"},
        )
        assert project.import_graph["repro.a"] == frozenset()


class TestSymbolIndex:
    def test_resolves_local_imported_and_aliased_calls(self, tmp_path):
        project = project_for(
            tmp_path,
            {
                "repro/util.py": "def helper(x):\n    return x\n",
                "repro/use.py": (
                    "import repro.util as u\n"
                    "from repro.util import helper\n"
                    "def local():\n    return 1\n"
                ),
            },
        )
        info = project.by_module["repro.use"]

        def callee(expr):
            return ast.parse(expr, mode="eval").body

        local = project.resolve_function(info, callee("local"))
        assert local is not None and local.qualname == "local"
        imported = project.resolve_function(info, callee("helper"))
        assert imported is not None and imported.module == "repro.util"
        aliased = project.resolve_function(info, callee("u.helper"))
        assert aliased is not None and aliased.qualname == "helper"
        assert project.resolve_function(info, callee("json.loads")) is None

    def test_resolves_through_a_package_reexport(self, tmp_path):
        project = project_for(
            tmp_path,
            {
                "repro/pkg/__init__.py": "from repro.pkg.impl import fn\n",
                "repro/pkg/impl.py": "def fn():\n    return 1\n",
                "repro/use.py": (
                    "from repro.pkg import fn\n"
                    "def g():\n    return fn()\n"
                ),
            },
        )
        info = project.by_module["repro.use"]
        call = ast.parse("fn", mode="eval").body
        found = project.resolve_function(info, call)
        assert found is not None
        assert found.module == "repro.pkg.impl"

    def test_resolves_self_methods(self, tmp_path):
        project = project_for(
            tmp_path,
            {
                "repro/cls.py": (
                    "class C:\n"
                    "    def a(self):\n        return self.b()\n"
                    "    def b(self):\n        return 1\n"
                ),
            },
        )
        info = project.by_module["repro.cls"]
        scope = info.functions["C.a"]
        call = ast.parse("self.b", mode="eval").body
        found = project.resolve_function(info, call, scope)
        assert found is not None and found.qualname == "C.b"

    def test_method_params_strip_self(self, tmp_path):
        project = project_for(
            tmp_path,
            {
                "repro/cls.py": (
                    "class C:\n"
                    "    def m(self, first, second):\n        return first\n"
                ),
            },
        )
        fn = project.by_module["repro.cls"].functions["C.m"]
        assert fn.params == ("first", "second")
        assert fn.param_index("second") == 1


class TestCrossModuleTaint:
    def test_int003_tracks_a_token_across_modules(self, tmp_path):
        paths = make_tree(
            tmp_path,
            {
                "repro/decode.py": (
                    "def decode_route(table, i):\n"
                    "    return table.token(i)\n"
                ),
                "repro/flow.py": (
                    "from repro.decode import decode_route\n"
                    "from repro.tamp.graph import merge_entries\n"
                    "def leak(table, store):\n"
                    "    value = decode_route(table, 3)\n"
                    "    merge_entries(store, value)\n"
                ),
            },
        )
        report = analyze_project(paths)
        int003 = [f for f in report.findings if f.rule == "INT003"]
        assert len(int003) == 1
        assert int003[0].path.endswith("flow.py")
        assert "merge_entries" in int003[0].message

    def test_pool003_sees_a_cross_module_helper_write(self, tmp_path):
        paths = make_tree(
            tmp_path,
            {
                "repro/state.py": (
                    "_CACHE = {}\n"
                    "def remember(k):\n"
                    "    _CACHE[k] = True\n"
                ),
                "repro/work.py": (
                    "from repro.perf.pool import map_shards\n"
                    "from repro.state import remember\n"
                    "def shard(items):\n"
                    "    for i in items:\n"
                    "        remember(i)\n"
                    "    return items\n"
                    "def run(groups):\n"
                    "    return map_shards(shard, groups)\n"
                ),
            },
        )
        report = analyze_project(paths)
        pool003 = [f for f in report.findings if f.rule == "POOL003"]
        assert len(pool003) == 1
        assert pool003[0].path.endswith("work.py")
        assert "repro.state" in pool003[0].message

    def test_clean_cross_module_flow_stays_clean(self, tmp_path):
        paths = make_tree(
            tmp_path,
            {
                "repro/ids.py": (
                    "def normalize(ids):\n"
                    "    return sorted(ids)\n"
                ),
                "repro/flow.py": (
                    "from repro.ids import normalize\n"
                    "from repro.tamp.graph import merge_entries\n"
                    "def hot(store, ids):\n"
                    "    merge_entries(store, normalize(ids))\n"
                ),
            },
        )
        report = analyze_project(paths)
        assert report.findings == []


class TestAnalyzeProjectBasics:
    def test_findings_are_sorted_and_files_recorded(self, tmp_path):
        paths = make_tree(
            tmp_path,
            {
                "repro/b.py": "def f(x=[]):\n    return x\n",
                "repro/a.py": "def g(y={}):\n    return y\n",
            },
        )
        report = analyze_project(paths)
        assert report.findings == sorted(report.findings)
        assert [Path(p).name for p in report.files] == ["a.py", "b.py"]
        # Uncached: everything counts as analyzed, no cache traffic.
        assert report.analyzed == report.files
        assert report.cache_stats is None
