"""``repro lint`` CLI tests: exit codes, formats, errors, suppressions."""

import json
from pathlib import Path

from repro.cli import main

FIXTURES = Path(__file__).parent / "fixtures"


class TestExitCodes:
    def test_clean_file_exits_zero(self, capsys):
        assert main(["lint", str(FIXTURES / "mut001_ok.py")]) == 0
        assert "clean: no findings" in capsys.readouterr().out

    def test_findings_exit_one(self, capsys):
        assert main(["lint", str(FIXTURES / "mut001_bad.py")]) == 1
        out = capsys.readouterr().out
        assert "MUT001" in out
        assert "4 finding(s)" in out

    def test_every_known_bad_fixture_gates(self):
        # DET001, TK001, INT001 and INT002 are package-scoped and can't
        # fire on a bare fixture path, so the CLI gate is asserted for
        # every other rule's bad fixture.
        for fixture in sorted(FIXTURES.glob("*_bad.py")):
            if fixture.name.startswith(("det001", "tk001", "int00")):
                continue
            assert main(["lint", str(fixture)]) == 1, fixture.name

    def test_suppressed_fixture_exits_zero(self):
        assert main(["lint", str(FIXTURES / "mut001_suppressed.py")]) == 0

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert main(["lint", str(tmp_path / "nope")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_non_python_file_exits_two(self, tmp_path, capsys):
        path = tmp_path / "data.json"
        path.write_text("{}")
        assert main(["lint", str(path)]) == 2
        assert "not a Python file" in capsys.readouterr().err

    def test_unknown_rule_exits_two(self, capsys):
        code = main(
            ["lint", str(FIXTURES / "mut001_ok.py"), "--rules", "NOPE1"]
        )
        assert code == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_syntax_error_gates(self, tmp_path):
        path = tmp_path / "broken.py"
        path.write_text("def broken(:\n")
        assert main(["lint", str(path)]) == 1


class TestFormats:
    def test_json_report_shape(self, capsys):
        assert main(
            ["lint", str(FIXTURES / "mut001_bad.py"), "--format", "json"]
        ) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 1
        assert payload["count"] == 4
        assert len(payload["findings"]) == 4
        finding = payload["findings"][0]
        assert set(finding) == {"path", "line", "col", "rule", "message"}
        assert finding["rule"] == "MUT001"

    def test_json_clean_report(self, capsys):
        assert main(
            ["lint", str(FIXTURES / "mut001_ok.py"), "--format", "json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == 0
        assert payload["findings"] == []

    def test_output_file(self, tmp_path, capsys):
        report = tmp_path / "lint.json"
        code = main(
            ["lint", str(FIXTURES / "mut001_bad.py"),
             "--format", "json", "--output", str(report)]
        )
        assert code == 1
        payload = json.loads(report.read_text())
        assert payload["count"] == 4
        assert str(report) in capsys.readouterr().out


class TestRuleSelection:
    def test_rules_filter_narrows_findings(self, capsys):
        code = main(
            ["lint", str(FIXTURES / "mut001_bad.py"),
             "--rules", "DET002,POOL001"]
        )
        assert code == 0  # file has only MUT001 violations

    def test_list_rules_prints_catalog(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("DET001", "DET002", "DET003", "POOL001",
                        "POOL002", "MUT001", "CACHE001"):
            assert rule_id in out


class TestDirectoryLint:
    def test_directory_is_walked_and_sorted(self, tmp_path, capsys):
        (tmp_path / "b.py").write_text("def f(x=[]):\n    return x\n")
        (tmp_path / "a.py").write_text("def g(y={}):\n    return y\n")
        assert main(["lint", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert out.index("a.py") < out.index("b.py")
        assert "2 finding(s)" in out
