"""``repro lint`` CLI tests: exit codes, formats, fixes, cache flags."""

import json
import shutil
import subprocess
from pathlib import Path

from repro.cli import main

FIXTURES = Path(__file__).parent / "fixtures"


class TestExitCodes:
    def test_clean_file_exits_zero(self, capsys):
        assert main(["lint", str(FIXTURES / "mut001_ok.py")]) == 0
        assert "clean: no findings" in capsys.readouterr().out

    def test_findings_exit_one(self, capsys):
        assert main(["lint", str(FIXTURES / "mut001_bad.py")]) == 1
        out = capsys.readouterr().out
        assert "MUT001" in out
        assert "4 finding(s)" in out

    def test_every_known_bad_fixture_gates(self):
        # DET001, TK001, INT001, INT002 and SRV001 are package-scoped
        # and can't fire on a bare fixture path, so the CLI gate is
        # asserted for every other rule's bad fixture (the project
        # rules INT003, POOL003 and PIPE002 fire anywhere).
        for fixture in sorted(FIXTURES.glob("*_bad.py")):
            if fixture.name.startswith(
                ("det001", "tk001", "int001", "int002", "srv001")
            ):
                continue
            assert main(["lint", str(fixture)]) == 1, fixture.name

    def test_suppressed_fixture_exits_zero(self):
        assert main(["lint", str(FIXTURES / "mut001_suppressed.py")]) == 0

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert main(["lint", str(tmp_path / "nope")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_non_python_file_exits_two(self, tmp_path, capsys):
        path = tmp_path / "data.json"
        path.write_text("{}")
        assert main(["lint", str(path)]) == 2
        assert "not a Python file" in capsys.readouterr().err

    def test_unknown_rule_exits_two(self, capsys):
        code = main(
            ["lint", str(FIXTURES / "mut001_ok.py"), "--rules", "NOPE1"]
        )
        assert code == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_syntax_error_gates(self, tmp_path):
        path = tmp_path / "broken.py"
        path.write_text("def broken(:\n")
        assert main(["lint", str(path)]) == 1

    def test_fix_and_fix_suppress_conflict(self, capsys):
        code = main(
            ["lint", str(FIXTURES / "mut001_ok.py"),
             "--fix", "--fix-suppress", "DET002"]
        )
        assert code == 2
        assert "mutually exclusive" in capsys.readouterr().err


class TestFormats:
    def test_json_report_shape(self, capsys):
        assert main(
            ["lint", str(FIXTURES / "mut001_bad.py"), "--format", "json"]
        ) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 2
        assert payload["count"] == 4
        assert len(payload["findings"]) == 4
        finding = payload["findings"][0]
        assert set(finding) == {
            "path", "line", "col", "rule", "message", "fixable",
        }
        assert finding["rule"] == "MUT001"

    def test_json_clean_report(self, capsys):
        assert main(
            ["lint", str(FIXTURES / "mut001_ok.py"), "--format", "json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == 0
        assert payload["findings"] == []

    def test_sarif_report_shape(self, capsys):
        assert main(
            ["lint", str(FIXTURES / "mut001_bad.py"), "--format", "sarif"]
        ) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == "2.1.0"
        (run,) = payload["runs"]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert {"MUT001", "INT003", "POOL003", "PIPE002"} <= rule_ids
        assert len(run["results"]) == 4
        result = run["results"][0]
        assert result["ruleId"] == "MUT001"
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] >= 1
        assert region["startColumn"] >= 1  # SARIF columns are 1-based

    def test_output_file(self, tmp_path, capsys):
        report = tmp_path / "lint.json"
        code = main(
            ["lint", str(FIXTURES / "mut001_bad.py"),
             "--format", "json", "--output", str(report)]
        )
        assert code == 1
        payload = json.loads(report.read_text())
        assert payload["count"] == 4
        assert str(report) in capsys.readouterr().out


class TestRuleSelection:
    def test_rules_filter_narrows_findings(self, capsys):
        code = main(
            ["lint", str(FIXTURES / "mut001_bad.py"),
             "--rules", "DET002,POOL001"]
        )
        assert code == 0  # file has only MUT001 violations

    def test_list_rules_prints_catalog(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("DET001", "DET002", "DET003", "POOL001",
                        "POOL002", "POOL003", "MUT001", "CACHE001",
                        "INT001", "INT002", "INT003", "PIPE001",
                        "PIPE002", "TK001"):
            assert rule_id in out


class TestDirectoryLint:
    def test_directory_is_walked_and_sorted(self, tmp_path, capsys):
        (tmp_path / "b.py").write_text("def f(x=[]):\n    return x\n")
        (tmp_path / "a.py").write_text("def g(y={}):\n    return y\n")
        assert main(["lint", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert out.index("a.py") < out.index("b.py")
        assert "2 finding(s)" in out


class TestCacheFlags:
    def test_default_run_reports_cache_stats(self, tmp_path, capsys):
        # conftest chdir puts the default .repro-lint-cache in tmp.
        path = tmp_path / "clean.py"
        path.write_text("X = 1\n")
        assert main(["lint", str(path)]) == 0
        err = capsys.readouterr().err
        assert "lint cache: 0 hit(s), 1 miss(es)" in err
        assert (tmp_path / ".repro-lint-cache" / "cache.json").is_file()

        assert main(["lint", str(path)]) == 0
        assert "1 hit(s), 0 miss(es) (100% hit rate)" in (
            capsys.readouterr().err
        )

    def test_no_cache_suppresses_stats_and_writes_nothing(
        self, tmp_path, capsys
    ):
        path = tmp_path / "clean.py"
        path.write_text("X = 1\n")
        assert main(["lint", str(path), "--no-cache"]) == 0
        assert "lint cache" not in capsys.readouterr().err
        assert not (tmp_path / ".repro-lint-cache").exists()

    def test_cache_dir_flag_redirects_the_store(self, tmp_path, capsys):
        path = tmp_path / "clean.py"
        path.write_text("X = 1\n")
        store = tmp_path / "elsewhere"
        assert main(["lint", str(path), "--cache-dir", str(store)]) == 0
        assert (store / "cache.json").is_file()
        assert not (tmp_path / ".repro-lint-cache").exists()


class TestFixFlags:
    def test_fix_repairs_and_exits_zero(self, tmp_path, capsys):
        path = tmp_path / "victim.py"
        path.write_text("def f(acc=[]):\n    return acc\n")
        assert main(["lint", str(path), "--fix"]) == 0
        captured = capsys.readouterr()
        assert "fixed 1 finding(s) in 1 file(s)" in captured.err
        assert "clean: no findings" in captured.out
        assert "acc=None" in path.read_text()

    def test_fix_suppress_inserts_stub_and_exits_zero(self, tmp_path):
        path = tmp_path / "victim.py"
        path.write_text(
            "def order(xs):\n"
            "    out = []\n"
            "    for x in {str(v) for v in xs}:\n"
            "        out.append(x)\n"
            "    return out\n"
        )
        assert main(["lint", str(path), "--fix-suppress", "DET002"]) == 0
        assert "# repro: allow[DET002]" in path.read_text()

    def test_fix_leaves_unfixable_findings_and_exits_one(self, tmp_path):
        path = tmp_path / "victim.py"
        path.write_text("f = lambda xs=[]: xs\n")
        assert main(["lint", str(path), "--fix"]) == 1


class TestChangedFlag:
    def git(self, cwd, *argv):
        return subprocess.run(
            ["git", *argv], cwd=cwd, capture_output=True, text=True,
            check=True,
        )

    def repo(self, tmp_path):
        if shutil.which("git") is None:  # pragma: no cover
            import pytest

            pytest.skip("git unavailable")
        root = tmp_path / "repo"
        root.mkdir()
        self.git(root, "init", "-q")
        self.git(root, "config", "user.email", "t@example.com")
        self.git(root, "config", "user.name", "t")
        (root / "clean.py").write_text("X = 1\n")
        (root / "dirty.py").write_text("Y = 2\n")
        self.git(root, "add", ".")
        self.git(root, "commit", "-qm", "seed")
        return root

    def test_changed_lints_only_modified_files(
        self, tmp_path, monkeypatch, capsys
    ):
        root = self.repo(tmp_path)
        monkeypatch.chdir(root)
        (root / "dirty.py").write_text("def f(x=[]):\n    return x\n")
        assert main(["lint", ".", "--changed", "--no-cache"]) == 1
        out = capsys.readouterr().out
        assert "dirty.py" in out
        assert "clean.py" not in out

    def test_changed_with_clean_tree_exits_zero(
        self, tmp_path, monkeypatch, capsys
    ):
        root = self.repo(tmp_path)
        monkeypatch.chdir(root)
        assert main(["lint", ".", "--changed", "--no-cache"]) == 0
        assert "no changed Python files" in capsys.readouterr().out

    def test_changed_outside_a_repo_falls_back_to_full_lint(
        self, tmp_path, capsys
    ):
        path = tmp_path / "victim.py"
        path.write_text("def f(x=[]):\n    return x\n")
        assert main(
            ["lint", str(path), "--changed", "--no-cache"]
        ) == 1
        captured = capsys.readouterr()
        assert "running a full lint" in captured.err
        assert "MUT001" in captured.out
