"""Fixture-corpus tests: every rule's violation and suppression path.

Each fixture under ``fixtures/`` is analyzed statically (never
imported). DET001 is package-scoped, so its fixtures are analyzed with
a synthetic module name placing them inside an algorithm package.
"""

from pathlib import Path

import pytest

from repro.devtools import analyze_source

FIXTURES = Path(__file__).parent / "fixtures"

#: Module name placing a fixture inside an algorithm package (DET001).
ALGO_MODULE = "repro.stemming.fixture"

#: Module name placing a fixture inside the testkit package (TK001).
TESTKIT_MODULE = "repro.testkit.fixture"

#: Module name placing a fixture inside the TAMP package (INT001).
TAMP_MODULE = "repro.tamp.fixture"

#: Module name placing a fixture inside the serve package (SRV001).
SERVE_MODULE = "repro.serve.fixture"


def analyze_fixture(name: str, module: str = ALGO_MODULE):
    source = (FIXTURES / name).read_text()
    return analyze_source(source, path=name, module=module)


def fixture_module(name: str) -> str:
    """The module name under which a fixture's rule actually fires."""
    if name.startswith("tk001"):
        return TESTKIT_MODULE
    if name.startswith("det001"):
        return ALGO_MODULE
    if name.startswith("int001"):
        return TAMP_MODULE
    if name.startswith("int002"):
        return ALGO_MODULE
    if name.startswith("srv001"):
        return SERVE_MODULE
    return "fixture"


def rule_ids(findings):
    return [finding.rule for finding in findings]


class TestDet001:
    def test_bad_flags_every_entropy_source(self):
        findings = analyze_fixture("det001_bad.py")
        assert rule_ids(findings) == ["DET001"] * 5
        messages = " ".join(f.message for f in findings)
        assert "random.random" in messages
        assert "random.choice" in messages
        assert "time.time" in messages
        assert "datetime.datetime.now" in messages

    def test_ok_is_clean(self):
        assert analyze_fixture("det001_ok.py") == []

    def test_suppressions_silence_both_styles(self):
        assert analyze_fixture("det001_suppressed.py") == []

    def test_rule_is_scoped_to_algorithm_packages(self):
        findings = analyze_fixture(
            "det001_bad.py", module="repro.simulator.fixture"
        )
        assert findings == []


class TestDet002:
    def test_bad_flags_each_ordered_sink(self):
        findings = analyze_fixture("det002_bad.py")
        assert rule_ids(findings) == ["DET002"] * 4
        messages = " ".join(f.message for f in findings)
        assert "str.join" in messages
        assert "list()" in messages
        assert "list comprehension" in messages
        assert "for loop" in messages

    def test_ok_is_clean(self):
        assert analyze_fixture("det002_ok.py") == []

    def test_suppressions(self):
        assert analyze_fixture("det002_suppressed.py") == []


class TestDet003:
    def test_bad_flags_identity_key_and_sort(self):
        findings = analyze_fixture("det003_bad.py")
        assert rule_ids(findings) == ["DET003"] * 2

    def test_suppressions(self):
        assert analyze_fixture("det003_suppressed.py") == []


class TestPool001:
    def test_bad_flags_lambda_closure_and_partial_of_lambda(self):
        findings = analyze_fixture("pool001_bad.py")
        assert rule_ids(findings) == ["POOL001"] * 3
        messages = " ".join(f.message for f in findings)
        assert "lambda" in messages
        assert "'scale' is not bound at module level" in messages

    def test_ok_is_clean(self):
        assert analyze_fixture("pool001_ok.py") == []

    def test_suppressions(self):
        assert analyze_fixture("pool001_suppressed.py") == []


class TestPool002:
    def test_bad_flags_global_writes(self):
        findings = analyze_fixture("pool002_bad.py")
        assert rule_ids(findings) == ["POOL002"] * 3
        messages = " ".join(f.message for f in findings)
        assert "global _SEEN" in messages
        assert "'_CACHE'" in messages
        assert "'_TOTALS'" in messages

    def test_suppressions(self):
        assert analyze_fixture("pool002_suppressed.py") == []


class TestPipe001:
    def test_bad_flags_global_decl_and_mutable_refs(self):
        findings = analyze_fixture("pipe001_bad.py")
        assert rule_ids(findings) == ["PIPE001"] * 3
        messages = " ".join(f.message for f in findings)
        assert "global _CACHE" in messages
        assert "'_SEEN'" in messages
        assert "'_RECENT'" in messages
        assert "stage class DedupStage" in messages
        assert "stage function count_stage" in messages

    def test_ok_is_clean(self):
        assert analyze_fixture("pipe001_ok.py") == []

    def test_suppressions(self):
        assert analyze_fixture("pipe001_suppressed.py") == []

    def test_the_real_pipeline_stages_are_clean(self):
        import repro.pipeline.runtime
        import repro.pipeline.windows

        for mod in (repro.pipeline.runtime, repro.pipeline.windows):
            source = Path(mod.__file__).read_text()
            findings = analyze_source(
                source, path=mod.__file__, module=mod.__name__
            )
            assert findings == [], mod.__name__


class TestInc001:
    def test_bad_flags_attribute_subscript_and_sql_writes(self):
        findings = analyze_fixture("inc001_bad.py")
        assert rule_ids(findings) == ["INC001"] * 3
        messages = " ".join(f.message for f in findings)
        assert "record.status" in messages
        assert 'row["status"]' in messages
        assert "SQL UPDATE" in messages

    def test_ok_is_clean(self):
        assert analyze_fixture("inc001_ok.py") == []

    def test_suppressions(self):
        assert analyze_fixture("inc001_suppressed.py") == []

    def test_rule_needs_an_incident_import_or_package(self):
        # The same writes in a module that never touches
        # repro.incidents are someone else's status field.
        source = (
            "def close(ticket):\n"
            '    ticket.status = "resolved"\n'
        )
        assert analyze_source(source, path="x.py", module="fixture") == []
        findings = analyze_source(
            source, path="x.py", module="repro.incidents.tools"
        )
        assert rule_ids(findings) == ["INC001"]

    def test_the_sanctioned_writer_is_exempt(self):
        import repro.incidents.lifecycle as lifecycle

        source = Path(lifecycle.__file__).read_text()
        findings = analyze_source(
            source, path=lifecycle.__file__, module=lifecycle.__name__
        )
        assert findings == []

    def test_the_real_incident_modules_are_clean(self):
        import repro.incidents.manager
        import repro.incidents.store

        for mod in (repro.incidents.manager, repro.incidents.store):
            source = Path(mod.__file__).read_text()
            findings = analyze_source(
                source, path=mod.__file__, module=mod.__name__
            )
            assert findings == [], mod.__name__


class TestMut001:
    def test_bad_flags_every_mutable_default(self):
        findings = analyze_fixture("mut001_bad.py")
        assert rule_ids(findings) == ["MUT001"] * 4

    def test_ok_is_clean(self):
        assert analyze_fixture("mut001_ok.py") == []

    def test_suppressions(self):
        assert analyze_fixture("mut001_suppressed.py") == []


class TestCache001:
    def test_bad_flags_hookless_mutators(self):
        findings = analyze_fixture("cache001_bad.py")
        assert rule_ids(findings) == ["CACHE001"] * 2
        messages = " ".join(f.message for f in findings)
        assert "add_edge" in messages
        assert "drop_edge" in messages

    def test_ok_is_clean(self):
        assert analyze_fixture("cache001_ok.py") == []

    def test_suppressions(self):
        assert analyze_fixture("cache001_suppressed.py") == []


class TestTk001:
    def test_bad_flags_every_entropy_leak(self):
        findings = analyze_fixture("tk001_bad.py", module=TESTKIT_MODULE)
        assert rule_ids(findings) == ["TK001"] * 4
        messages = " ".join(f.message for f in findings)
        assert "OS entropy" in messages
        assert "module-level generator" in messages
        assert "'shuffle_records'" in messages
        assert "unseeded global" in messages

    def test_ok_is_clean(self):
        assert analyze_fixture("tk001_ok.py", module=TESTKIT_MODULE) == []

    def test_suppressions(self):
        findings = analyze_fixture(
            "tk001_suppressed.py", module=TESTKIT_MODULE
        )
        assert findings == []

    def test_rule_is_scoped_to_the_testkit_package(self):
        findings = analyze_fixture(
            "tk001_bad.py", module="repro.simulator.fixture"
        )
        assert findings == []

    def test_the_real_testkit_is_clean(self):
        import repro.testkit.corpus
        import repro.testkit.faults

        for mod in (repro.testkit.faults, repro.testkit.corpus):
            source = Path(mod.__file__).read_text()
            findings = analyze_source(
                source, path=mod.__file__, module=mod.__name__
            )
            assert findings == [], mod.__name__


class TestInt001:
    def test_bad_flags_every_hot_path_regression(self):
        findings = analyze_fixture("int001_bad.py", module=TAMP_MODULE)
        assert rule_ids(findings) == ["INT001"] * 3
        messages = " ".join(f.message for f in findings)
        assert "set[Prefix]" in messages
        assert "'edge'" in messages
        assert "pack_edge" in messages

    def test_ok_is_clean(self):
        assert analyze_fixture("int001_ok.py", module=TAMP_MODULE) == []

    def test_suppressions(self):
        findings = analyze_fixture(
            "int001_suppressed.py", module=TAMP_MODULE
        )
        assert findings == []

    def test_rule_is_scoped_to_the_tamp_package(self):
        findings = analyze_fixture(
            "int001_bad.py", module="repro.simulator.fixture"
        )
        assert findings == []

    def test_the_real_hot_path_is_clean(self):
        """The interned builders themselves must pass their own gate."""
        import repro.tamp.graph
        import repro.tamp.tree

        for mod in (repro.tamp.tree, repro.tamp.graph):
            source = Path(mod.__file__).read_text()
            findings = analyze_source(
                source, path=mod.__file__, module=mod.__name__
            )
            int_findings = [f for f in findings if f.rule == "INT001"]
            assert int_findings == [], mod.__name__


class TestInt002:
    def test_bad_flags_decodes_and_retokenization(self):
        findings = analyze_fixture("int002_bad.py", module=ALGO_MODULE)
        assert rule_ids(findings) == ["INT002"] * 3
        messages = " ".join(f.message for f in findings)
        assert "route_path_tokens" in messages
        assert ".token()" in messages
        assert ".decode_pair()" in messages

    def test_ok_is_clean(self):
        assert analyze_fixture("int002_ok.py", module=ALGO_MODULE) == []

    def test_suppressions(self):
        findings = analyze_fixture(
            "int002_suppressed.py", module=ALGO_MODULE
        )
        assert findings == []

    def test_rule_fires_in_both_packages(self):
        findings = analyze_fixture("int002_bad.py", module=TAMP_MODULE)
        assert "INT002" in rule_ids(findings)

    def test_rule_is_scoped_to_stemming_and_tamp(self):
        findings = analyze_fixture(
            "int002_bad.py", module="repro.simulator.fixture"
        )
        assert findings == []

    def test_the_real_hot_paths_are_clean(self):
        """The interned counter/stemmer/animator pass their own gate."""
        import repro.stemming.counter
        import repro.stemming.stemmer
        import repro.tamp.animate
        import repro.tamp.incremental
        import repro.tamp.svg_animation

        for mod in (
            repro.stemming.counter,
            repro.stemming.stemmer,
            repro.tamp.incremental,
            repro.tamp.animate,
            repro.tamp.svg_animation,
        ):
            source = Path(mod.__file__).read_text()
            findings = analyze_source(
                source, path=mod.__file__, module=mod.__name__
            )
            int_findings = [f for f in findings if f.rule == "INT002"]
            assert int_findings == [], mod.__name__


class TestInt003:
    def test_bad_flags_direct_chained_and_indirect_leaks(self):
        findings = analyze_fixture("int003_bad.py", module="fixture")
        assert rule_ids(findings) == ["INT003"] * 3
        messages = " ".join(f.message for f in findings)
        assert "merge_entries" in messages
        assert "add_ids" in messages
        # The indirect case names the intermediate callee and the hot
        # target its parameter reaches.
        assert "_push()" in messages

    def test_ok_is_clean(self):
        assert analyze_fixture("int003_ok.py", module="fixture") == []

    def test_suppressions(self):
        assert analyze_fixture("int003_suppressed.py", module="fixture") == []

    def test_findings_anchor_at_the_call_site(self):
        # Cache-soundness invariant: INT003 anchors where the tainted
        # value enters the callee, never inside the callee on behalf of
        # a caller — a file's findings depend only on its imports.
        findings = analyze_fixture("int003_bad.py", module="fixture")
        source = (FIXTURES / "int003_bad.py").read_text().splitlines()
        for finding in findings:
            assert "(" in source[finding.line - 1]  # a call, not a def


class TestPool003:
    def test_bad_flags_helper_writes_one_level_down(self):
        findings = analyze_fixture("pool003_bad.py", module="fixture")
        assert rule_ids(findings) == ["POOL003"] * 2
        messages = " ".join(f.message for f in findings)
        assert "_memoize()" in messages
        assert "_tally()" in messages
        assert "lost at join" in messages

    def test_ok_is_clean(self):
        assert analyze_fixture("pool003_ok.py", module="fixture") == []

    def test_suppressions(self):
        assert (
            analyze_fixture("pool003_suppressed.py", module="fixture") == []
        )


class TestSrv001:
    def test_bad_flags_every_live_state_read(self):
        findings = analyze_fixture("srv001_bad.py", module=SERVE_MODULE)
        assert rule_ids(findings) == ["SRV001"] * 3
        messages = " ".join(f.message for f in findings)
        assert "shard.live_tamp" in messages
        assert "shard.live_window" in messages
        assert "shard.live_manager" in messages
        assert "snapshot surface" in messages

    def test_ok_is_clean(self):
        assert analyze_fixture("srv001_ok.py", module=SERVE_MODULE) == []

    def test_suppressions(self):
        findings = analyze_fixture(
            "srv001_suppressed.py", module=SERVE_MODULE
        )
        assert findings == []

    def test_rule_is_scoped_to_the_serve_package(self):
        findings = analyze_fixture(
            "srv001_bad.py", module="repro.pipeline.fixture"
        )
        assert findings == []

    def test_the_sanctioned_owners_are_exempt(self):
        findings = analyze_fixture(
            "srv001_bad.py", module="repro.serve.sharding"
        )
        assert findings == []

    def test_the_real_serve_handlers_are_clean(self):
        import repro.serve.app
        import repro.serve.driver
        import repro.serve.events
        import repro.serve.http

        for mod in (
            repro.serve.app,
            repro.serve.driver,
            repro.serve.events,
            repro.serve.http,
        ):
            source = Path(mod.__file__).read_text()
            findings = analyze_source(
                source, path=mod.__file__, module=mod.__name__
            )
            assert findings == [], mod.__name__


class TestPipe002:
    def test_bad_flags_helper_touch_and_closure_capture(self):
        findings = analyze_fixture("pipe002_bad.py", module="fixture")
        assert rule_ids(findings) == ["PIPE002"] * 2
        messages = " ".join(f.message for f in findings)
        assert "_note()" in messages
        assert "'_SEEN'" in messages
        assert "closure over mutable 'buf'" in messages

    def test_ok_is_clean(self):
        assert analyze_fixture("pipe002_ok.py", module="fixture") == []

    def test_suppressions(self):
        assert (
            analyze_fixture("pipe002_suppressed.py", module="fixture") == []
        )


class TestFixMetadata:
    def test_mut001_findings_carry_the_none_guard_fix(self):
        source = "def f(acc=[]):\n    return acc\n"
        (finding,) = analyze_source(source, path="x.py")
        assert finding.fixable
        replacements = [e.replacement for e in finding.fix]
        assert "None" in replacements
        assert any("if acc is None:" in r for r in replacements)

    def test_mut001_lambda_has_no_fix(self):
        (finding,) = analyze_source("f = lambda xs=[]: xs\n", path="x.py")
        assert not finding.fixable

    def test_det002_findings_carry_the_sorted_wrap(self):
        source = (
            "def f(xs):\n"
            "    return [x for x in {str(v) for v in xs}]\n"
        )
        (finding,) = analyze_source(source, path="x.py")
        assert [e.replacement for e in finding.fix] == ["sorted(", ")"]


class TestEngineBehavior:
    def test_syntax_error_becomes_a_finding(self):
        findings = analyze_source("def broken(:\n", path="broken.py")
        assert len(findings) == 1
        assert findings[0].rule == "SYNTAX"

    def test_findings_are_sorted(self):
        source = (FIXTURES / "det001_bad.py").read_text()
        findings = analyze_source(source, path="x.py", module=ALGO_MODULE)
        assert findings == sorted(findings)

    def test_rules_filter(self):
        source = (FIXTURES / "mut001_bad.py").read_text()
        findings = analyze_source(source, path="x.py")
        assert rule_ids(findings) == ["MUT001"] * 4
        # An explicit filter excluding MUT001 leaves the file clean.
        from repro.devtools.engine import analyze_source as analyze

        assert analyze(source, path="x.py", rules={"DET002"}) == []

    @pytest.mark.parametrize(
        "name",
        sorted(p.name for p in FIXTURES.glob("*_bad.py")),
    )
    def test_every_bad_fixture_has_findings(self, name):
        assert analyze_fixture(name, module=fixture_module(name)) != []

    @pytest.mark.parametrize(
        "name",
        sorted(p.name for p in FIXTURES.glob("*_suppressed.py")),
    )
    def test_every_suppressed_fixture_is_clean(self, name):
        assert analyze_fixture(name, module=fixture_module(name)) == []
