"""Shared devtools-test setup.

``repro lint`` caches incrementally by default under
``./.repro-lint-cache``; every test here runs chdir'd into its own tmp
directory so no CLI invocation can leave a cache (or an autofix temp
file) inside the repository tree. All fixture/source references in
these tests are absolute, so the chdir is invisible to them.
"""

import pytest


@pytest.fixture(autouse=True)
def _isolate_cwd(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
