"""Incremental-cache tests: what busts, what hits, what re-analyzes.

The acceptance property is the invalidation domain: after a warm run,
editing one file re-analyzes exactly that file plus its transitive
dependents — nothing else — and a rule-set change or a corrupt blob
busts everything rather than serving stale findings.
"""

from pathlib import Path

from repro.devtools.cache import LintCache, deps_signature, ruleset_signature
from repro.devtools.engine import analyze_project

from tests.devtools.test_project import make_tree


def names(paths):
    return sorted(Path(p).name for p in paths)


class TestCacheLifecycle:
    def project(self, tmp_path):
        # c ← b ← a (a imports b imports c); lone is disconnected.
        return make_tree(
            tmp_path / "tree",
            {
                "repro/a.py": "import repro.b\n\ndef fa(x=[]):\n    return x\n",
                "repro/b.py": "import repro.c\n\nY = 1\n",
                "repro/c.py": "Z = 2\n",
                "repro/lone.py": "W = 3\n",
            },
        )

    def test_cold_run_misses_warm_run_hits(self, tmp_path):
        paths = self.project(tmp_path)
        cache_dir = tmp_path / "cache"

        cold = analyze_project(paths, cache=LintCache(cache_dir))
        assert cold.cache_hits == 0
        assert cold.cache_misses == 4
        assert names(cold.analyzed) == ["a.py", "b.py", "c.py", "lone.py"]

        warm = analyze_project(paths, cache=LintCache(cache_dir))
        assert warm.cache_hits == 4
        assert warm.cache_misses == 0
        assert warm.analyzed == []
        # Served findings are identical to fresh ones (a.py's MUT001).
        assert [f.render() for f in warm.findings] == [
            f.render() for f in cold.findings
        ]
        assert warm.findings[0].fix  # fix edits survive the round-trip

    def test_content_change_reanalyzes_file_and_dependents(self, tmp_path):
        paths = self.project(tmp_path)
        cache_dir = tmp_path / "cache"
        analyze_project(paths, cache=LintCache(cache_dir))

        # c.py changes: a and b transitively import it, lone does not.
        (tmp_path / "tree/repro/c.py").write_text("Z = 99\n")
        warm = analyze_project(paths, cache=LintCache(cache_dir))
        assert names(warm.analyzed) == ["a.py", "b.py", "c.py"]
        assert warm.cache_hits == 1  # lone.py

    def test_leaf_change_reanalyzes_only_the_leaf(self, tmp_path):
        paths = self.project(tmp_path)
        cache_dir = tmp_path / "cache"
        analyze_project(paths, cache=LintCache(cache_dir))

        # a.py imports everything transitively but nothing imports it.
        (tmp_path / "tree/repro/a.py").write_text(
            "import repro.b\n\ndef fa(x=()):\n    return x\n"
        )
        warm = analyze_project(paths, cache=LintCache(cache_dir))
        assert names(warm.analyzed) == ["a.py"]
        assert warm.cache_hits == 3
        assert warm.findings == []  # the MUT001 is fixed and not stale

    def test_unrelated_change_keeps_everything_else_warm(self, tmp_path):
        paths = self.project(tmp_path)
        cache_dir = tmp_path / "cache"
        analyze_project(paths, cache=LintCache(cache_dir))

        (tmp_path / "tree/repro/lone.py").write_text("W = 4\n")
        warm = analyze_project(paths, cache=LintCache(cache_dir))
        assert names(warm.analyzed) == ["lone.py"]
        assert warm.cache_hits == 3

    def test_ruleset_change_busts_every_entry(self, tmp_path):
        paths = self.project(tmp_path)
        cache_dir = tmp_path / "cache"
        analyze_project(paths, cache=LintCache(cache_dir))

        narrowed = analyze_project(
            paths, rules={"DET002"}, cache=LintCache(cache_dir)
        )
        assert narrowed.cache_hits == 0
        assert narrowed.cache_misses == 4

    def test_corrupt_blob_is_discarded_not_trusted(self, tmp_path):
        paths = self.project(tmp_path)
        cache_dir = tmp_path / "cache"
        analyze_project(paths, cache=LintCache(cache_dir))

        (cache_dir / "cache.json").write_text("{not json")
        warm = analyze_project(paths, cache=LintCache(cache_dir))
        assert warm.cache_hits == 0
        assert warm.cache_misses == 4

    def test_deleted_files_are_pruned(self, tmp_path):
        paths = self.project(tmp_path)
        cache_dir = tmp_path / "cache"
        analyze_project(paths, cache=LintCache(cache_dir))

        (tmp_path / "tree/repro/lone.py").unlink()
        kept = [p for p in paths if p.name != "lone.py"]
        analyze_project(kept, cache=LintCache(cache_dir))
        reloaded = LintCache(cache_dir)
        assert all("lone.py" not in path for path in reloaded._entries)


class TestSignatures:
    def test_deps_signature_is_order_independent(self):
        pairs = [("b", "2"), ("a", "1")]
        assert deps_signature(pairs) == deps_signature(list(reversed(pairs)))
        assert deps_signature(pairs) != deps_signature([("a", "1")])

    def test_ruleset_signature_distinguishes_selections(self):
        assert ruleset_signature(None) != ruleset_signature({"DET002"})
        assert ruleset_signature({"DET002", "MUT001"}) == ruleset_signature(
            {"MUT001", "DET002"}
        )

    def test_stats_line(self, tmp_path):
        cache = LintCache(tmp_path / "cache")
        cache.misses = 1
        cache.hits = 3
        assert "75% hit rate" in cache.stats_line()
