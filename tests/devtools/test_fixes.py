"""Autofix tests: edit application, round-trips, suppression stubs."""

import pytest

from repro.devtools import analyze_paths
from repro.devtools.findings import Edit
from repro.devtools.fixes import (
    EditConflict,
    apply_edits,
    fix_paths,
    suppression_edits,
)


def edit(sl, sc, el, ec, text):
    return Edit(
        start_line=sl, start_col=sc, end_line=el, end_col=ec,
        replacement=text,
    )


class TestApplyEdits:
    def test_replacement_and_insertion(self):
        source = "alpha beta\ngamma\n"
        out = apply_edits(
            source,
            [edit(1, 6, 1, 10, "BETA"), edit(2, 0, 2, 0, ">> ")],
        )
        assert out == "alpha BETA\n>> gamma\n"

    def test_edits_apply_bottom_up(self):
        # Both edits are given top-down; the later one's coordinates
        # must survive the earlier one growing its line.
        source = "a\nb\n"
        out = apply_edits(
            source, [edit(1, 0, 1, 1, "AAAA"), edit(2, 0, 2, 1, "B")]
        )
        assert out == "AAAA\nB\n"

    def test_same_point_insertions_stack_in_order(self):
        out = apply_edits("x", [edit(1, 0, 1, 0, "1"), edit(1, 0, 1, 0, "2")])
        assert out == "12x"

    def test_overlapping_spans_conflict(self):
        with pytest.raises(EditConflict):
            apply_edits(
                "abcdef", [edit(1, 0, 1, 4, "x"), edit(1, 2, 1, 6, "y")]
            )

    def test_insertion_inside_a_replacement_is_allowed(self):
        # Insertions are zero-width: only real spans can overlap.
        out = apply_edits(
            "abcd", [edit(1, 0, 1, 2, "X"), edit(1, 3, 1, 3, "!")]
        )
        assert out == "Xc!d"


class TestFixRoundTrip:
    BAD = (
        "def collect(items, acc=[]):\n"
        '    """Accumulate."""\n'
        "    for item in items:\n"
        "        acc.append(item)\n"
        "    return acc\n"
        "\n"
        "\n"
        "def render(names):\n"
        "    parts = []\n"
        "    for name in {n.upper() for n in names}:\n"
        "        parts.append(name)\n"
        "    return parts\n"
    )

    def test_fix_repairs_and_relints_clean(self, tmp_path):
        path = tmp_path / "victim.py"
        path.write_text(self.BAD)
        report = fix_paths([path])
        assert len(report.fixed) == 2
        assert report.skipped == []
        assert report.remaining == []
        fixed = path.read_text()
        assert "acc=None" in fixed
        assert "if acc is None:" in fixed
        assert "acc = []" in fixed
        assert "sorted({n.upper() for n in names})" in fixed
        assert analyze_paths([path]) == []

    def test_fix_is_idempotent(self, tmp_path):
        path = tmp_path / "victim.py"
        path.write_text(self.BAD)
        fix_paths([path])
        once = path.read_text()
        second = fix_paths([path])
        assert second.fixed == []
        assert second.changed_files == []
        assert path.read_text() == once

    def test_unfixable_findings_are_left_alone(self, tmp_path):
        # A lambda default is flagged but carries no fix.
        path = tmp_path / "victim.py"
        path.write_text("f = lambda xs=[]: xs\n")
        report = fix_paths([path])
        assert report.fixed == []
        assert report.changed_files == []
        assert [f.rule for f in report.remaining] == ["MUT001"]

    def test_fixture_corpus_round_trip(self, tmp_path):
        # --fix over the MUT001 bad fixture: every fixable finding is
        # repaired, the file still parses, and a second run is a no-op.
        from tests.devtools.test_rules import FIXTURES

        path = tmp_path / "mut001_bad.py"
        path.write_text((FIXTURES / "mut001_bad.py").read_text())
        first = fix_paths([path])
        assert first.fixed
        assert fix_paths([path]).fixed == []
        for finding in first.remaining:
            assert not finding.fixable


class TestFixSuppress:
    def test_inserts_a_justification_stub_above_the_finding(self, tmp_path):
        path = tmp_path / "victim.py"
        path.write_text(
            "def order(xs):\n"
            "    out = []\n"
            "    for x in {str(v) for v in xs}:\n"
            "        out.append(x)\n"
            "    return out\n"
        )
        report = fix_paths([path], suppress_rule="DET002")
        assert len(report.fixed) == 1
        assert report.remaining == []
        text = path.read_text()
        assert "    # repro: allow[DET002] TODO: justify" in text
        # The comment sits directly above the flagged loop, indented.
        lines = text.splitlines()
        allow = next(i for i, l in enumerate(lines) if "allow[" in l)
        assert "for x in" in lines[allow + 1]

    def test_only_the_named_rule_is_suppressed(self, tmp_path):
        path = tmp_path / "victim.py"
        path.write_text(
            "def f(acc=[]):\n"
            "    for x in {str(v) for v in acc}:\n"
            "        acc.append(x)\n"
            "    return acc\n"
        )
        report = fix_paths([path], suppress_rule="DET002")
        assert [f.rule for f in report.remaining] == ["MUT001"]

    def test_suppression_edit_shape(self):
        from repro.devtools.findings import Finding

        finding = Finding(
            path="x.py", line=2, col=4, rule="DET002", message="m"
        )
        edits = suppression_edits(finding, "a\n    flagged\n")
        assert len(edits) == 1
        assert edits[0].is_insertion()
        assert edits[0].replacement.startswith("    # repro: allow[DET002]")
