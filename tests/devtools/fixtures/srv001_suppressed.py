"""SRV001 violations carrying justified suppressions."""


def debug_handler(request, shard):
    # repro: allow[SRV001] debug endpoint gated off in production
    depths = shard.live_pipeline.depths()
    return {
        "depths": depths,
        "buffered": shard.live_window.buffered,  # repro: allow[SRV001] fixture justification
    }
