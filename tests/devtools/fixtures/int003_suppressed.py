"""INT003 violations silenced by justified suppressions."""

from repro.tamp.graph import merge_entries


def migration_shim(table, store):
    tok = table.token(7)
    # repro: allow[INT003] legacy store still keyed by tokens; removed
    # with the v1 archive format.
    merge_entries(store, tok)


def inline_style(table, store):
    pair = table.decode_pair(3)
    merge_entries(store, pair)  # repro: allow[INT003] golden-file shim
