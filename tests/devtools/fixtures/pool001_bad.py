"""POOL001 violations: non-module-level callables handed to the pool.

Static fixture — never imported, so the repro.perf import need not
resolve at analysis time.
"""

from functools import partial

from repro.perf import map_shards


def run_lambda(shards):
    return map_shards(lambda shard: shard * 2, shards, 2)


def run_closure(shards, factor):
    def scale(shard):
        return [x * factor for x in shard]

    return map_shards(scale, shards, 2)


def run_partial_of_lambda(shards):
    fn = partial(lambda shard, k: shard[:k], k=1)
    return map_shards(fn, shards, 2)
