"""INT001 known-good: hot paths stay on packed ids; tuple keys and
object prefix sets are fine outside the hot functions."""

EDGE_SHIFT = 32

Prefix = object


class TampTree:
    def __init__(self):
        self._edges = {}

    def add_route_group(self, pids, chain_ids):
        for parent, child in zip(chain_ids, chain_ids[1:]):
            eid = (parent << EDGE_SHIFT) | child
            column = self._edges.get(eid)
            if column is None:
                self._edges[eid] = set(pids)
            else:
                column.update(pids)

    def decode_prefixes(self, symbols, eid):
        # Decode-boundary query: object sets are expected here.
        decoded: set[Prefix] = {
            symbols.prefix(pid) for pid in self._edges[eid]
        }
        return decoded


class TampGraph:
    def __init__(self):
        self._edges = {}
        self._total = None

    def _invalidate_cache(self):
        self._total = None

    def merge_tree(self, tree):
        self._invalidate_cache()
        for eid, column in tree.raw_columns():
            store = self._edges.get(eid)
            if store is None:
                self._edges[eid] = dict.fromkeys(column, 1)
            else:
                for pid in column:
                    store[pid] = store.get(pid, 0) + 1

    def weight(self, parent, child):
        # Token-tuple lookups outside the hot list stay legal.
        return len(self._edges.get((parent, child), ()))
