"""POOL002 violations: shard function writing module globals."""

from repro.perf import map_shards

_CACHE: dict = {}
_TOTALS = []


def _shard_count(shard):
    global _SEEN
    _SEEN = len(shard)
    _CACHE[len(shard)] = shard
    _TOTALS.append(len(shard))
    return len(shard)


def run(shards, workers):
    return map_shards(_shard_count, shards, workers)
