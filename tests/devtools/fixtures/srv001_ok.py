"""SRV001-clean: every read rides the snapshot surface."""


async def picture_handler(request, hub):
    snapshot = await hub.snapshot()
    return snapshot.response_200


def status_handler(request, shard_set, hub):
    return {
        "version": list(shard_set.version()),
        "etag": hub.current().etag if hub.current() else None,
        "shards": shard_set.status(),
    }


def incidents_handler(request, shard_set):
    return shard_set.incident_rows()
