"""DET003 violations: id()-based keys and ordering."""


def key_by_identity(objects) -> dict:
    return {id(obj): obj for obj in objects}


def order_by_address(objects) -> list:
    return sorted(objects, key=id)
