"""POOL003 violations: shard helpers writing module globals."""

from repro.perf.pool import map_shards

_CACHE = {}
_TOTALS = []


def _memoize(key):
    _CACHE[key] = True  # the write POOL002 cannot see from the shard
    return key


def _tally(n):
    _TOTALS.append(n)


def shard(items):
    out = []
    for item in items:
        out.append(_memoize(item))  # POOL003
    _tally(len(items))  # POOL003
    return out


def run(groups):
    return map_shards(shard, groups)
