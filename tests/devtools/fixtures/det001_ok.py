"""DET001 known-good: seeded generators and stream-supplied times."""

import random


def seeded(seed: int) -> float:
    rng = random.Random(seed)
    return rng.random()


def elapsed(start: float, end: float) -> float:
    return end - start
