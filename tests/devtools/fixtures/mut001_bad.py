"""MUT001 violations: mutable defaults (literal, constructor, lambda)."""

from collections import Counter


def accumulate(item, bucket=[]):
    bucket.append(item)
    return bucket


def tally(values, counts=Counter()):
    counts.update(values)
    return counts


def index(key, table={}):
    return table.setdefault(key, None)


collect = lambda item, acc=[]: acc + [item]  # noqa: E731
