"""PIPE002 violations: stage state escaping through calls/closures."""

from repro.pipeline.runtime import FunctionStage, Stage

_SEEN = set()


def _note(item):
    _SEEN.add(item)  # the touch PIPE001 cannot see from the stage
    return item


class DedupStage(Stage):
    def process(self, item):
        return _note(item)  # PIPE002: helper touches _SEEN


def build_buffering_stage():
    buf = []

    def stage_fn(item):
        buf.append(item)
        return item

    return FunctionStage(stage_fn)  # PIPE002: closure captures buf
