"""INT003 violations: token-level values reaching hot functions."""

from repro.tamp.graph import merge_entries

from repro.stemming.counter import add_ids


def direct_leak(table, store):
    tok = table.token(7)
    merge_entries(store, tok)  # INT003: tok is token-level


def chained_leak(table, store):
    pair = _decode(table)
    merge_entries(store, pair)  # INT003: taint through a return


def _decode(table):
    return table.decode_pair(3)


def indirect_leak(table, counts):
    tok = table.prefix(9)
    _push(counts, tok)  # INT003: _push's parameter reaches add_ids


def _push(counts, value):
    add_ids(counts, value)
