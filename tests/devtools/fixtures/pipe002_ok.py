"""PIPE002-clean: stage state on the instance, helpers pure."""

from repro.pipeline.runtime import FunctionStage, Stage

_WINDOW = 30  # immutable constant: helpers may read it


def _scale(item):
    return item * _WINDOW


class ScaleStage(Stage):
    def __init__(self):
        self.seen = set()  # instance state: checkpointable

    def process(self, item):
        self.seen.add(item)
        return _scale(item)


def passthrough(item):
    return item


def build_stage():
    return FunctionStage(passthrough)  # module-level fn: no capture
