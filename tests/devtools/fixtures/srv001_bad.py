"""SRV001 violations: handlers reaching into live pipeline state."""


def picture_handler(request, shard):
    # Torn read: the graph mutates between batches.
    return shard.live_tamp.tamp.graph


def status_handler(request, shard_set):
    shard = shard_set._shards[0]
    return {"window": shard.live_window.window_index}


def incidents_handler(request, shard):
    return [r.to_dict() for r in shard.live_manager.all_incidents()]
