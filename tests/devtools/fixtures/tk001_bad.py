"""Every TK001 violation class: entropy the caller cannot replay."""

import random

_MODULE_RNG = random.Random(42)  # module-level: state hidden from callers


def drop_some(items: list[int]) -> list[int]:
    rng = random.Random()  # no arguments: seeds from OS entropy
    return [item for item in items if rng.random() < 0.5]


def shuffle_records(records: list[int]) -> list[int]:
    # public, builds a generator, but takes no `seed` parameter
    rng = random.Random(1234)
    out = list(records)
    rng.shuffle(out)
    return out


def jitter(value: float) -> float:
    return value + random.random()  # module-global generator
