"""INC001 violations carrying justified suppressions."""

from repro.incidents.lifecycle import IncidentRecord


def repair_corrupt_record(record: IncidentRecord) -> None:
    # repro: allow[INC001] disaster-recovery script rebuilding a store
    record.status = "open"


def backfill(row: dict) -> None:
    row["status"] = "resolved"  # repro: allow[INC001] fixture justification
