"""POOL002 violations carrying justified suppressions."""

from repro.perf import map_shards

_CACHE: dict = {}


def _shard_count(shard):
    # repro: allow[POOL002] fixture: warm-cache only, results unused.
    _CACHE[len(shard)] = shard
    return len(shard)


def run(shards, workers):
    return map_shards(_shard_count, shards, workers)
