"""DET001 violations carrying justified suppressions."""

import random
import time


def jitter() -> float:
    return random.random()  # repro: allow[DET001] fixture justification


def stamp() -> float:
    # repro: allow[DET001] wall clock feeds a log line, not a result.
    return time.time()
