"""INT002 violations: decoding inside the id-level hot loop."""


def _group_by_ids(events, symbols, interner, route_path_tokens):
    groups = {}
    for event in events:
        chain = route_path_tokens(
            event.peer, event.prefix, event.attributes
        )
        ids = tuple(interner.intern(tok) for tok in chain)
        key = symbols.token(ids[-1])
        groups.setdefault(key, []).append(ids)
    return groups


def animate_stream(stream, graph):
    frames = []
    for event in stream:
        for eid in graph.event_ids(event):
            frames.append(graph.decode_pair(eid))
    return frames
