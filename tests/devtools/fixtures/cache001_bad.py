"""CACHE001 violation: a TampGraph mutator that skips the hook."""


class TampGraph:
    def __init__(self):
        self._edges = {}
        self._children = {}
        self._parents = {}
        self._total = None

    def _invalidate_cache(self):
        self._total = None

    def add_edge(self, edge, prefixes):
        self._edges[edge] = prefixes

    def drop_edge(self, edge):
        self._edges.pop(edge, None)

    def weight(self, edge):
        return len(self._edges.get(edge, ()))
