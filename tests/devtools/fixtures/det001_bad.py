"""DET001 violations: unseeded entropy / clock reads.

Analyzed by the tests *as if* it lived in an algorithm package
(``module="repro.stemming.fixture"``); never imported.
"""

import random
import time
from datetime import datetime
from random import choice


def jitter() -> float:
    return random.random() + random.uniform(0.0, 1.0)


def pick(items):
    return choice(items)


def stamp() -> float:
    return time.time()


def label() -> str:
    return datetime.now().isoformat()
