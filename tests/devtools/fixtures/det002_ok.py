"""DET002 known-good: sorted wrappers and order-insensitive sinks."""


def join_sorted(tokens) -> str:
    return ",".join(sorted(set(tokens)))


def total(table: dict) -> int:
    return sum(table.values())


def biggest(table: dict) -> int:
    return max(table.values())


def as_set(tokens) -> set:
    return {t for t in set(tokens)}


def sorted_comp(table: dict) -> list:
    return sorted([value for value in table.values()])


def membership_loop(tokens) -> int:
    hits = 0
    for token in set(tokens):
        if token:
            hits += 1
    return hits
