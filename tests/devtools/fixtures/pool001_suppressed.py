"""POOL001 violation carrying a justified suppression."""

from repro.perf import map_shards


def run_lambda(shards):
    # repro: allow[POOL001] fixture: serial-only path, never forked.
    return map_shards(lambda shard: shard * 2, shards, 1)
