"""INC001 violations: status written behind the state machine's back."""

import sqlite3

from repro.incidents.lifecycle import IncidentRecord


def force_resolve(record: IncidentRecord, at: float) -> None:
    record.status = "resolved"
    record.resolved_at = at


def patch_row(row: dict) -> None:
    row["status"] = "open"


def close_in_db(conn: sqlite3.Connection, incident_id: int) -> None:
    conn.execute(
        "UPDATE incidents SET status = 'resolved' WHERE id = ?",
        (incident_id,),
    )
