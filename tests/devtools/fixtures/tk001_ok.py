"""Seed-disciplined injectors: everything TK001 should leave alone."""

import random


def drop_some(items: list[int], *, rate: float = 0.1, seed: int) -> list[int]:
    rng = random.Random(seed)
    return [item for item in items if rng.random() >= rate]


def shuffle_records(records: list[int], *, seed: int) -> list[int]:
    rng = random.Random(seed)
    out = list(records)
    rng.shuffle(out)
    return out


def _derive(seed: int, index: int) -> int:
    # private helper: the seed arrives through the public entry points
    return random.Random(seed * 1000003 + index).randrange(2**32)
