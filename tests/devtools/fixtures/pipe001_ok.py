"""PIPE001-clean stages: state on the instance, constants read-only."""

from repro.pipeline.runtime import FunctionStage, Stage

_WINDOW = 300.0
_KINDS = ("announce", "withdraw")


class CountingStage(Stage):
    def __init__(self):
        super().__init__()
        self.seen = set()

    def process(self, item):
        if item in self.seen:
            return None
        self.seen.add(item)
        return (item,)


def tag_stage(item):
    return ((item, _WINDOW, _KINDS[0]),)


def plain_helper(items):
    # Not a stage: free functions may keep whatever state they like.
    cache = {}
    cache.update(enumerate(items))
    return cache


stage = FunctionStage(tag_stage)
