"""PIPE002 violations silenced by justified suppressions."""

from repro.pipeline.runtime import FunctionStage, Stage

_TRACE = []


def _trace(item):
    _TRACE.append(item)
    return item


class TracingStage(Stage):
    def process(self, item):
        # repro: allow[PIPE002] dev-only trace sink, stripped from the
        # monitor entry point.
        return _trace(item)


def build_probe():
    probe = []

    def stage_fn(item):
        probe.append(item)
        return item

    # repro: allow[PIPE002] probe stage used only in the REPL notebook.
    return FunctionStage(stage_fn)
