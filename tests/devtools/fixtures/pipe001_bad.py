"""PIPE001 violations: stages leaning on module-global mutable state."""

from collections import deque

from repro.pipeline.runtime import FunctionStage, Stage

_SEEN = set()
_CACHE: dict = {}
_RECENT = deque(maxlen=100)


class DedupStage(Stage):
    def process(self, item):
        global _CACHE
        if item in _SEEN:
            return None
        _SEEN.add(item)
        return (item,)


def count_stage(item):
    _RECENT.append(item)
    return (item,)


stage = FunctionStage(count_stage)
