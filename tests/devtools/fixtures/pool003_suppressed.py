"""POOL003 violation silenced by a justified suppression."""

from repro.perf.pool import map_shards

_STATS = {}


def _record(key):
    _STATS[key] = True


def shard(items):
    for item in items:
        # repro: allow[POOL003] debug-only counter, read by nothing the
        # equivalence tests compare.
        _record(item)
    return sorted(items)


def run(groups):
    return map_shards(shard, groups)
