"""INT003-clean: ids stay ids on the hot path; tokens stay cold."""

from repro.tamp.graph import merge_entries

from repro.stemming.counter import add_ids


def hot_on_ids(store, ids):
    # Parameters are id-level unless something decodes them.
    merge_entries(store, ids)


def decode_after_the_hot_call(table, store, ids):
    add_ids(store, ids)
    # Decoding for presentation, after the hot path, is the design.
    return [table.token(i) for i in ids]


def tokens_for_rendering_only(table, ids):
    labels = [table.prefix(i) for i in ids]
    return ", ".join(labels)
