"""POOL003-clean: shard helpers keep their state local."""

from repro.perf.pool import map_shards

_LIMIT = 64  # immutable module constant: reading it is fine


def _normalize(item):
    return min(item, _LIMIT)


def shard(items):
    seen = {}
    for item in items:
        seen[_normalize(item)] = True
    return sorted(seen)


def run(groups):
    return map_shards(shard, groups)
