"""TK001 violations carrying justified suppressions."""

import random


def soak_shuffle(items: list[int]) -> list[int]:
    # repro: allow[TK001] soak harness explicitly wants fresh entropy
    rng = random.Random()
    out = list(items)
    rng.shuffle(out)
    return out


def noise() -> float:
    return random.random()  # repro: allow[TK001] fixture justification
