"""INT002 known-good: hot functions stay on interned ids; tokens only
materialize in decode-boundary functions outside the hot set."""

PAIR_SHIFT = 32
PAIR_MASK = (1 << PAIR_SHIFT) - 1


def add_ids(pairs, ids):
    for a, b in zip(ids, ids[1:]):
        key = (a << PAIR_SHIFT) | b
        pairs[key] = pairs.get(key, 0) + 1


def _group_by_ids(events, memo):
    groups = {}
    for event in events:
        ids = memo[event.peer, event.prefix]
        groups.setdefault(ids[-1], []).append(ids)
    return groups


def top_pair_tokens(pairs, symbols):
    # Decode boundary: tokens may materialize here.
    best, best_count = None, -1
    for key, count in pairs.items():
        if count > best_count:
            best, best_count = key, count
    if best is None:
        return None
    return symbols.token(best >> PAIR_SHIFT), symbols.token(best & PAIR_MASK)
