"""INT002 violations carrying justified suppressions."""


def _group_by_ids(events, symbols, interner, route_path_tokens):
    groups = {}
    for event in events:
        # repro: allow[INT002] fixture: reference grouper re-renders
        # chains on purpose for the equivalence suite.
        chain = route_path_tokens(
            event.peer, event.prefix, event.attributes
        )
        ids = tuple(interner.intern(tok) for tok in chain)
        # repro: allow[INT002] fixture: reference keys groups by token.
        key = symbols.token(ids[-1])
        groups.setdefault(key, []).append(ids)
    return groups
