"""POOL001 known-good: module-level shard functions, bound or bare."""

from functools import partial

from repro.perf import map_shards


def _shard_fn(shard):
    return sorted(shard)


def run(shards, workers):
    return map_shards(_shard_fn, shards, workers)


def run_bound(shards, workers):
    bound = partial(_shard_fn)
    return map_shards(bound, shards, workers)
