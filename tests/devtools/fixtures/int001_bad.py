"""INT001 violations: object-level state in TAMP hot paths."""

Prefix = object


class TampTree:
    def __init__(self):
        self._edges = {}

    def add_route_group(self, prefixes, chain):
        column: set[Prefix] = set(prefixes)
        for parent, child in zip(chain, chain[1:]):
            edge = (parent, child)
            existing = self._edges.get(edge)
            if existing is None:
                self._edges[edge] = set(column)
            else:
                existing.update(column)


class TampGraph:
    def __init__(self):
        self._edges = {}
        self._total = None

    def _invalidate_cache(self):
        self._total = None

    def merge_tree(self, tree):
        self._invalidate_cache()
        for parent, child, prefixes in tree:
            self._edges[(parent, child)] = set(prefixes)
