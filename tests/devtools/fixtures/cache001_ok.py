"""CACHE001 known-good: every mutator reaches the hook."""


class TampGraph:
    def __init__(self):
        self._edges = {}
        self._total = None

    def _invalidate_cache(self):
        self._total = None

    def add_edge(self, edge, prefixes):
        self._edges[edge] = prefixes
        self._invalidate_cache()

    def drop_edge(self, edge):
        self._edges.pop(edge, None)
        self._invalidate_cache()

    def weight(self, edge):
        return len(self._edges.get(edge, ()))
