"""DET003 violations carrying justified suppressions."""


def key_by_identity(objects) -> dict:
    # repro: allow[DET003] fixture: within-pass identity, never output.
    return {id(obj): obj for obj in objects}


def order_by_address(objects) -> list:
    return sorted(objects, key=id)  # repro: allow[DET003] fixture
