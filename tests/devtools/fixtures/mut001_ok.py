"""MUT001 known-good: None defaults, immutable defaults."""


def accumulate(item, bucket=None):
    if bucket is None:
        bucket = []
    bucket.append(item)
    return bucket


def window(size=10, anchor=(0, 0), label=""):
    return size, anchor, label
