"""MUT001 violation carrying a justified suppression."""


def accumulate(item, bucket=[]):  # repro: allow[MUT001] fixture
    bucket.append(item)
    return bucket
