"""DET002 violations: unordered iteration escaping into ordered output."""


def join_set(tokens) -> str:
    return ",".join(str(t) for t in set(tokens))


def listify(table: dict) -> list:
    return list(table.values())


def comp(table: dict) -> list:
    return [value * 2 for value in table.values()]


def loop(tokens) -> list:
    out = []
    for token in {t.lower() for t in tokens}:
        out.append(token)
    return out
