"""DET002 violations carrying justified suppressions (both styles)."""


def listify(table: dict) -> list:
    return list(table.values())  # repro: allow[DET002] insertion order ok


def loop(tokens) -> list:
    out = []
    # repro: allow[DET002] fixture: consumer is order-insensitive.
    for token in {t.lower() for t in tokens}:
        out.append(token)
    return out
