"""CACHE001 violation carrying a justified suppression."""


class TampGraph:
    def __init__(self):
        self._edges = {}
        self._total = None

    def _invalidate_cache(self):
        self._total = None

    # repro: allow[CACHE001] fixture: edge payloads mutate, membership
    # cannot change here.
    def annotate_edge(self, edge, note):
        self._edges[edge] = note
