"""INC001-clean: every status change rides the state-machine API."""

from repro.incidents.lifecycle import (
    IncidentRecord,
    IncidentStatus,
    transition,
)


def force_resolve(record: IncidentRecord, at: float) -> None:
    transition(record, IncidentStatus.RESOLVED, at, "operator close")


def describe(record: IncidentRecord) -> str:
    # Reading status is fine; only writes need the API.
    if record.status is IncidentStatus.RESOLVED:
        return "done"
    return record.status.value


def count_resolved(rows: list[dict]) -> int:
    # Reads of a status column/key are equally fine.
    return sum(1 for row in rows if row["status"] == "resolved")
