"""INT001 violations carrying justified suppressions."""

Prefix = object


class TampTree:
    def __init__(self):
        self._edges = {}

    def add_route_group(self, prefixes, chain):
        # repro: allow[INT001] fixture: reference builder keeps the
        # object-set column on purpose.
        column: set[Prefix] = set(prefixes)
        for parent, child in zip(chain, chain[1:]):
            # repro: allow[INT001] fixture: token-tuple key preserved
            # for equivalence testing.
            edge = (parent, child)
            existing = self._edges.get(edge)
            if existing is None:
                self._edges[edge] = set(column)
            else:
                existing.update(column)


class TampGraph:
    def __init__(self):
        self._edges = {}
        self._total = None

    def _invalidate_cache(self):
        self._total = None

    def merge_tree(self, tree):
        self._invalidate_cache()
        for parent, child, prefixes in tree:
            # repro: allow[INT001] fixture: reference merge stays on
            # token tuples.
            self._edges[(parent, child)] = set(prefixes)
