"""PIPE001 violations carrying justified suppressions."""

from repro.pipeline.runtime import FunctionStage, Stage

_SEEN = set()
_CACHE: dict = {}


class DedupStage(Stage):
    def process(self, item):
        # repro: allow[PIPE001] fixture: process-wide dedup is the point.
        if item in _SEEN:
            return None
        # repro: allow[PIPE001] fixture: process-wide dedup is the point.
        _SEEN.add(item)
        return (item,)


def count_stage(item):
    # repro: allow[PIPE001] fixture: warm-cache only, never read back.
    _CACHE[item] = _CACHE.get(item, 0) + 1
    return (item,)


stage = FunctionStage(count_stage)
