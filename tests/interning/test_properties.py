"""Property-based guarantees for the interning layer.

Two families:

* **IdSet/MaskIdSet vs set[Prefix]**: an id-level set driven through a
  random op sequence must decode to exactly the prefix set a plain
  ``set[Prefix]`` model produces under the same ops — the backends are
  interchangeable and neither drops, duplicates nor invents members.
* **SymbolTable round trip**: encode → decode is the identity for any
  mix of tokens and prefixes; token ids are dense in first-appearance
  order; prefix ids are value-derived (every table computes the same
  id, injectively); and a shard-join token remap preserves what every
  id decodes to.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.interning import (
    IdSet,
    MaskIdSet,
    SymbolTable,
    pack_prefix,
    unpack_edge,
    unpack_prefix,
)
from repro.net.prefix import Prefix

# Bounded id universe keeps MaskIdSet masks small and collisions (the
# interesting cases: re-add, discard-of-member) frequent.
ids = st.integers(0, 127)


def prefixes() -> st.SearchStrategy[Prefix]:
    def build(raw: int, length: int) -> Prefix:
        mask = 0 if length == 0 else (
            (0xFFFFFFFF << (32 - length)) & 0xFFFFFFFF
        )
        return Prefix(raw & mask, length)

    return st.builds(
        build, st.integers(0, 0xFFFFFFFF), st.integers(0, 32)
    )


def tokens() -> st.SearchStrategy[tuple]:
    return st.one_of(
        st.tuples(st.just("router"), st.text(max_size=8)),
        st.tuples(st.just("nh"), st.integers(0, 0xFFFFFFFF)),
        st.tuples(st.just("as"), st.integers(1, 0xFFFFFFFF)),
        st.tuples(st.just("root"), st.text(max_size=8)),
    )


#: One random mutation: ("add", id), ("discard", id) or ("union", ids).
operations = st.lists(
    st.one_of(
        st.tuples(st.just("add"), ids),
        st.tuples(st.just("discard"), ids),
        st.tuples(st.just("union"), st.lists(ids, max_size=8)),
    ),
    max_size=40,
)


@given(operations)
def test_idset_backends_match_set_model(ops):
    model: set = set()
    plain = IdSet()
    masked = MaskIdSet()
    for op, arg in ops:
        if op == "add":
            model.add(arg)
            plain.add(arg)
            masked.add(arg)
        elif op == "discard":
            model.discard(arg)
            plain.discard(arg)
            masked.discard(arg)
        else:
            model.update(arg)
            plain.update(arg)
            masked.update(arg)
        # Membership, count and iteration agree after every step.
        assert set(plain) == model
        assert set(masked) == model
        assert plain.count() == masked.count() == len(model)
        assert all(member in masked for member in model)
    # The backends agree with each other and across the mask codec.
    assert masked == plain
    assert plain.mask() == masked.mask()
    assert set(IdSet.from_mask(plain.mask())) == model
    assert set(MaskIdSet.from_mask(masked.mask())) == model


@given(operations, operations)
def test_idset_union_of_built_sets(ops_a, ops_b):
    def run(ops, target):
        for op, arg in ops:
            if op == "add":
                target.add(arg)
            elif op == "discard":
                target.discard(arg)
            else:
                target.update(arg)
        return target

    model = run(ops_a, set()) | run(ops_b, set())
    plain = run(ops_a, IdSet())
    plain.update(run(ops_b, IdSet()))
    masked = run(ops_a, MaskIdSet())
    masked.union_update(run(ops_b, MaskIdSet()))
    assert set(plain) == set(masked) == model


@given(st.lists(prefixes(), max_size=30))
def test_idset_decodes_to_prefix_set(prefix_list):
    """Interned adds decode back to exactly the set[Prefix] model.

    Only the hash-backed :class:`IdSet` sees real prefix ids: packed
    ids are wide (length in the high bits), so the bitmask backend —
    which allocates one bit per id *value* — is for dense synthetic id
    universes only.
    """
    table = SymbolTable()
    model: set = set()
    plain = IdSet()
    for prefix in prefix_list:
        model.add(prefix)
        plain.add(table.intern_prefix(prefix))
    assert {table.prefix(pid) for pid in plain} == model
    assert plain.count() == len(model)


@given(st.lists(tokens(), max_size=30), st.lists(prefixes(), max_size=30))
def test_symbol_table_round_trip(token_list, prefix_list):
    table = SymbolTable()
    tids = [table.intern_token(token) for token in token_list]
    pids = [table.intern_prefix(prefix) for prefix in prefix_list]
    # Identity: decode inverts encode, and re-interning is stable.
    for token, tid in zip(token_list, tids):
        assert table.token(tid) == token
        assert table.intern_token(token) == tid
        assert table.token_id(token) == tid
    for prefix, pid in zip(prefix_list, pids):
        assert table.prefix(pid) == prefix
        assert table.intern_prefix(prefix) == pid
        assert table.prefix_id(prefix) == pid
        # Value-derived: the module-level codec agrees with the table
        # and inverts exactly.
        assert pack_prefix(prefix) == pid
        assert unpack_prefix(pid) == prefix
    # Token-id density: ids cover 0..n-1 in first-appearance order.
    assert sorted(set(tids)) == list(range(table.token_count))
    # Prefix-id injectivity: distinct prefixes, distinct ids.
    assert len(set(pids)) == len(set(prefix_list))
    first_seen: list = []
    for token in token_list:
        if token not in first_seen:
            first_seen.append(token)
    assert [table.token(i) for i in range(table.token_count)] == first_seen


@given(st.lists(tokens(), min_size=1, max_size=20))
def test_symbol_table_edges_round_trip(token_list):
    table = SymbolTable()
    tids = [table.intern_token(token) for token in token_list]
    for parent, child in zip(tids, tids[1:]):
        from repro.interning import pack_edge

        eid = pack_edge(parent, child)
        assert unpack_edge(eid) == (parent, child)
        assert table.decode_edge(eid) == (
            table.token(parent),
            table.token(child),
        )


@given(
    st.lists(tokens(), max_size=20),
    st.lists(tokens(), max_size=20),
)
def test_remap_preserves_decoding(tokens_a, tokens_b):
    """A shard join must not change what any shard token id decodes to."""
    parent = SymbolTable()
    for token in tokens_a:
        parent.intern_token(token)
    shard = SymbolTable()
    for token in tokens_b:
        shard.intern_token(token)
    token_map = parent.remap_tokens(shard)
    assert len(token_map) == shard.token_count
    for old in range(shard.token_count):
        assert parent.token(token_map[old]) == shard.token(old)


@given(st.lists(prefixes(), max_size=20))
def test_prefix_ids_agree_across_tables(prefix_list):
    """Every table computes identical ids — the shard-join guarantee
    that lets refcount stores merge key-for-key with no prefix remap."""
    table_a = SymbolTable()
    table_b = SymbolTable()
    for prefix in prefix_list:
        pid = table_a.intern_prefix(prefix)
        assert table_b.intern_prefix(prefix) == pid
        assert table_b.prefix(pid) == table_a.prefix(pid) == prefix
