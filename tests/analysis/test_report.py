"""Unit tests for the diagnosis pipeline."""

from repro.analysis.report import diagnose
from repro.collector.stream import EventStream
from repro.stemming.stemmer import Stemmer
from tests.stemming.test_stemmer import mk_event, spike


class TestDiagnose:
    def test_report_answers_the_three_questions(self):
        stream = EventStream(spike("100 200 300", 30))
        report = diagnose(stream)
        text = report.to_text()
        # What happened: a correlated component.
        assert "components" in text
        # Where: the stem location.
        assert "AS200--AS300" in report.headline
        # How big: events and prefixes quantified.
        assert "30" in report.headline

    def test_empty_stream(self):
        report = diagnose(EventStream())
        assert report.headline == "no correlated components found"
        assert report.picture == ""

    def test_custom_stemmer_forwarded(self):
        stream = EventStream(spike("100 200 300", 10))
        report = diagnose(stream, stemmer=Stemmer(max_components=1))
        assert len(report.stemming.components) <= 1

    def test_picture_drawn_for_announcement_components(self):
        from repro.collector.events import EventKind

        events = [
            mk_event(
                float(i), "1.1.1.1", "2.2.2.2", "100 200",
                f"10.0.{i}.0/24", EventKind.ANNOUNCE,
            )
            for i in range(10)
        ]
        report = diagnose(EventStream(events))
        assert "AS100" in report.picture

    def test_picture_for_pure_withdrawal_component(self):
        """Withdrawal-only incidents must still draw what was lost."""
        stream = EventStream(spike("100 200 300", 12))
        report = diagnose(stream)
        assert "AS200" in report.picture

    def test_rate_series_sized_to_stream(self):
        stream = EventStream(spike("100 200 300", 20))
        report = diagnose(stream, rate_bin_seconds=5.0)
        assert report.rates.bin_seconds == 5.0
        assert sum(report.rates.counts) == 20


class TestIntegratedDiagnosis:
    """diagnose() with configs and IGP topology supplied (Section III-D)."""

    def _config(self):
        from repro.config.compiler import compile_config
        from repro.config.parser import parse_config

        return compile_config(
            parse_config(
                """\
hostname test-router
route-map IMPORT permit 10
 set local-preference 100
router bgp 25
 neighbor 2.2.2.2 remote-as 100
 neighbor 2.2.2.2 route-map IMPORT in
"""
            )
        )

    def _igp(self):
        from repro.igp.topology import IGPTopology
        from repro.net.prefix import parse_address

        topo = IGPTopology()
        topo.add_router("border", addresses=[parse_address("2.2.2.2")])
        topo.add_router("core")
        topo.add_link("border", "core", 10, now=0.0)
        return topo

    def test_policy_notes_attached(self):
        stream = EventStream(spike("100 200 300", 10))
        report = diagnose(stream, configs=[self._config()])
        assert report.policy_notes
        assert "policy correlation" in report.to_text()

    def test_igp_notes_attached(self):
        igp = self._igp()
        # An interior change just before the BGP fallout window.
        igp.set_metric("border", "core", 99, now=-5.0)
        stream = EventStream(spike("100 200 300", 10))
        report = diagnose(stream, igp=igp)
        assert report.igp_notes
        assert report.igp_notes[0].is_igp_rooted
        assert "IGP drill-down" in report.to_text()

    def test_without_integrations_no_notes(self):
        stream = EventStream(spike("100 200 300", 10))
        report = diagnose(stream)
        assert report.policy_notes == ()
        assert report.igp_notes == ()
