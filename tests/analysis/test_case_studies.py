"""All six Section IV case studies must be detected end to end."""

import pytest

from repro.analysis.case_studies import (
    run_backdoor_routes,
    run_community_mistag,
    run_customer_flap,
    run_load_balance_check,
    run_med_oscillation,
    run_route_leak,
)
from repro.simulator.workloads import BerkeleySite, IspAnonSite


@pytest.fixture
def berkeley():
    return BerkeleySite(n_prefixes=200)


class TestBerkeleyCaseStudies:
    def test_load_balance(self, berkeley):
        result = run_load_balance_check(berkeley)
        assert result.detected
        assert result.measured["share_66"] == pytest.approx(0.78, abs=0.03)
        assert result.measured["share_70"] == pytest.approx(0.05, abs=0.02)

    def test_backdoor(self, berkeley):
        result = run_backdoor_routes(berkeley)
        assert result.detected
        assert result.measured["backdoor_prefixes"] == 2
        assert not result.measured["visible_flat"]
        assert result.measured["visible_hierarchical"]

    def test_community_mistag(self, berkeley):
        result = run_community_mistag(berkeley)
        assert result.detected
        assert result.measured["kddi"] == pytest.approx(0.68, abs=0.05)
        assert result.measured["los_nettos"] == pytest.approx(0.32, abs=0.05)

    def test_route_leak(self, berkeley):
        result = run_route_leak(berkeley, cycles=1)
        assert result.detected
        assert result.measured["moved_prefixes"] > 0


class TestIspCaseStudies:
    def test_customer_flap(self):
        isp = IspAnonSite(n_reflectors=4, n_prefixes=150)
        result = run_customer_flap(isp, flap_count=6)
        assert result.detected
        assert result.measured["events_per_flap"] >= 4

    def test_med_oscillation(self):
        result = run_med_oscillation(flap_count=40)
        assert result.detected
        assert result.measured["prefixes"] == 1


class TestWarStoryRunners:
    def test_full_table_hijack(self):
        from repro.analysis.case_studies import run_full_table_hijack

        result = run_full_table_hijack()
        assert result.detected
        assert result.measured["hijacked_prefixes"] == 200

    def test_max_prefix_leak(self):
        from repro.analysis.case_studies import run_max_prefix_leak
        from repro.simulator.workloads import BerkeleySite

        result = run_max_prefix_leak(BerkeleySite(n_prefixes=150))
        assert result.detected
        assert result.measured["leaked"] > result.measured["limit"]


class TestRunAll:
    def test_every_case_study_detected(self):
        """The paper's whole Section IV (plus the Section I war stories)
        in one call — all detected."""
        from repro.analysis.case_studies import run_all
        from repro.simulator.workloads import IspAnonSite

        results = run_all(
            site=BerkeleySite(n_prefixes=150),
            isp=IspAnonSite(n_reflectors=4, n_prefixes=120),
        )
        assert len(results) == 8
        failures = [r.name for r in results if not r.detected]
        assert failures == []
        # Every row renders.
        for result in results:
            assert result.name in result.row()


class TestResultFormatting:
    def test_row_format(self, berkeley):
        result = run_load_balance_check(berkeley)
        row = result.row()
        assert "DETECTED" in row
        assert "share_66" in row
