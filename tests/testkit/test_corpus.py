"""Golden malformed-MRT corpus: determinism and per-member behavior."""

import io

import pytest

from repro.mrt.ingest import IngestPolicy
from repro.mrt.loader import load_updates
from repro.mrt.records import MRTError, write_records
from repro.testkit.corpus import (
    GOLDEN_SEED,
    build_clean_records,
    corpus_manifest,
    generate_corpus,
)

#: Members whose damage breaks individual record decodes (not framing).
DECODE_BREAKING = ("flipped-attrs", "corrupt-payloads", "bad-marker",
                   "bad-afi")

#: Members that cut the archive itself short.
FRAMING_BREAKING = ("truncated-tail", "truncated-header")


@pytest.fixture(scope="module")
def corpus(tmp_path_factory):
    directory = tmp_path_factory.mktemp("corpus")
    return generate_corpus(directory)


class TestDeterminism:
    def test_regeneration_is_bit_identical(self, corpus, tmp_path):
        again = generate_corpus(tmp_path / "again")
        first = corpus_manifest(next(iter(corpus.values())).parent)
        second = corpus_manifest(tmp_path / "again")
        assert first == second
        assert set(first) == set(corpus)

    def test_different_seed_different_corpus(self, corpus, tmp_path):
        other = generate_corpus(tmp_path / "other", seed=GOLDEN_SEED + 1)
        assert corpus_manifest(
            next(iter(corpus.values())).parent
        ) != corpus_manifest(tmp_path / "other")

    def test_clean_records_are_deterministic(self):
        a = build_clean_records()
        b = build_clean_records()
        assert [(r.timestamp, r.payload) for r in a] == [
            (r.timestamp, r.payload) for r in b
        ]

    def test_clean_records_decode_fully(self):
        buffer = io.BytesIO()
        write_records(build_clean_records(), buffer)
        buffer.seek(0)
        stream = load_updates(buffer)
        report = stream.ingest_report
        assert report.ok
        assert report.records_skipped == 0
        assert report.records_decoded == 60
        assert stream.withdraw_count() > 0  # lifecycles present


class TestMemberBehavior:
    def test_every_expected_member_exists(self, corpus):
        assert set(corpus) == {
            "clean", "truncated-tail", "truncated-header", "flipped-attrs",
            "corrupt-payloads", "duplicated", "dropped", "reordered",
            "bad-marker", "bad-afi",
        }

    def test_clean_member_is_clean(self, corpus):
        report = load_updates(corpus["clean"]).ingest_report
        assert report.ok and not report.suspicious

    @pytest.mark.parametrize("name", DECODE_BREAKING)
    def test_decode_breaking_members_are_counted(self, corpus, name):
        with pytest.warns(UserWarning):
            stream = load_updates(corpus[name])
        report = stream.ingest_report
        assert report.records_skipped > 0
        assert not report.ok
        assert report.error_counts
        # Nothing vanishes without accounting: every record read is
        # either ignored, decoded, or skipped — and every decoded
        # update's events are in the stream.
        assert report.records_read == (
            report.records_ignored
            + report.records_decoded
            + report.records_skipped
        )
        assert report.events_produced == len(stream)

    @pytest.mark.parametrize("name", FRAMING_BREAKING)
    def test_truncated_members_set_framing_error(self, corpus, name):
        report = load_updates(corpus[name]).ingest_report
        assert report.framing_error is not None
        assert not report.ok

    @pytest.mark.parametrize("name", DECODE_BREAKING)
    def test_strict_raises_on_decode_breaking_members(self, corpus, name):
        with pytest.raises((MRTError, ValueError)):
            load_updates(corpus[name], strict=True)

    @pytest.mark.parametrize("name", FRAMING_BREAKING)
    def test_strict_raises_on_truncated_members(self, corpus, name):
        with pytest.raises(MRTError):
            load_updates(corpus[name], strict=True)

    def test_dropped_member_reads_fewer_records(self, corpus):
        clean = load_updates(corpus["clean"]).ingest_report
        dropped = load_updates(corpus["dropped"]).ingest_report
        # A lossy feed decodes fine — the report still shows the
        # difference through its read count.
        assert dropped.records_skipped == 0
        assert dropped.records_read < clean.records_read

    def test_duplicated_member_reads_more_records(self, corpus):
        clean = load_updates(corpus["clean"]).ingest_report
        duplicated = load_updates(corpus["duplicated"]).ingest_report
        assert duplicated.records_read > clean.records_read

    def test_reordered_member_is_flagged(self, corpus):
        report = load_updates(corpus["reordered"]).ingest_report
        assert report.out_of_order_records > 0
        assert report.suspicious

    def test_error_budget_aborts_on_worst_member(self, corpus):
        from repro.mrt.ingest import IngestError

        policy = IngestPolicy(max_error_rate=0.05, min_records=10)
        with pytest.raises(IngestError) as exc_info:
            load_updates(corpus["corrupt-payloads"], policy=policy)
        assert exc_info.value.report.aborted
