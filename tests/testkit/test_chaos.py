"""Chaos suite: every fault class against a Berkeley-style demo stream.

The contract under test is the PR's acceptance bar: for every
registered fault class, either the detector pipeline produces
bit-identical output to the clean run, or the load's
:class:`~repro.mrt.ingest.IngestReport` explains the degradation. A
corrupted archive must never silently yield a shorter stream.
"""

import io
import warnings

import pytest

from repro.analysis.report import diagnose
from repro.collector.rex import RouteExplorer
from repro.mrt.ingest import IngestWarning
from repro.mrt.loader import dump_updates, load_updates
from repro.simulator.synthetic import (
    BERKELEY_PROFILE,
    populate_view,
    session_reset_events,
)
from repro.testkit.faults import (
    apply_plan_to_bytes,
    apply_plan_to_stream,
    fault_names,
)

#: One pinned seed per suite run: failures replay exactly.
CHAOS_SEED = 0xB16B00B5

#: Aggressive-enough parameters that every fault class actually bites
#: on a small archive.
CHAOS_PARAMS = {
    "truncate-bytes": {"keep_min": 0.4, "keep_max": 0.8},
    "flip-bytes": {"rate": 0.02},
    "truncate-records": {"keep_min": 0.4, "keep_max": 0.8},
    "corrupt-payloads": {"rate": 0.4, "byte_rate": 0.1},
    "flip-attrs": {"rate": 0.4, "flips": 2},
    "duplicate-records": {"rate": 0.3},
    "drop-records": {"rate": 0.3},
    "reorder-records": {"window": 6},
    "drop-events": {"rate": 0.3},
    "duplicate-events": {"rate": 0.3},
    "reorder-events": {"rate": 0.5, "max_shift": 4.0},
    # The loaded stream's surviving events sit in t=1030..1060 (the
    # reset's withdrawals precede any announcement and are dropped).
    "stall-burst": {"stall_start": 1035.0, "stall_seconds": 15.0},
}

FILE_FAULTS = sorted(fault_names("bytes") + fault_names("records"))
EVENT_FAULTS = fault_names("events")


def berkeley_archive() -> bytes:
    """The demo workload as MRT bytes: a session reset at a Berkeley-
    profile site, the paper's flagship incident."""
    rex = RouteExplorer()
    populate_view(rex, 400, BERKELEY_PROFILE, routes_per_prefix=1.5)
    stream = session_reset_events(
        rex, 0, start=1000.0, convergence_seconds=60.0
    )
    buffer = io.BytesIO()
    dump_updates(stream, buffer)
    return buffer.getvalue()


def quiet_load(data: bytes):
    """Load corrupted bytes, tolerating the (expected) skip warning."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", IngestWarning)
        return load_updates(io.BytesIO(data))


ARCHIVE = berkeley_archive()
BASELINE = quiet_load(ARCHIVE)
BASELINE_REPORT = BASELINE.ingest_report
BASELINE_DIAGNOSIS = diagnose(BASELINE).to_text()


def test_the_archive_is_deterministic():
    assert berkeley_archive() == ARCHIVE
    assert BASELINE_REPORT.ok


@pytest.mark.parametrize("name", FILE_FAULTS)
class TestFileLevelChaos:
    def _corrupted(self, name) -> bytes:
        return apply_plan_to_bytes(
            ARCHIVE, [(name, CHAOS_PARAMS[name])], seed=CHAOS_SEED
        )

    def test_identical_output_or_report_explains(self, name):
        stream = quiet_load(self._corrupted(name))
        report = stream.ingest_report
        identical = (
            stream.fingerprint() == BASELINE.fingerprint()
            and report.ok
        )
        explained = (
            not report.ok
            or report.records_read != BASELINE_REPORT.records_read
            or report.out_of_order_records > 0
            or report.dropped_withdrawals
            != BASELINE_REPORT.dropped_withdrawals
        )
        assert identical or explained, report.summary()

    def test_no_silent_shortening(self, name):
        """Everything read is accounted for; everything decoded is in
        the stream. A shorter stream always shows up in the report."""
        stream = quiet_load(self._corrupted(name))
        report = stream.ingest_report
        assert report.records_read == (
            report.records_ignored
            + report.records_decoded
            + report.records_skipped
        )
        assert report.events_produced == len(stream)
        if len(stream) < len(BASELINE):
            assert (
                not report.ok
                or report.records_read < BASELINE_REPORT.records_read
            ), report.summary()

    def test_detectors_survive_the_corruption(self, name):
        """Whatever decoded still drives a diagnosis — and the whole
        chain is deterministic from the chaos seed."""
        stream = quiet_load(self._corrupted(name))
        text = diagnose(stream).to_text()
        assert text
        again = quiet_load(self._corrupted(name))
        assert again.fingerprint() == stream.fingerprint()
        assert diagnose(again).to_text() == text


@pytest.mark.parametrize("name", EVENT_FAULTS)
class TestEventLevelChaos:
    def _skewed(self, name):
        return apply_plan_to_stream(
            BASELINE, [(name, CHAOS_PARAMS[name])], seed=CHAOS_SEED
        )

    def test_detectors_survive_collector_side_faults(self, name):
        skewed = self._skewed(name)
        text = diagnose(skewed).to_text()
        assert text

    def test_fault_is_replayable_from_its_seed(self, name):
        first = self._skewed(name)
        second = self._skewed(name)
        assert first.fingerprint() == second.fingerprint()
        assert diagnose(first).to_text() == diagnose(second).to_text()

    def test_fault_visibly_perturbs_the_stream(self, name):
        skewed = self._skewed(name)
        assert (
            skewed.fingerprint() != BASELINE.fingerprint()
            or len(skewed) != len(BASELINE)
        )
