"""Unit tests for the seeded fault injectors and plan machinery."""

import io

import pytest

from repro.collector.stream import EventStream
from repro.mrt.records import read_records, write_records
from repro.testkit.corpus import build_clean_records
from repro.testkit.faults import (
    FAULTS,
    apply_plan_to_bytes,
    apply_plan_to_stream,
    corrupt_file,
    corrupt_payloads,
    drop_events,
    drop_records,
    duplicate_events,
    duplicate_records,
    fault_names,
    flip_attribute_bytes,
    flip_bytes,
    parse_fault_spec,
    reorder_events,
    reorder_records,
    stall_then_burst,
    truncate_bytes,
    truncate_records,
)
from tests.collector.test_stream import event

RECORDS = build_clean_records(n_updates=30)


def records_bytes(records) -> bytes:
    buffer = io.BytesIO()
    write_records(records, buffer)
    return buffer.getvalue()


def stream_fixture() -> EventStream:
    return EventStream([event(float(t)) for t in range(20)])


#: Representative sample input per level, for registry-wide checks.
SAMPLE_BY_LEVEL = {
    "bytes": records_bytes(RECORDS),
    "records": RECORDS,
    "events": stream_fixture(),
}

#: Non-default parameters that make every fault's effect observable.
ACTIVE_PARAMS = {
    "flip-bytes": {"rate": 0.2},
    "corrupt-payloads": {"rate": 0.8, "byte_rate": 0.2},
    "flip-attrs": {"rate": 0.8},
    "duplicate-records": {"rate": 0.5},
    "drop-records": {"rate": 0.5},
    "drop-events": {"rate": 0.5},
    "duplicate-events": {"rate": 0.5},
    "reorder-events": {"rate": 0.9},
    "stall-burst": {"stall_start": 2.0, "stall_seconds": 10.0},
}


def materialize(value):
    """A comparable snapshot of bytes, record lists, or streams."""
    if isinstance(value, bytes):
        return value
    if isinstance(value, EventStream):
        return value.fingerprint()
    return [
        (r.timestamp, r.type, r.subtype, r.payload) for r in value
    ]


class TestRegistryDeterminism:
    @pytest.mark.parametrize("name", sorted(FAULTS))
    def test_same_seed_same_corruption(self, name):
        fault = FAULTS[name]
        sample = SAMPLE_BY_LEVEL[fault.level]
        params = ACTIVE_PARAMS.get(name, {})
        first = fault.func(sample, seed=1234, **params)
        second = fault.func(sample, seed=1234, **params)
        assert materialize(first) == materialize(second)

    @pytest.mark.parametrize(
        "name",
        # stall-burst is seed-independent by design (pure time skew).
        sorted(set(FAULTS) - {"stall-burst"}),
    )
    def test_different_seed_different_corruption(self, name):
        fault = FAULTS[name]
        sample = SAMPLE_BY_LEVEL[fault.level]
        params = ACTIVE_PARAMS.get(name, {})
        outputs = {
            bytes(str(materialize(fault.func(sample, seed=s, **params))),
                  "utf-8")
            for s in range(8)
        }
        assert len(outputs) > 1

    @pytest.mark.parametrize("name", sorted(FAULTS))
    def test_inputs_never_mutated(self, name):
        fault = FAULTS[name]
        sample = SAMPLE_BY_LEVEL[fault.level]
        before = materialize(sample)
        fault.func(sample, seed=99, **ACTIVE_PARAMS.get(name, {}))
        assert materialize(sample) == before


class TestByteLevel:
    def test_truncate_bounds(self):
        data = records_bytes(RECORDS)
        out = truncate_bytes(data, keep_min=0.4, keep_max=0.6, seed=3)
        assert int(len(data) * 0.4) <= len(out) <= int(len(data) * 0.6)

    def test_truncate_rejects_bad_fractions(self):
        with pytest.raises(ValueError):
            truncate_bytes(b"xx", keep_min=0.9, keep_max=0.2, seed=1)

    def test_flip_rate_zero_is_identity(self):
        data = records_bytes(RECORDS)
        assert flip_bytes(data, rate=0.0, seed=5) == data

    def test_flip_respects_start(self):
        data = bytes(64)
        out = flip_bytes(data, rate=1.0, start=32, seed=5)
        assert out[:32] == data[:32]
        assert out[32:] != data[32:]

    def test_flipped_bytes_always_change(self):
        # rate=1 with a nonzero mask: every byte must differ.
        data = bytes(range(64))
        out = flip_bytes(data, rate=1.0, seed=5)
        assert all(a != b for a, b in zip(data, out))


class TestRecordLevel:
    def test_truncate_records_is_a_prefix(self):
        out = truncate_records(RECORDS, seed=7)
        assert out == RECORDS[: len(out)]

    def test_corrupt_payloads_keeps_framing(self):
        out = corrupt_payloads(RECORDS, rate=0.9, byte_rate=0.2, seed=7)
        # Re-framing must survive: the damage is inside payloads only.
        assert len(list(read_records(io.BytesIO(records_bytes(out))))) == \
            len(RECORDS)

    def test_flip_attrs_spares_envelope_and_header(self):
        out = flip_attribute_bytes(RECORDS, rate=1.0, flips=3, seed=7)
        changed = 0
        for before, after in zip(RECORDS, out):
            assert after.payload[:41] == before.payload[:41]
            if after.payload != before.payload:
                changed += 1
        assert changed > 0

    def test_duplicates_are_in_place(self):
        out = duplicate_records(RECORDS, rate=0.5, seed=7)
        assert len(out) > len(RECORDS)
        # Clean records are all distinct, so collapsing consecutive
        # repeats must recover the original sequence exactly.
        deduped = [
            r for i, r in enumerate(out) if i == 0 or out[i - 1] != r
        ]
        assert deduped == list(RECORDS)

    def test_drop_keeps_relative_order(self):
        out = drop_records(RECORDS, rate=0.5, seed=7)
        assert 0 < len(out) < len(RECORDS)
        it = iter(RECORDS)
        for record in out:  # subsequence check
            for candidate in it:
                if candidate == record:
                    break
            else:
                pytest.fail("dropped output is not a subsequence")

    def test_reorder_is_bounded(self):
        window = 5
        out = reorder_records(RECORDS, window=window, seed=7)
        assert sorted(r.timestamp for r in out) == [
            r.timestamp for r in RECORDS
        ]
        home = {id(r): i for i, r in enumerate(RECORDS)}
        for position, record in enumerate(out):
            assert abs(home[id(record)] - position) < window

    def test_reorder_rejects_tiny_window(self):
        with pytest.raises(ValueError):
            reorder_records(RECORDS, window=1, seed=7)


class TestEventLevel:
    def test_drop_and_duplicate_counts(self):
        stream = stream_fixture()
        assert len(drop_events(stream, rate=0.5, seed=3)) < len(stream)
        assert len(duplicate_events(stream, rate=0.5, seed=3)) > len(stream)

    def test_reorder_events_shifts_timestamps(self):
        stream = stream_fixture()
        out = reorder_events(stream, rate=1.0, max_shift=3.0, seed=3)
        assert len(out) == len(stream)
        assert {e.timestamp for e in out} != {e.timestamp for e in stream}

    def test_stall_then_burst_collapses_the_window(self):
        stream = stream_fixture()
        out = stall_then_burst(
            stream, stall_start=5.0, stall_seconds=10.0, seed=0
        )
        at_end = [e for e in out if e.timestamp == 15.0]
        # 10 stalled events (t=5..14) plus the original t=15 event.
        assert len(at_end) == 11
        assert len(out) == len(stream)
        assert not [e for e in out if 5.0 <= e.timestamp < 15.0]

    def test_stall_rejects_nonpositive_window(self):
        with pytest.raises(ValueError):
            stall_then_burst(
                stream_fixture(), stall_start=1.0, stall_seconds=0.0, seed=0
            )


class TestSpecsAndPlans:
    def test_parse_plain_name(self):
        assert parse_fault_spec("drop-records") == ("drop-records", {})

    def test_parse_parameters_int_and_float(self):
        name, params = parse_fault_spec("flip-attrs:rate=0.3,flips=4")
        assert name == "flip-attrs"
        assert params == {"rate": 0.3, "flips": 4}
        assert isinstance(params["flips"], int)

    def test_parse_unknown_fault(self):
        with pytest.raises(ValueError, match="unknown fault"):
            parse_fault_spec("melt-cpu")

    def test_parse_unknown_parameter(self):
        with pytest.raises(ValueError, match="takes"):
            parse_fault_spec("drop-records:severity=11")

    def test_parse_malformed_parameter(self):
        with pytest.raises(ValueError, match="want k=v"):
            parse_fault_spec("drop-records:rate")

    def test_fault_names_filter_by_level(self):
        assert "flip-bytes" in fault_names("bytes")
        assert "flip-bytes" not in fault_names("events")
        assert fault_names() == sorted(FAULTS)

    def test_plan_composition_is_deterministic(self):
        data = records_bytes(RECORDS)
        plan = [
            ("flip-attrs", {"rate": 0.5}),
            ("drop-records", {"rate": 0.2}),
            ("truncate-bytes", {"keep_min": 0.5, "keep_max": 0.9}),
        ]
        assert apply_plan_to_bytes(data, plan, seed=42) == \
            apply_plan_to_bytes(data, plan, seed=42)
        assert apply_plan_to_bytes(data, plan, seed=42) != \
            apply_plan_to_bytes(data, plan, seed=43)

    def test_plan_steps_get_distinct_seeds(self):
        # The same fault twice in one plan must corrupt differently.
        data = records_bytes(RECORDS)
        once = apply_plan_to_bytes(
            data, [("flip-attrs", {"rate": 0.5})], seed=42
        )
        twice = apply_plan_to_bytes(
            data,
            [("flip-attrs", {"rate": 0.5}), ("flip-attrs", {"rate": 0.5})],
            seed=42,
        )
        assert twice != once

    def test_event_fault_rejected_at_byte_level(self):
        with pytest.raises(ValueError, match="operates on events"):
            apply_plan_to_bytes(b"", [("drop-events", {})], seed=1)

    def test_record_fault_rejected_at_stream_level(self):
        with pytest.raises(ValueError, match="apply_plan_to_bytes"):
            apply_plan_to_stream(
                stream_fixture(), [("drop-records", {})], seed=1
            )

    def test_stream_plan_applies_in_order(self):
        stream = stream_fixture()
        out = apply_plan_to_stream(
            stream,
            [
                ("stall-burst", {"stall_start": 0.0, "stall_seconds": 5.0}),
                ("drop-events", {"rate": 0.3}),
            ],
            seed=11,
        )
        assert isinstance(out, EventStream)
        assert len(out) < len(stream)
        assert not [e for e in out if 0.0 <= e.timestamp < 5.0]


class TestCorruptFile:
    def test_round_trip_and_stats(self, tmp_path):
        source = tmp_path / "clean.mrt"
        source.write_bytes(records_bytes(RECORDS))
        destination = tmp_path / "broken.mrt"
        stats = corrupt_file(
            source, destination,
            [("drop-records", {"rate": 0.3})], seed=9,
        )
        assert destination.exists()
        assert stats["bytes_in"] == len(source.read_bytes())
        assert stats["bytes_out"] == len(destination.read_bytes())
        assert stats["bytes_out"] < stats["bytes_in"]

    def test_same_seed_reproduces_the_file(self, tmp_path):
        source = tmp_path / "clean.mrt"
        source.write_bytes(records_bytes(RECORDS))
        a, b = tmp_path / "a.mrt", tmp_path / "b.mrt"
        plan = [("corrupt-payloads", {"rate": 0.5})]
        corrupt_file(source, a, plan, seed=77)
        corrupt_file(source, b, plan, seed=77)
        assert a.read_bytes() == b.read_bytes()
