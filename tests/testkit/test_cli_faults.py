"""CLI tests for ``repro faults`` and the ingest policy flags."""

import io
import warnings

import pytest

from repro.cli import main
from repro.mrt.ingest import IngestWarning
from repro.mrt.records import write_records
from repro.testkit.corpus import build_clean_records


@pytest.fixture()
def clean_archive(tmp_path):
    path = tmp_path / "clean.mrt"
    buffer = io.BytesIO()
    write_records(build_clean_records(n_updates=40), buffer)
    path.write_bytes(buffer.getvalue())
    return path


class TestFaultsSubcommand:
    def test_list_faults(self, capsys):
        assert main(["faults", "--list-faults"]) == 0
        out = capsys.readouterr().out
        assert "flip-attrs" in out
        assert "stall-burst" in out
        assert "[records]" in out or "records" in out

    def test_make_corpus(self, tmp_path, capsys):
        target = tmp_path / "corpus"
        assert main(["faults", "--make-corpus", str(target)]) == 0
        assert (target / "clean.mrt").exists()
        assert (target / "bad-afi.mrt").exists()
        assert "wrote" in capsys.readouterr().out

    def test_corrupt_writes_output(self, clean_archive, tmp_path, capsys):
        out_path = tmp_path / "broken.mrt"
        code = main([
            "faults", str(clean_archive), "-o", str(out_path),
            "--fault", "flip-attrs:rate=0.5", "--seed", "7",
        ])
        assert code == 0
        assert out_path.exists()
        assert "seed 7" in capsys.readouterr().out

    def test_corrupt_is_replayable(self, clean_archive, tmp_path):
        a, b = tmp_path / "a.mrt", tmp_path / "b.mrt"
        argv = ["--fault", "corrupt-payloads:rate=0.5", "--seed", "21"]
        assert main(
            ["faults", str(clean_archive), "-o", str(a)] + argv
        ) == 0
        assert main(
            ["faults", str(clean_archive), "-o", str(b)] + argv
        ) == 0
        assert a.read_bytes() == b.read_bytes()

    def test_seed_is_required(self, clean_archive, tmp_path, capsys):
        code = main([
            "faults", str(clean_archive),
            "-o", str(tmp_path / "x.mrt"),
            "--fault", "drop-records",
        ])
        assert code == 2
        assert "--seed" in capsys.readouterr().err

    def test_fault_is_required(self, clean_archive, tmp_path, capsys):
        code = main([
            "faults", str(clean_archive),
            "-o", str(tmp_path / "x.mrt"), "--seed", "1",
        ])
        assert code == 2
        assert "--fault" in capsys.readouterr().err

    def test_input_and_output_required(self, capsys):
        assert main(["faults"]) == 2
        assert "INPUT" in capsys.readouterr().err

    def test_unknown_fault_reports_choices(self, clean_archive, tmp_path,
                                           capsys):
        code = main([
            "faults", str(clean_archive),
            "-o", str(tmp_path / "x.mrt"),
            "--fault", "melt-cpu", "--seed", "1",
        ])
        assert code == 1
        assert "unknown fault" in capsys.readouterr().err


class TestIngestFlags:
    def _corrupted(self, clean_archive, tmp_path):
        out_path = tmp_path / "broken.mrt"
        assert main([
            "faults", str(clean_archive), "-o", str(out_path),
            "--fault", "corrupt-payloads:rate=0.5,byte_rate=0.1",
            "--seed", "3",
        ]) == 0
        return out_path

    def test_lossy_load_prints_the_report(self, clean_archive, tmp_path,
                                          capsys):
        broken = self._corrupted(clean_archive, tmp_path)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", IngestWarning)
            assert main(["rate", str(broken)]) == 0
        err = capsys.readouterr().err
        assert "skipped" in err
        assert "errors:" in err

    def test_clean_load_stays_quiet(self, clean_archive, capsys):
        assert main(["rate", str(clean_archive)]) == 0
        assert "skipped" not in capsys.readouterr().err

    def test_strict_ingest_fails_fast(self, clean_archive, tmp_path,
                                      capsys):
        broken = self._corrupted(clean_archive, tmp_path)
        capsys.readouterr()
        assert main(["rate", str(broken), "--strict-ingest"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_max_error_rate_aborts(self, clean_archive, tmp_path, capsys):
        broken = self._corrupted(clean_archive, tmp_path)
        capsys.readouterr()
        code = main(["rate", str(broken), "--max-error-rate", "0.05"])
        assert code == 1
        assert "error budget" in capsys.readouterr().err
