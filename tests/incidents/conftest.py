"""Fabricated components and window reports for incident-unit tests.

The manager only reads a handful of fields off a report — ``end``,
``index``, and the ranked components — so these helpers build real
:class:`Component` / :class:`WindowReport` objects around a synthetic
event list instead of running the full pipeline. Stems use the ``as``
token namespace so ``format_stem`` renders them (``AS65001--AS65002``).
"""

from dataclasses import dataclass

from repro.pipeline.windows import WindowReport
from repro.stemming.stemmer import Component, StemmingResult


@dataclass(frozen=True)
class FakeEvent:
    """Just enough event surface for ``classify_component``."""

    is_withdrawal: bool


def make_component(
    rank: int,
    left: int,
    right: int,
    *,
    strength: int = 5,
    prefixes: tuple[str, ...] = ("10.0.0.0/24", "10.0.1.0/24"),
    withdrawals: int = 0,
    announcements: int = 8,
) -> Component:
    events = [FakeEvent(True)] * withdrawals + [
        FakeEvent(False)
    ] * announcements
    stem = (("as", left), ("as", right))
    return Component(
        rank=rank,
        subsequence=stem,
        strength=strength,
        stem=stem,
        prefixes=frozenset(prefixes),
        events=events,  # type: ignore[arg-type]
    )


def make_report(
    index: int,
    end: float,
    components: tuple[Component, ...] | list[Component],
    *,
    window: float = 120.0,
) -> WindowReport:
    result = StemmingResult(
        components=tuple(components),
        residual_events=0,
        total_events=sum(c.event_count for c in components),
    )
    return WindowReport(
        index=index,
        start=end - window,
        end=end,
        event_count=result.total_events,
        fingerprint=f"window-{index}",
        result=result,
    )
