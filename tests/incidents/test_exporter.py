"""Exporter tests: scrape-time derivation and registry integration."""

import pytest

from repro.incidents import (
    IncidentExporter,
    IncidentManager,
    IncidentPolicy,
)
from repro.pipeline import MetricsRegistry
from tests.incidents.conftest import make_component, make_report


def lived_in_manager() -> IncidentManager:
    """One live (2 windows), one resolved, one reopened incident."""
    m = IncidentManager(
        policy=IncidentPolicy(resolve_after=300.0, reopen_window=900.0)
    )
    m.ingest(
        make_report(
            0, 120.0,
            [
                make_component(1, 65001, 65002, prefixes=("10.0.0.0/24",)),
                make_component(2, 65003, 65004, prefixes=("10.1.0.0/24",)),
            ],
        )
    )
    # 65001 persists; 65003 goes quiet and resolves at 480.
    m.ingest(make_report(6, 480.0, [make_component(1, 65001, 65002, prefixes=("10.0.0.0/24",))]))
    # 65003 recurs inside the reopen window: resolved -> open again.
    m.ingest(make_report(9, 660.0, [make_component(1, 65003, 65004, prefixes=("10.1.0.0/24",))]))
    return m


class TestSnapshot:
    def test_counts_come_from_the_live_manager(self):
        manager = lived_in_manager()
        snapshot = IncidentExporter(manager).to_snapshot()
        assert snapshot["repro_incidents_total"] == manager.counts_by_status()
        assert snapshot["repro_incidents_created_total"] == 2
        assert snapshot["repro_incidents_reopened_total"] == 1
        # One resolve transition happened (later reopened) — lifetime
        # counters count transitions, not current states.
        assert snapshot["repro_incidents_resolved_total"] == 1
        assert snapshot["repro_incidents_stream_time"] == 660.0

    def test_age_histogram_covers_exactly_the_live_incidents(self):
        manager = lived_in_manager()
        snapshot = IncidentExporter(manager).to_snapshot()
        live = [r for r in manager.all_incidents() if not r.resolved]
        ages = snapshot["repro_incident_age_seconds"]
        assert ages["count"] == len(live) == 2
        # Ages measure against stream time (660), never the wall clock.
        assert ages["sum"] == pytest.approx(
            sum(660.0 - r.opened_at for r in live)
        )

    def test_ttr_histogram_covers_resolved_incidents(self):
        manager = lived_in_manager()
        manager.finalize()
        snapshot = IncidentExporter(manager).to_snapshot()
        ttr = snapshot["repro_incident_time_to_resolve_seconds"]
        assert ttr["count"] == 2
        assert snapshot["repro_incident_age_seconds"]["count"] == 0

    def test_class_breakdown_matches_the_manager(self):
        manager = lived_in_manager()
        snapshot = IncidentExporter(manager).to_snapshot()
        assert (
            snapshot["repro_incidents_by_class"]
            == manager.counts_by_class()
        )

    def test_an_empty_manager_exports_zeroes(self):
        snapshot = IncidentExporter(IncidentManager()).to_snapshot()
        assert snapshot["repro_incidents_created_total"] == 0
        assert sum(snapshot["repro_incidents_total"].values()) == 0
        assert snapshot["repro_incident_age_seconds"]["count"] == 0


class TestExposition:
    def test_render_text_is_prometheus_shaped(self):
        text = IncidentExporter(lived_in_manager()).render_text()
        assert '# TYPE repro_incidents_total gauge' in text
        assert 'repro_incidents_total{status="open"}' in text
        assert 'repro_incidents_total{status="investigating"}' in text
        assert 'repro_incidents_total{status="resolved"}' in text
        assert "repro_incidents_created_total 2" in text
        assert "repro_incidents_reopened_total 1" in text
        assert "# TYPE repro_incident_age_seconds histogram" in text
        assert (
            "# TYPE repro_incident_time_to_resolve_seconds histogram"
            in text
        )
        assert "repro_incidents_stream_time 660" in text

    def test_every_scrape_rederives_from_current_state(self):
        manager = lived_in_manager()
        exporter = IncidentExporter(manager)
        before = exporter.render_text()
        manager.finalize()
        after = exporter.render_text()
        assert before != after
        assert 'repro_incidents_total{status="resolved"} 2' in after


class TestRegistryIntegration:
    def test_collector_rides_both_exposition_surfaces(self):
        registry = MetricsRegistry()
        events = registry.counter("repro_pipeline_events_total")
        events.inc(5)
        registry.register_collector(IncidentExporter(lived_in_manager()))
        snapshot = registry.snapshot()
        assert snapshot["repro_incidents_created_total"] == 2
        text = registry.render_text()
        assert "repro_incidents_total" in text
        # Registered metrics keep rendering alongside the collector.
        assert "repro_pipeline_events_total 5" in text
        assert snapshot["repro_pipeline_events_total"] == 5

    def test_collectors_must_quack(self):
        registry = MetricsRegistry()
        with pytest.raises(TypeError):
            registry.register_collector(object())
