"""IncidentStore tests: sync atomicity, retention, crash recovery.

The chaos tests exercise the consistency model for real: one kills a
writer holding an open transaction (sqlite must roll back to the last
committed snapshot), the other hard-kills a live monitor process with
``os._exit`` and verifies the resume path reconciles the store to the
uninterrupted run's exact contents.
"""

import json
import os
import sqlite3
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.incidents import (
    INCIDENT_DB,
    IncidentManager,
    IncidentPolicy,
    IncidentStore,
    IncidentStoreError,
)
from tests.incidents.conftest import make_component, make_report

SRC_DIR = Path(repro.__file__).resolve().parents[1]


def subprocess_env() -> dict[str, str]:
    env = dict(os.environ)
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = (
        f"{SRC_DIR}{os.pathsep}{existing}" if existing else str(SRC_DIR)
    )
    return env


def evolved_manager() -> IncidentManager:
    m = IncidentManager(policy=IncidentPolicy(resolve_after=300.0))
    m.ingest(
        make_report(
            0, 120.0,
            [
                make_component(1, 65001, 65002, prefixes=("10.0.0.0/24",)),
                make_component(2, 65003, 65004, prefixes=("10.1.0.0/24",)),
            ],
        )
    )
    m.ingest(make_report(1, 180.0, [make_component(1, 65001, 65002, prefixes=("10.0.0.0/24",))]))
    m.ingest(make_report(6, 480.0, [make_component(1, 65001, 65002, prefixes=("10.0.0.0/24",))]))
    return m


class TestRoundTrip:
    def test_sync_then_rows_is_lossless(self, tmp_path):
        manager = evolved_manager()
        with IncidentStore(tmp_path / INCIDENT_DB) as store:
            store.sync(manager, reports_applied=3)
            stored = [r.to_dict() for r in store.rows()]
            live = [r.to_dict() for r in manager.all_incidents()]
            assert stored == live
            assert store.reports_applied() == 3
            assert store.count() == 2

    def test_sync_replaces_not_appends(self, tmp_path):
        manager = evolved_manager()
        with IncidentStore(tmp_path / INCIDENT_DB) as store:
            store.sync(manager, reports_applied=3)
            shrunk = IncidentManager(policy=manager.policy)
            store.sync(shrunk, reports_applied=0)
            assert store.count() == 0
            assert store.reports_applied() == 0

    def test_row_lookup_and_status_counts(self, tmp_path):
        manager = evolved_manager()
        with IncidentStore(tmp_path / INCIDENT_DB) as store:
            store.sync(manager, reports_applied=3)
            record = store.row(1)
            assert record is not None
            assert record.stem == ("65001", "65002")
            assert store.row(99) is None
            counts = store.counts_by_status()
            assert sum(counts.values()) == 2
            assert counts.get("resolved", 0) == 1

    def test_reopened_history_survives_the_store(self, tmp_path):
        m = IncidentManager(
            policy=IncidentPolicy(resolve_after=300.0, reopen_window=900.0)
        )
        m.ingest(make_report(0, 120.0, [make_component(1, 65001, 65002, prefixes=("10.0.0.0/24",))]))
        m.ingest(make_report(6, 480.0, [make_component(1, 65003, 65004, prefixes=("10.1.0.0/24",))]))
        m.ingest(make_report(9, 1080.0, [make_component(1, 65001, 65002, prefixes=("10.0.0.0/24",))]))
        with IncidentStore(tmp_path / INCIDENT_DB) as store:
            store.sync(m, reports_applied=3)
            record = store.row(1)
            assert record.reopen_count == 1
            edges = [
                (t.from_status, t.to_status) for t in record.transitions
            ]
            assert ("resolved", "open") in edges


class TestCompaction:
    def test_compact_drops_oldest_resolved_first(self, tmp_path):
        m = IncidentManager(
            policy=IncidentPolicy(resolve_after=100.0)
        )
        m.ingest(make_report(0, 100.0, [make_component(1, 65001, 65002, prefixes=("10.0.0.0/24",))]))
        m.ingest(make_report(2, 300.0, [make_component(1, 65003, 65004, prefixes=("10.1.0.0/24",))]))
        m.ingest(make_report(4, 500.0, [make_component(1, 65005, 65006, prefixes=("10.2.0.0/24",))]))
        with IncidentStore(tmp_path / INCIDENT_DB) as store:
            store.sync(m, reports_applied=3)
            # 1 and 2 resolved (at 300 and 500), 3 still live.
            removed = store.compact(keep_resolved=1)
            assert removed == 1
            kept = {r.incident_id for r in store.rows()}
            assert kept == {2, 3}

    def test_compact_never_touches_live_incidents(self, tmp_path):
        manager = evolved_manager()
        with IncidentStore(tmp_path / INCIDENT_DB) as store:
            store.sync(manager, reports_applied=3)
            removed = store.compact(keep_resolved=0)
            assert removed == 1  # only incident 2 had resolved
            assert [r.incident_id for r in store.rows()] == [1]
            assert not store.rows()[0].resolved

    def test_compact_on_an_empty_store_is_a_no_op(self, tmp_path):
        with IncidentStore(tmp_path / INCIDENT_DB) as store:
            assert store.compact() == 0


class TestExport:
    def test_jsonl_export_matches_the_legacy_shape(self, tmp_path):
        manager = evolved_manager()
        out = tmp_path / "incidents.jsonl"
        with IncidentStore(tmp_path / INCIDENT_DB) as store:
            store.sync(manager, reports_applied=3)
            written = store.export_jsonl(out)
        assert written == 2
        lines = out.read_text(encoding="utf-8").splitlines()
        payloads = [json.loads(line) for line in lines]
        assert [p["id"] for p in payloads] == [1, 2]
        # Deterministic serialization: keys sorted, stable reruns.
        assert lines[0] == json.dumps(payloads[0], sort_keys=True)


class TestSchemaDiscipline:
    def test_foreign_schema_generation_is_refused(self, tmp_path):
        path = tmp_path / INCIDENT_DB
        IncidentStore(path).close()
        conn = sqlite3.connect(str(path))
        with conn:
            conn.execute(
                "UPDATE meta SET value = '999'"
                " WHERE key = 'schema_version'"
            )
        conn.close()
        with pytest.raises(IncidentStoreError, match="schema v999"):
            IncidentStore(path)

    def test_reopening_a_valid_store_is_fine(self, tmp_path):
        path = tmp_path / INCIDENT_DB
        manager = evolved_manager()
        with IncidentStore(path) as store:
            store.sync(manager, reports_applied=3)
        with IncidentStore(path) as store:
            assert store.count() == 2


class TestChaosRecovery:
    def test_killed_mid_transaction_rolls_back_to_last_sync(self, tmp_path):
        """A writer dying inside an open transaction loses only that txn."""
        path = tmp_path / INCIDENT_DB
        manager = evolved_manager()
        with IncidentStore(path) as store:
            store.sync(manager, reports_applied=3)
            committed = [r.to_dict() for r in store.rows()]

        # A separate process opens a write transaction that guts the
        # table, then dies via os._exit before COMMIT — the harshest
        # exit sqlite can see short of kill -9.
        script = (
            "import os, sqlite3, sys\n"
            "conn = sqlite3.connect(sys.argv[1])\n"
            "cur = conn.cursor()\n"
            "cur.execute('BEGIN IMMEDIATE')\n"
            "cur.execute('DELETE FROM incidents')\n"
            "cur.execute(\"UPDATE meta SET value = '999'"
            " WHERE key = 'reports_applied'\")\n"
            "assert cur.execute("
            "'SELECT COUNT(*) FROM incidents').fetchone()[0] == 0\n"
            "os._exit(9)\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", script, str(path)],
            env=subprocess_env(),
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert proc.returncode == 9, proc.stderr

        with IncidentStore(path) as store:
            assert [r.to_dict() for r in store.rows()] == committed
            assert store.reports_applied() == 3
            # And the store is still writable after the crash.
            store.sync(manager, reports_applied=4)
            assert store.reports_applied() == 4

    def test_hard_killed_monitor_reconciles_on_resume(self, tmp_path):
        """``os._exit`` mid-run, then resume: store matches uninterrupted.

        Harsher than the in-process InjectedCrash tests: the process
        dies without unwinding, so no finally-block closes the sqlite
        connection and the WAL sidecar files are left as-is.
        """
        from repro.pipeline import MonitorConfig, run_monitor
        from tests.pipeline.conftest import small_source

        config = MonitorConfig(
            window=120.0, slide=60.0, batch_size=64, checkpoint_every=1
        )

        clean_dir = tmp_path / "clean"
        clean_dir.mkdir()
        run_monitor(small_source(), config, checkpoint_dir=clean_dir)
        with IncidentStore(clean_dir / INCIDENT_DB) as store:
            expected = [r.to_dict() for r in store.rows()]
        assert expected  # the synthetic feed must produce incidents

        crash_dir = tmp_path / "crash"
        crash_dir.mkdir()
        script = (
            "import os, sys\n"
            "from pathlib import Path\n"
            "from repro.pipeline import ("
            "MonitorConfig, SyntheticSource, run_monitor)\n"
            "seen = 0\n"
            "def kill_hard(report):\n"
            "    global seen\n"
            "    seen += 1\n"
            "    if seen == 5:\n"
            "        os._exit(7)\n"
            "run_monitor(\n"
            "    SyntheticSource(1600, 600.0, seed=7, n_routes=400),\n"
            "    MonitorConfig(window=120.0, slide=60.0, batch_size=64,"
            " checkpoint_every=1),\n"
            "    checkpoint_dir=Path(sys.argv[1]),\n"
            "    on_report=kill_hard,\n"
            ")\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", script, str(crash_dir)],
            env=subprocess_env(),
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert proc.returncode == 7, proc.stderr

        run_monitor(
            small_source(), config, checkpoint_dir=crash_dir, resume=True
        )
        with IncidentStore(crash_dir / INCIDENT_DB) as store:
            recovered = [r.to_dict() for r in store.rows()]
            applied = store.reports_applied()
        assert recovered == expected
        with IncidentStore(clean_dir / INCIDENT_DB) as store:
            assert applied == store.reports_applied()
