"""Merge/dedup and lifecycle-evolution tests for the IncidentManager.

Covers the edge cases the merge rules are easiest to get wrong on:
the same stem recurring across non-adjacent windows, overlapping but
unequal prefix sets, simultaneous incidents on distinct stems, and
reopen-after-resolve on both sides of the reopen window.
"""

import pytest

from repro.incidents.lifecycle import IncidentStatus
from repro.incidents.manager import (
    IncidentManager,
    IncidentPolicy,
    classify_component,
)
from tests.incidents.conftest import make_component, make_report


def manager(**overrides) -> IncidentManager:
    return IncidentManager(policy=IncidentPolicy(**overrides))


class TestSameStemDedup:
    def test_adjacent_windows_fold_into_one_incident(self):
        m = manager()
        m.ingest(make_report(0, 120.0, [make_component(1, 65001, 65002)]))
        m.ingest(make_report(1, 180.0, [make_component(1, 65001, 65002)]))
        assert len(m.all_incidents()) == 1
        record = m.all_incidents()[0]
        assert record.windows_observed == 2
        assert record.last_seen == 180.0
        assert record.first_seen == 120.0

    def test_non_adjacent_windows_still_dedup(self):
        # The same-stem rule ignores the correlation window: identity
        # is identity, however many quiet windows sit in between.
        m = manager(resolve_after=10_000.0, correlation_window=60.0)
        m.ingest(make_report(0, 120.0, [make_component(1, 65001, 65002)]))
        m.ingest(make_report(5, 3000.0, [make_component(1, 65001, 65002)]))
        assert len(m.all_incidents()) == 1
        assert m.all_incidents()[0].windows_observed == 2

    def test_same_window_repeat_does_not_double_count(self):
        # Two components on one stem in a single report (possible when
        # ranks split an event set) must not inflate persistence.
        m = manager()
        m.ingest(
            make_report(
                0,
                120.0,
                [
                    make_component(1, 65001, 65002, strength=9),
                    make_component(2, 65001, 65002, strength=4),
                ],
            )
        )
        record = m.all_incidents()[0]
        assert record.windows_observed == 1
        assert record.peak_strength == 9
        assert record.best_rank == 1

    def test_weak_components_never_form_incidents(self):
        m = manager(min_strength=3)
        m.ingest(make_report(0, 120.0, [make_component(1, 65001, 65002, strength=2)]))
        assert m.all_incidents() == []
        assert m.created_total == 0


class TestPrefixOverlapMerge:
    def test_overlapping_but_unequal_sets_merge(self):
        m = manager()
        m.ingest(
            make_report(
                0, 120.0,
                [make_component(1, 65001, 65002, prefixes=("10.0.0.0/24", "10.0.1.0/24"))],
            )
        )
        # Different stem, 2-of-3 Jaccard = 2/3 >= 0.5: same incident.
        m.ingest(
            make_report(
                1, 180.0,
                [
                    make_component(
                        1, 65009, 65010,
                        prefixes=(
                            "10.0.0.0/24", "10.0.1.0/24", "10.0.2.0/24"
                        ),
                    )
                ],
            )
        )
        assert len(m.all_incidents()) == 1
        record = m.all_incidents()[0]
        assert record.stem == ("65001", "65002")
        assert record.related_stems == (("65009", "65010"),)
        assert record.prefixes == frozenset(
            {"10.0.0.0/24", "10.0.1.0/24", "10.0.2.0/24"}
        )

    def test_merged_stem_keys_future_lookups(self):
        m = manager()
        m.ingest(make_report(0, 120.0, [make_component(1, 65001, 65002)]))
        m.ingest(make_report(1, 180.0, [make_component(1, 65009, 65010)]))
        # A later recurrence of the merged-in stem must hit the same
        # incident through the by-stem index, not re-merge by prefixes.
        m.ingest(
            make_report(
                2, 240.0,
                [make_component(1, 65009, 65010, prefixes=("192.168.0.0/16",))],
            )
        )
        assert len(m.all_incidents()) == 1
        assert m.all_incidents()[0].windows_observed == 3

    def test_insufficient_overlap_opens_a_second_incident(self):
        m = manager()
        m.ingest(
            make_report(
                0, 120.0,
                [make_component(1, 65001, 65002, prefixes=("10.0.0.0/24", "10.0.1.0/24"))],
            )
        )
        # 1-of-5 Jaccard = 0.2 < 0.5: genuinely separate.
        m.ingest(
            make_report(
                1, 180.0,
                [
                    make_component(
                        1, 65009, 65010,
                        prefixes=(
                            "10.0.0.0/24", "10.9.0.0/24",
                            "10.9.1.0/24", "10.9.2.0/24",
                        ),
                    )
                ],
            )
        )
        assert len(m.all_incidents()) == 2

    def test_merge_respects_the_correlation_window(self):
        m = manager(resolve_after=10_000.0, correlation_window=100.0)
        m.ingest(make_report(0, 120.0, [make_component(1, 65001, 65002)]))
        # Identical prefixes but the incident was last seen 480s ago —
        # outside the 100s correlation window, so no merge.
        m.ingest(make_report(4, 600.0, [make_component(1, 65009, 65010)]))
        assert len(m.all_incidents()) == 2

    def test_empty_prefix_sets_never_merge(self):
        m = manager()
        m.ingest(make_report(0, 120.0, [make_component(1, 65001, 65002, prefixes=())]))
        m.ingest(make_report(1, 180.0, [make_component(1, 65009, 65010, prefixes=())]))
        assert len(m.all_incidents()) == 2


class TestSimultaneousIncidents:
    def test_distinct_stems_in_one_window_get_distinct_ids(self):
        m = manager()
        m.ingest(
            make_report(
                0, 120.0,
                [
                    make_component(1, 65001, 65002, prefixes=("10.0.0.0/24",)),
                    make_component(2, 65003, 65004, prefixes=("10.1.0.0/24",)),
                    make_component(3, 65005, 65006, prefixes=("10.2.0.0/24",)),
                ],
            )
        )
        records = m.all_incidents()
        assert [r.incident_id for r in records] == [1, 2, 3]
        assert [r.best_rank for r in records] == [1, 2, 3]
        assert len({r.stem for r in records}) == 3

    def test_ingest_returns_changed_records_in_id_order(self):
        m = manager()
        changed = m.ingest(
            make_report(
                0, 120.0,
                [
                    make_component(1, 65003, 65004, prefixes=("10.1.0.0/24",)),
                    make_component(2, 65001, 65002, prefixes=("10.0.0.0/24",)),
                ],
            )
        )
        assert [r.incident_id for r in changed] == [1, 2]

    def test_each_evolves_independently(self):
        m = manager(resolve_after=300.0)
        m.ingest(
            make_report(
                0, 120.0,
                [
                    make_component(1, 65001, 65002, prefixes=("10.0.0.0/24",)),
                    make_component(2, 65003, 65004, prefixes=("10.1.0.0/24",)),
                ],
            )
        )
        # Only the first stem persists; the second ages out.
        m.ingest(make_report(1, 180.0, [make_component(1, 65001, 65002, prefixes=("10.0.0.0/24",))]))
        m.ingest(make_report(6, 480.0, [make_component(1, 65001, 65002, prefixes=("10.0.0.0/24",))]))
        by_id = {r.incident_id: r for r in m.all_incidents()}
        assert not by_id[1].resolved
        assert by_id[2].resolved
        assert by_id[2].transitions[-1].reason.startswith("quiet for")


class TestEscalationAndAging:
    def test_persistence_escalates_to_investigating(self):
        m = manager(investigate_after=2)
        m.ingest(make_report(0, 120.0, [make_component(1, 65001, 65002)]))
        assert m.all_incidents()[0].status is IncidentStatus.OPEN
        m.ingest(make_report(1, 180.0, [make_component(1, 65001, 65002)]))
        assert m.all_incidents()[0].status is IncidentStatus.INVESTIGATING

    def test_quiet_incident_resolves_after_the_policy_window(self):
        m = manager(resolve_after=300.0)
        m.ingest(make_report(0, 120.0, [make_component(1, 65001, 65002, prefixes=("10.0.0.0/24",))]))
        changed = m.ingest(
            make_report(6, 480.0, [make_component(1, 65003, 65004, prefixes=("10.1.0.0/24",))])
        )
        record = m.get(1)
        assert record is not None and record.resolved
        assert record.resolved_at == 480.0
        assert record in changed

    def test_finalize_resolves_every_live_incident(self):
        m = manager()
        m.ingest(
            make_report(
                0, 120.0,
                [
                    make_component(1, 65001, 65002, prefixes=("10.0.0.0/24",)),
                    make_component(2, 65003, 65004, prefixes=("10.1.0.0/24",)),
                ],
            )
        )
        changed = m.finalize()
        assert len(changed) == 2
        assert all(r.resolved for r in m.all_incidents())
        assert all(
            r.transitions[-1].reason == "end of stream"
            for r in m.all_incidents()
        )
        # Idempotent: nothing left to resolve.
        assert m.finalize() == []


class TestReopenAfterResolve:
    def quiet_then_recur(self, gap: float) -> IncidentManager:
        m = manager(resolve_after=300.0, reopen_window=900.0)
        m.ingest(make_report(0, 120.0, [make_component(1, 65001, 65002, prefixes=("10.0.0.0/24",))]))
        # A foreign stem drives stream time forward so #1 ages out.
        m.ingest(make_report(6, 480.0, [make_component(1, 65003, 65004, prefixes=("10.1.0.0/24",))]))
        assert m.get(1).resolved
        m.ingest(
            make_report(
                9, 480.0 + gap,
                [make_component(1, 65001, 65002, prefixes=("10.0.0.0/24",))],
            )
        )
        return m

    def test_recurrence_inside_the_window_reopens_the_same_id(self):
        m = self.quiet_then_recur(gap=600.0)
        record = m.get(1)
        assert not record.resolved
        assert record.reopen_count == 1
        assert record.resolved_at is None
        assert m.created_total == 2  # no third incident was minted
        # The audit trail shows the resolved -> open edge explicitly.
        edges = [(t.from_status, t.to_status) for t in record.transitions]
        assert ("resolved", "open") in edges

    def test_recurrence_beyond_the_window_is_a_new_incident(self):
        m = self.quiet_then_recur(gap=2000.0)
        assert m.get(1) is None  # the stale incident was unlinked
        assert m.created_total == 3
        fresh = m.get(3)
        assert fresh is not None
        assert fresh.stem == ("65001", "65002")
        assert fresh.reopen_count == 0

    def test_reopen_counts_as_persistence_and_escalates(self):
        # The reopened window is the incident's second observation, so
        # the same ingest escalates it straight to investigating.
        m = self.quiet_then_recur(gap=600.0)
        record = m.get(1)
        assert record.status is IncidentStatus.INVESTIGATING
        assert record.windows_observed == 2


class TestRetention:
    def test_max_resolved_evicts_oldest_first(self):
        m = manager(resolve_after=100.0, max_resolved=1)
        m.ingest(make_report(0, 100.0, [make_component(1, 65001, 65002, prefixes=("10.0.0.0/24",))]))
        m.ingest(make_report(2, 300.0, [make_component(1, 65003, 65004, prefixes=("10.1.0.0/24",))]))
        m.ingest(make_report(4, 500.0, [make_component(1, 65005, 65006, prefixes=("10.2.0.0/24",))]))
        # #1 and #2 both resolved; only the newest resolution survives.
        retained = {r.incident_id for r in m.all_incidents()}
        assert retained == {2, 3}


class TestStatePersistence:
    def evolved_manager(self) -> IncidentManager:
        m = manager(resolve_after=300.0)
        m.ingest(
            make_report(
                0, 120.0,
                [
                    make_component(1, 65001, 65002, prefixes=("10.0.0.0/24",)),
                    make_component(2, 65003, 65004, prefixes=("10.1.0.0/24",)),
                ],
            )
        )
        m.ingest(make_report(1, 180.0, [make_component(1, 65001, 65002, prefixes=("10.0.0.0/24",))]))
        m.ingest(make_report(6, 480.0, [make_component(1, 65001, 65002, prefixes=("10.0.0.0/24",))]))
        return m

    def test_export_import_round_trip_is_exact(self):
        source = self.evolved_manager()
        clone = IncidentManager(policy=source.policy)
        clone.import_state(source.export_state())
        assert clone.export_state() == source.export_state()
        assert clone.counts_by_status() == source.counts_by_status()
        # The rebuilt index must drive identical future evolution.
        report = make_report(7, 540.0, [make_component(1, 65001, 65002, prefixes=("10.0.0.0/24",))])
        source.ingest(report)
        clone.ingest(report)
        assert clone.export_state() == source.export_state()

    def test_import_refuses_a_used_manager(self):
        source = self.evolved_manager()
        with pytest.raises(ValueError, match="used incident manager"):
            source.import_state(source.export_state())


class TestClassification:
    def test_mass_withdrawal(self):
        c = make_component(1, 65001, 65002, withdrawals=9, announcements=1)
        assert classify_component(c) == "mass-withdrawal"

    def test_flap(self):
        c = make_component(
            1, 65001, 65002, withdrawals=4, announcements=4,
            prefixes=("10.0.0.0/24", "10.0.1.0/24"),
        )
        assert classify_component(c) == "flap"

    def test_announcement_flood(self):
        c = make_component(
            1, 65001, 65002, withdrawals=0, announcements=40,
            prefixes=tuple(f"10.0.{i}.0/24" for i in range(8)),
        )
        assert classify_component(c) == "announcement-flood"

    def test_path_change_is_the_default(self):
        c = make_component(1, 65001, 65002, withdrawals=1, announcements=7)
        assert classify_component(c) == "path-change"

    def test_empty_evidence_is_bare_correlation(self):
        c = make_component(1, 65001, 65002, withdrawals=0, announcements=0)
        assert classify_component(c) == "correlation"
