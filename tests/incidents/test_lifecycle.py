"""State-machine unit tests: legality, reopen semantics, severity."""

import pytest

from repro.incidents.lifecycle import (
    IncidentRecord,
    IncidentStatus,
    Transition,
    TransitionError,
    open_incident,
    severity_band,
    severity_score,
    stem_key,
    transition,
)


def fresh(incident_id: int = 1) -> IncidentRecord:
    return open_incident(
        incident_id,
        ("65001", "65002"),
        100.0,
        incident_class="path-change",
        detected_window=3,
        stem_label="AS65001--AS65002",
    )


class TestTransitions:
    def test_birth_is_open_with_an_audit_row(self):
        record = fresh()
        assert record.status is IncidentStatus.OPEN
        assert record.opened_at == 100.0
        assert len(record.transitions) == 1
        birth = record.transitions[0]
        assert birth.from_status is None
        assert birth.to_status == "open"
        assert birth.reason == "first observation"

    def test_the_escalation_path(self):
        record = fresh()
        transition(record, IncidentStatus.INVESTIGATING, 160.0, "persisted")
        assert record.status is IncidentStatus.INVESTIGATING
        transition(record, IncidentStatus.RESOLVED, 700.0, "quiet")
        assert record.resolved
        assert record.resolved_at == 700.0
        assert [t.to_status for t in record.transitions] == [
            "open", "investigating", "resolved",
        ]

    def test_open_can_resolve_directly(self):
        record = fresh()
        transition(record, IncidentStatus.RESOLVED, 700.0, "quiet")
        assert record.resolved

    @pytest.mark.parametrize(
        "path, bad",
        [
            ((), IncidentStatus.OPEN),  # open -> open
            ((IncidentStatus.INVESTIGATING,), IncidentStatus.OPEN),
            (
                (IncidentStatus.INVESTIGATING,),
                IncidentStatus.INVESTIGATING,
            ),
            (
                (IncidentStatus.RESOLVED,),
                IncidentStatus.INVESTIGATING,
            ),
            ((IncidentStatus.RESOLVED,), IncidentStatus.RESOLVED),
        ],
    )
    def test_illegal_edges_raise(self, path, bad):
        record = fresh()
        for step in path:
            transition(record, step, 200.0, "setup")
        before = len(record.transitions)
        with pytest.raises(TransitionError, match="illegal transition"):
            transition(record, bad, 300.0, "nope")
        # A refused edge must not leave a partial audit row behind.
        assert len(record.transitions) == before

    def test_reopen_clears_resolution_and_counts(self):
        record = fresh()
        transition(record, IncidentStatus.RESOLVED, 700.0, "quiet")
        transition(record, IncidentStatus.OPEN, 900.0, "recurred")
        assert record.status is IncidentStatus.OPEN
        assert record.resolved_at is None
        assert record.reopen_count == 1
        assert record.time_to_resolve is None
        transition(record, IncidentStatus.RESOLVED, 1000.0, "quiet")
        transition(record, IncidentStatus.OPEN, 1100.0, "recurred")
        assert record.reopen_count == 2


class TestDerivedFields:
    def test_age_tracks_stream_time_while_live(self):
        record = fresh()
        assert record.age(160.0) == 60.0
        transition(record, IncidentStatus.RESOLVED, 400.0, "quiet")
        # Frozen at resolution, whatever "now" the caller passes.
        assert record.age(9999.0) == 300.0

    def test_time_to_resolve(self):
        record = fresh()
        assert record.time_to_resolve is None
        transition(record, IncidentStatus.RESOLVED, 850.0, "quiet")
        assert record.time_to_resolve == 750.0

    def test_describe_is_operator_readable(self):
        record = fresh()
        text = record.describe()
        assert "INC-0001" in text
        assert "AS65001--AS65002" in text
        assert "open" in text

    def test_describe_falls_back_to_bare_stem(self):
        record = fresh()
        record.stem_label = ""
        assert "65001--65002" in record.describe()


class TestSeverity:
    def test_score_components_cap_at_three_each(self):
        assert severity_score(1, 64, 4) == 9.0
        assert severity_score(1, 1000, 100) == 9.0
        assert severity_score(4, 1, 1) == 0.0

    @pytest.mark.parametrize(
        "rank, expected", [(1, 3), (2, 2), (3, 1), (4, 0), (9, 0), (0, 0)]
    )
    def test_rank_signal(self, rank, expected):
        assert severity_score(rank, 1, 1) == expected

    @pytest.mark.parametrize(
        "prefixes, expected",
        [(0, 0), (3, 0), (4, 1), (15, 1), (16, 2), (63, 2), (64, 3)],
    )
    def test_blast_radius_signal(self, prefixes, expected):
        assert severity_score(4, prefixes, 1) == expected

    @pytest.mark.parametrize(
        "score, band",
        [
            (0.0, "low"), (2.9, "low"), (3.0, "medium"), (4.9, "medium"),
            (5.0, "high"), (6.9, "high"), (7.0, "critical"),
            (9.0, "critical"),
        ],
    )
    def test_bands(self, score, band):
        assert severity_band(score) == band


class TestSerialization:
    def test_record_round_trips_with_full_history(self):
        record = fresh()
        transition(record, IncidentStatus.INVESTIGATING, 160.0, "persisted")
        transition(record, IncidentStatus.RESOLVED, 700.0, "quiet")
        transition(record, IncidentStatus.OPEN, 800.0, "recurred")
        record.prefixes = frozenset({"10.0.0.0/24", "10.0.1.0/24"})
        record.related_stems = (("65003", "65004"),)
        record.windows_observed = 5
        record.severity = 6.0
        record.severity_band = "high"
        restored = IncidentRecord.from_dict(record.to_dict())
        assert restored == record
        assert restored.to_dict() == record.to_dict()

    def test_transition_round_trip(self):
        event = Transition(
            at=5.0, from_status="open", to_status="resolved", reason="x"
        )
        assert Transition.from_dict(event.to_dict()) == event

    def test_stem_key_normalizes_to_strings(self):
        assert stem_key((65001, 65002)) == ("65001", "65002")
        assert stem_key(("a", "b")) == ("a", "b")
