"""Tests for monitor event sources and replay pacing."""

import json

import pytest

from repro.collector.stream import EventStream, fingerprint_events
from repro.pipeline.sources import (
    FileSource,
    Pacer,
    QuarantineSource,
    StreamSource,
    SyntheticSource,
)
from repro.mrt.records import (
    SUBTYPE_BGP4MP_MESSAGE_AS4,
    TYPE_BGP4MP,
)
from repro.testkit.corpus import build_clean_records
from tests.stemming.test_stemmer import spike


class TestStreamSource:
    def test_replays_from_an_offset(self):
        events = spike("100 200", 6)
        source = StreamSource(EventStream(events))
        assert list(source.events()) == events
        assert list(source.events(4)) == events[4:]

    def test_describe_pins_the_stream_identity(self):
        stream = EventStream(spike("100 200", 6))
        description = StreamSource(stream, label="t").describe()
        assert description["type"] == "stream"
        assert description["label"] == "t"
        assert description["fingerprint"] == stream.fingerprint()


class TestFileSource:
    def test_jsonl_round_trip(self, tmp_path):
        events = spike("100 200 300", 8)
        path = tmp_path / "events.jsonl"
        EventStream(events).save(path)
        source = FileSource(path)
        assert list(source.events(2)) == events[2:]
        assert source.describe() == {"type": "file", "path": str(path)}


class TestSyntheticSource:
    def test_same_parameters_same_events(self):
        first = list(SyntheticSource(300, 120.0, seed=5, n_routes=200)
                     .events())
        second = list(SyntheticSource(300, 120.0, seed=5, n_routes=200)
                      .events())
        assert fingerprint_events(first) == fingerprint_events(second)

    def test_seed_changes_the_feed(self):
        first = list(SyntheticSource(300, 120.0, seed=5, n_routes=200)
                     .events())
        second = list(SyntheticSource(300, 120.0, seed=6, n_routes=200)
                      .events())
        assert fingerprint_events(first) != fingerprint_events(second)

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError, match="unknown profile"):
            SyntheticSource(10, 10.0, profile="nonesuch")

    def test_describe_covers_every_generation_parameter(self):
        description = SyntheticSource(300, 120.0, seed=5).describe()
        assert description["type"] == "synthetic"
        assert description["count"] == 300
        assert description["seed"] == 5


class TestQuarantineSource:
    def test_replays_decodable_records_and_skips_the_rest(self, tmp_path):
        path = tmp_path / "quarantine.jsonl"
        records = build_clean_records(n_updates=6)
        with open(path, "w", encoding="utf-8") as handle:
            for record in records:
                handle.write(json.dumps({
                    "t": record.timestamp,
                    "type": record.type,
                    "subtype": record.subtype,
                    "payload": record.payload.hex(),
                }) + "\n")
            handle.write(json.dumps({
                "t": 1.0,
                "type": TYPE_BGP4MP,
                "subtype": SUBTYPE_BGP4MP_MESSAGE_AS4,
                "payload": b"\xde\xad".hex(),
            }) + "\n")
        source = QuarantineSource(path)
        events = list(source.events())
        assert events  # the clean records replay into events
        assert source.replayed_records == 6
        assert source.failed_records == 1
        assert source.describe()["type"] == "quarantine"


class FakeClock:
    def __init__(self):
        self.now = 100.0
        self.slept = []

    def clock(self):
        return self.now

    def sleep(self, seconds):
        self.slept.append(seconds)
        self.now += seconds


class TestPacer:
    def test_disabled_pace_never_sleeps(self):
        fake = FakeClock()
        pacer = Pacer(0, clock=fake.clock, sleep=fake.sleep)
        assert pacer.wait_for(50.0) == 0.0
        assert fake.slept == []

    def test_first_timestamp_anchors_the_schedule(self):
        fake = FakeClock()
        pacer = Pacer(1.0, clock=fake.clock, sleep=fake.sleep)
        assert pacer.wait_for(1000.0) == 0.0  # anchor, no sleep
        delay = pacer.wait_for(1003.0)
        assert delay == pytest.approx(3.0)
        assert fake.slept == [pytest.approx(3.0)]

    def test_pace_compresses_archive_time(self):
        fake = FakeClock()
        pacer = Pacer(60.0, clock=fake.clock, sleep=fake.sleep)
        pacer.wait_for(0.0)
        delay = pacer.wait_for(120.0)  # two archive minutes
        assert delay == pytest.approx(2.0)

    def test_running_behind_means_no_sleep_and_positive_lag(self):
        fake = FakeClock()
        pacer = Pacer(1.0, clock=fake.clock, sleep=fake.sleep)
        pacer.wait_for(0.0)
        fake.now += 30.0  # processing took 30s of wall clock
        assert pacer.wait_for(10.0) == 0.0
        assert pacer.lag(10.0) == pytest.approx(20.0)

    def test_lag_is_zero_when_unpaced(self):
        assert Pacer(0).lag(10.0) == 0.0
