"""Chaos test: a stall-then-burst feed, killed mid-run, then resumed.

The nastiest realistic failure mode for a monitor: the feed stalls (a
collector hiccup), the backlog arrives in one burst, and the process is
killed between checkpoints while digesting it. The resumed run must
still produce an incident log bit-identical to a run that never died.
"""

import pytest

from repro.collector.rex import RouteExplorer
from repro.pipeline import (
    CheckpointStore,
    MonitorConfig,
    StreamSource,
    run_monitor,
)
from repro.simulator.synthetic import (
    ISP_ANON_PROFILE,
    populate_view,
    sized_event_stream,
)
from repro.testkit import CrashPlan, InjectedCrash
from repro.testkit.faults import stall_then_burst


@pytest.fixture(scope="module")
def bursty_stream():
    """A 600s synthetic feed with its middle 150s stalled into a burst."""
    rex = RouteExplorer("chaos")
    populate_view(rex, 400, ISP_ANON_PROFILE, seed=11)
    stream = sized_event_stream(rex, 1600, 600.0, seed=11)
    return stall_then_burst(
        stream, stall_start=200.0, stall_seconds=150.0, seed=11
    )


@pytest.fixture
def config():
    return MonitorConfig(
        window=120.0, slide=60.0, batch_size=64, checkpoint_every=1
    )


def test_the_burst_really_piles_up(bursty_stream):
    burst_size = sum(
        1 for event in bursty_stream if event.timestamp == 350.0
    )
    assert burst_size > 200  # the stalled backlog lands at one instant


def test_crash_mid_burst_then_resume_matches_uninterrupted(
    bursty_stream, config, tmp_path
):
    baseline = run_monitor(StreamSource(bursty_stream), config)
    base = baseline.report_dicts
    assert base  # the run must actually produce windows

    # Kill while the burst is being digested, between checkpoints.
    with pytest.raises(InjectedCrash):
        run_monitor(
            StreamSource(bursty_stream),
            config,
            checkpoint_dir=tmp_path,
            crash_plan=CrashPlan(after_events=832),
        )
    store = CheckpointStore(tmp_path)
    state = store.latest()
    assert state is not None and 0 < state.offset < 1600

    resumed = run_monitor(
        StreamSource(bursty_stream),
        config,
        checkpoint_dir=tmp_path,
        resume=True,
    )
    assert resumed.stopped == "end"
    # The second run only replays from the checkpoint onward...
    assert resumed.events == 1600 - state.offset
    # ...yet the combined incident log is bit-identical to the
    # uninterrupted run: fingerprints, ranked stems, TAMP annotations.
    assert store.read_reports() == base


def test_double_crash_still_converges(bursty_stream, config, tmp_path):
    baseline = run_monitor(StreamSource(bursty_stream), config)
    for after in (512, 320):
        with pytest.raises(InjectedCrash):
            run_monitor(
                StreamSource(bursty_stream),
                config,
                checkpoint_dir=tmp_path,
                resume=tmp_path.joinpath("incidents.jsonl").exists(),
                crash_plan=CrashPlan(after_events=after),
            )
    final = run_monitor(
        StreamSource(bursty_stream),
        config,
        checkpoint_dir=tmp_path,
        resume=True,
    )
    assert final.stopped == "end"
    log = CheckpointStore(tmp_path).read_reports()
    assert log == baseline.report_dicts
