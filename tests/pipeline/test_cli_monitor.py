"""CLI surface tests for ``repro monitor``."""

import json
import re
import urllib.request

import pytest

from repro.cli import main
from repro.collector.stream import EventStream
from repro.pipeline import CheckpointStore
from tests.stemming.test_stemmer import spike

SYNTH = [
    "monitor", "--synthetic", "800",
    "--synthetic-timerange", "600",
    "--window", "120", "--slide", "60",
    "--batch-size", "64",
]


class TestSources:
    def test_synthetic_run_reports_windows(self, capsys):
        assert main(SYNTH) == 0
        out = capsys.readouterr().out
        assert "window 0 [" in out
        assert "monitor stopped (end): 800 events" in out

    def test_file_source(self, tmp_path, capsys):
        path = tmp_path / "events.jsonl"
        EventStream(spike("100 200 300", 40)).save(path)
        assert main(["monitor", str(path), "--window", "60"]) == 0
        out = capsys.readouterr().out
        assert "AS200--AS300" in out

    def test_exactly_one_source_required(self, capsys):
        assert main(["monitor"]) == 1
        assert "exactly one source" in capsys.readouterr().err
        assert main(["monitor", "x.jsonl", "--synthetic", "10"]) == 1

    def test_missing_file_is_an_error_not_a_traceback(self, tmp_path):
        assert main(["monitor", str(tmp_path / "nope.jsonl")]) == 1


class TestCheckpointCycle:
    def test_kill_and_resume_round_trip(self, tmp_path, capsys):
        ckpt = tmp_path / "ckpt"
        baseline = tmp_path / "base"
        assert main(SYNTH + ["--checkpoint-dir", str(baseline)]) == 0
        base_log = CheckpointStore(baseline).read_reports()
        assert base_log

        # Hard-stop mid-stream, then resume.
        assert main(SYNTH + [
            "--checkpoint-dir", str(ckpt), "--max-events", "320",
        ]) == 0
        assert "monitor stopped (max_events)" in capsys.readouterr().out
        assert main(SYNTH + [
            "--checkpoint-dir", str(ckpt), "--resume",
        ]) == 0
        assert CheckpointStore(ckpt).read_reports() == base_log

    def test_resume_without_checkpoint_dir_fails(self, capsys):
        assert main(SYNTH + ["--resume"]) == 1
        assert "checkpoint directory" in capsys.readouterr().err


class TestMetrics:
    def test_metrics_out_writes_a_snapshot(self, tmp_path, capsys):
        out_path = tmp_path / "metrics.json"
        assert main(SYNTH + ["--metrics-out", str(out_path)]) == 0
        snapshot = json.loads(out_path.read_text())
        assert snapshot["repro_pipeline_events_total"] == 800
        assert "repro_pipeline_window_lag_seconds" in snapshot
        assert "metrics snapshot written" in capsys.readouterr().out

    def test_metrics_port_serves_during_the_run(self, capsys):
        # Port 0 binds an ephemeral port, printed to stderr; scrape it
        # from the report callback while the monitor is still alive.
        scraped = []

        import repro.pipeline as pipeline_pkg

        original = pipeline_pkg.run_monitor

        def scraping_run(source, config, **kwargs):
            inner = kwargs.get("on_report")

            def spy(report):
                if not scraped:
                    err = capsys.readouterr().err
                    match = re.search(
                        r"http://127\.0\.0\.1:(\d+)/metrics", err
                    )
                    assert match, err
                    with urllib.request.urlopen(match.group(0)) as resp:
                        scraped.append(resp.read().decode())
                if inner is not None:
                    inner(report)

            kwargs["on_report"] = spy
            return original(source, config, **kwargs)

        pipeline_pkg.run_monitor = scraping_run
        try:
            assert main(SYNTH + ["--metrics-port", "0"]) == 0
        finally:
            pipeline_pkg.run_monitor = original
        assert scraped
        assert "repro_pipeline_events_total" in scraped[0]


class TestValidation:
    def test_bad_queue_policy_rejected(self):
        with pytest.raises(SystemExit):
            main(SYNTH + ["--queue-policy", "spill"])

    def test_bad_slide_is_an_error(self, capsys):
        code = main([
            "monitor", "--synthetic", "50", "--window", "60",
            "--slide", "120",
        ])
        assert code == 1
        assert "slide" in capsys.readouterr().err
