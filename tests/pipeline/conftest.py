"""Shared fixtures for the streaming-monitor tests.

Monitor runs here are deliberately small (a few hundred routes, a few
thousand events) — the determinism properties under test do not depend
on scale, and the sustained-throughput story lives in
``benchmarks/test_pipeline.py``.
"""

import pytest

from repro.pipeline import MonitorConfig, SyntheticSource


def small_source() -> SyntheticSource:
    """A fresh deterministic feed; call again for an identical one."""
    return SyntheticSource(1600, 600.0, seed=7, n_routes=400)


@pytest.fixture
def sliding_config() -> MonitorConfig:
    return MonitorConfig(
        window=120.0, slide=60.0, batch_size=64, checkpoint_every=1
    )


@pytest.fixture
def tumbling_config() -> MonitorConfig:
    return MonitorConfig(window=150.0, batch_size=64, checkpoint_every=3)
