"""Tests for the windowed Stemming stage and the TAMP annotator."""

import pytest

from repro.collector.stream import fingerprint_events
from repro.pipeline.runtime import Batch, Pipeline, iter_batches
from repro.pipeline.windows import (
    TampAnnotator,
    WindowedStemmer,
    WindowReport,
    WindowState,
)
from repro.stemming.stemmer import Stemmer
from tests.stemming.test_stemmer import mk_event, spike


def run_stage(stage, events, batch_size=16):
    """Feed *events* through *stage* alone; returns the WindowReports."""
    out = []
    for batch in iter_batches(events, batch_size=batch_size):
        out.extend(stage.process(batch) or [])
    out.extend(stage.flush() or [])
    return [item for item in out if isinstance(item, WindowReport)]


def ramp(count, spacing=10.0, start=0.0):
    """Events evenly spaced in time, one prefix each."""
    return [
        mk_event(
            start + i * spacing, "1.1.1.1", "2.2.2.2",
            f"100 200 {300 + i}", f"10.{i >> 8}.{i & 0xFF}.0/24",
        )
        for i in range(count)
    ]


def announces(count):
    """Announcements (not withdrawals) — these mutate the TAMP graph."""
    from repro.collector.events import EventKind

    return [
        mk_event(
            float(i), "1.1.1.1", "2.2.2.2",
            f"100 200 {300 + i}", f"10.0.{i}.0/24",
            EventKind.ANNOUNCE,
        )
        for i in range(count)
    ]


class TestValidation:
    def test_window_must_be_positive(self):
        with pytest.raises(ValueError, match="window"):
            WindowedStemmer(0)

    def test_slide_bounded_by_window(self):
        with pytest.raises(ValueError, match="slide"):
            WindowedStemmer(100.0, 200.0)
        with pytest.raises(ValueError, match="slide"):
            WindowedStemmer(100.0, 0.0)

    def test_non_batch_input_rejected(self):
        with pytest.raises(TypeError, match="expects Batch"):
            WindowedStemmer(100.0).process("nope")


class TestTumbling:
    def test_windows_anchor_on_the_first_timestamp(self):
        events = ramp(30, spacing=10.0, start=55.0)
        stage = WindowedStemmer(100.0)
        reports = run_stage(stage, events)
        assert [r.start for r in reports] == [55.0, 155.0, 255.0]
        assert [r.end for r in reports] == [155.0, 255.0, 355.0]
        assert [r.index for r in reports] == [0, 1, 2]

    def test_fingerprints_match_the_window_slices(self):
        events = ramp(30, spacing=10.0)
        reports = run_stage(WindowedStemmer(100.0), events)
        assert len(reports) == 3
        for i, report in enumerate(reports):
            expected = [
                e for e in events
                if report.start <= e.timestamp < report.end
            ]
            assert report.event_count == len(expected)
            assert report.fingerprint == fingerprint_events(expected)

    def test_event_counts_cover_the_stream_exactly_once(self):
        events = ramp(30, spacing=10.0)
        reports = run_stage(WindowedStemmer(100.0), events)
        assert sum(r.event_count for r in reports) == len(events)


class TestSliding:
    def test_overlapping_windows_advance_by_slide(self):
        events = ramp(30, spacing=10.0)
        reports = run_stage(WindowedStemmer(100.0, 50.0), events)
        starts = [r.start for r in reports]
        assert starts == sorted(starts)
        assert all(
            b - a == pytest.approx(50.0)
            for a, b in zip(starts, starts[1:])
        )
        # Each full window holds window/spacing = 10 events.
        assert reports[1].event_count == 10

    def test_eviction_bounds_the_buffer(self):
        stage = WindowedStemmer(100.0, 50.0)
        run_stage(stage, ramp(200, spacing=10.0))
        # After the final flush the buffer is surrendered entirely;
        # mid-run it never exceeds one window of events.
        stage2 = WindowedStemmer(100.0, 50.0)
        for batch in iter_batches(ramp(200, spacing=10.0), batch_size=16):
            stage2.process(batch)
            assert stage2.buffered <= 100.0 / 10.0 + 16

    def test_detects_the_planted_spike(self):
        quiet = [
            mk_event(
                i * 5.0, "9.9.9.9", "8.8.8.8",
                f"900 800 {700 + i}", f"172.16.{i}.0/24",
            )
            for i in range(10)
        ]
        burst = spike("100 200 300", 30, start_prefix=0)
        events = sorted(quiet + burst, key=lambda e: e.timestamp)
        reports = run_stage(WindowedStemmer(60.0), events)
        top = [
            s for r in reports for s in r.ranked_stems()
            if s["stem"] == "AS200--AS300"
        ]
        assert top and max(s["strength"] for s in top) >= 30


class TestGaps:
    def test_quiet_gap_emits_no_empty_windows(self):
        early = ramp(10, spacing=10.0, start=0.0)
        late = ramp(10, spacing=10.0, start=100000.0)
        reports = run_stage(WindowedStemmer(100.0), early + late)
        assert all(r.event_count > 0 for r in reports)
        # The ladder re-anchors on the event ending the gap.
        assert reports[-1].start == 100000.0


class TestOrderingContract:
    def test_events_reach_downstream_before_their_window_report(self):
        events = ramp(30, spacing=10.0)
        stage = WindowedStemmer(100.0)
        seen_events = 0
        for batch in iter_batches(events, batch_size=16):
            for item in stage.process(batch) or []:
                if isinstance(item, Batch):
                    seen_events += len(item)
                else:
                    # Every event at or before this boundary has
                    # already been passed through.
                    expected = sum(
                        1 for e in events if e.timestamp < item.end
                    )
                    assert seen_events >= expected

    def test_pass_through_batches_preserve_offsets(self):
        events = ramp(20, spacing=10.0)
        stage = WindowedStemmer(1000.0)
        batches = []
        for batch in iter_batches(events, batch_size=8):
            batches.extend(
                item for item in stage.process(batch) or []
                if isinstance(item, Batch)
            )
        assert [b.start_offset for b in batches] == [0, 8, 16]
        assert [e for b in batches for e in b.events] == events


class TestCheckpointing:
    def test_state_round_trip_resumes_bit_identically(self):
        events = ramp(60, spacing=10.0) + spike(
            "100 200 300", 40, start_prefix=100
        )
        events.sort(key=lambda e: e.timestamp)
        baseline = run_stage(WindowedStemmer(100.0, 50.0), events)

        stage = WindowedStemmer(100.0, 50.0)
        reports = []
        split = 40
        for batch in iter_batches(events[:split], batch_size=16):
            reports.extend(
                item for item in stage.process(batch) or []
                if isinstance(item, WindowReport)
            )
        state = stage.export_state()

        resumed = WindowedStemmer(100.0, 50.0)
        resumed.restore_state(WindowState.from_dict(state.to_dict()))
        assert resumed.buffered == stage.buffered
        for batch in iter_batches(
            events[split:], batch_size=16, start_offset=split
        ):
            reports.extend(
                item for item in resumed.process(batch) or []
                if isinstance(item, WindowReport)
            )
        reports.extend(
            item for item in resumed.flush() or []
            if isinstance(item, WindowReport)
        )
        assert [r.to_dict() for r in reports] == [
            r.to_dict() for r in baseline
        ]

    def test_restore_refuses_a_used_stage(self):
        stage = WindowedStemmer(100.0)
        stage.process(Batch(tuple(ramp(5)), 0, 5))
        with pytest.raises(ValueError, match="used window stage"):
            stage.restore_state(WindowState(None, 0, []))


class TestTampAnnotator:
    def test_batches_are_consumed_and_reports_annotated(self):
        events = announces(20)
        stage = TampAnnotator()
        assert stage.process(Batch(tuple(events), 0, 20)) is None
        report = WindowReport(
            index=0, start=0.0, end=60.0, event_count=20,
            fingerprint="x", result=Stemmer().decompose(events),
        )
        (annotated,) = stage.process(report)
        assert annotated is report
        assert report.tamp is not None
        assert report.tamp["routes"] == 20
        assert report.tamp["pulse_adds"] > 0
        assert set(report.tamp) == {
            "routes", "nodes", "edges", "prefixes",
            "pulse_adds", "pulse_removes", "pulse_version",
        }
        assert report.tamp["pulse_version"] == stage.boundary_pulse
        assert report.tamp["pulse_version"] >= report.tamp["pulse_adds"]

    def test_other_items_rejected(self):
        with pytest.raises(TypeError, match="Batch or WindowReport"):
            TampAnnotator().process(42)

    def test_state_round_trip_preserves_routes_and_pulses(self):
        events = announces(20)
        stage = TampAnnotator()
        stage.process(Batch(tuple(events), 0, 20))
        state = stage.export_state()

        fresh = TampAnnotator()
        fresh.restore_state(state)
        assert fresh.tamp.route_count() == stage.tamp.route_count()
        from copy import deepcopy

        report = WindowReport(
            index=0, start=0.0, end=60.0, event_count=0,
            fingerprint="x", result=Stemmer().decompose([]),
        )
        original, resumed = deepcopy(report), deepcopy(report)
        stage.process(original)
        fresh.process(resumed)
        assert original.tamp == resumed.tamp


class TestInPipeline:
    def test_full_two_stage_pipeline_annotates_every_report(self):
        events = ramp(30, spacing=10.0)
        pipe = Pipeline([WindowedStemmer(100.0), TampAnnotator()])
        for batch in iter_batches(events, batch_size=16):
            pipe.feed(batch)
        pipe.flush()
        reports = pipe.take()
        assert len(reports) == 3
        assert all(r.tamp is not None for r in reports)
