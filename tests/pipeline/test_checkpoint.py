"""Tests for checkpoint persistence and the incident log."""

import json

import pytest

from repro.pipeline.checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointError,
    CheckpointState,
    CheckpointStore,
)


def state_at(offset: int, reports: int = 0) -> CheckpointState:
    return CheckpointState(
        source={"type": "stream", "label": "t"},
        config={"window": 100.0},
        offset=offset,
        reports_emitted=reports,
        window={"boundary": 100.0, "window_index": 1, "buffer": []},
        tamp={"routes": [], "pulses": {}},
        stats={"window": {"admitted": 1}},
    )


class TestState:
    def test_json_round_trip(self):
        state = state_at(128, reports=3)
        restored = CheckpointState.from_json(state.to_json())
        assert restored == state

    def test_version_mismatch_refused(self):
        payload = json.loads(state_at(1).to_json())
        payload["version"] = CHECKPOINT_VERSION + 1
        with pytest.raises(CheckpointError, match="version"):
            CheckpointState.from_json(json.dumps(payload))

    def test_garbage_refused(self):
        with pytest.raises(CheckpointError, match="unreadable"):
            CheckpointState.from_json("{not json")

    def test_matches_enforces_source_and_config(self):
        state = state_at(1)
        state.matches(state.source, state.config)  # same: silent
        with pytest.raises(CheckpointError, match="source mismatch"):
            state.matches({"type": "file"}, state.config)
        with pytest.raises(CheckpointError, match="config mismatch"):
            state.matches(state.source, {"window": 200.0})


class TestStore:
    def test_save_and_latest(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save(state_at(10))
        store.save(state_at(20))
        latest = store.latest()
        assert latest is not None and latest.offset == 20

    def test_empty_store_has_no_latest(self, tmp_path):
        assert CheckpointStore(tmp_path).latest() is None

    def test_prunes_to_keep_newest(self, tmp_path):
        store = CheckpointStore(tmp_path, keep=2)
        for offset in (10, 20, 30, 40):
            store.save(state_at(offset))
        names = [p.name for p in store.checkpoints()]
        assert names == [
            "checkpoint-000000000030.json",
            "checkpoint-000000000040.json",
        ]

    def test_keep_validated(self, tmp_path):
        with pytest.raises(ValueError, match="keep"):
            CheckpointStore(tmp_path, keep=0)

    def test_no_tmp_files_left_behind(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save(state_at(10))
        assert not list(tmp_path.glob("*.tmp"))

    def test_checkpoint_is_operator_readable_json(self, tmp_path):
        store = CheckpointStore(tmp_path)
        path = store.save(state_at(10))
        payload = json.loads(path.read_text())
        assert payload["offset"] == 10
        assert payload["version"] == CHECKPOINT_VERSION


class TestIncidentLog:
    def test_append_and_read(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.append_report({"index": 0, "fingerprint": "a"})
        store.append_report({"index": 1, "fingerprint": "b"})
        assert [r["index"] for r in store.read_reports()] == [0, 1]

    def test_missing_log_reads_empty(self, tmp_path):
        assert CheckpointStore(tmp_path).read_reports() == []

    def test_truncate_drops_the_tail(self, tmp_path):
        store = CheckpointStore(tmp_path)
        for index in range(5):
            store.append_report({"index": index})
        assert store.truncate_reports(2) == 3
        assert [r["index"] for r in store.read_reports()] == [0, 1]
        assert store.truncate_reports(2) == 0  # already short enough
