"""End-to-end monitor tests, including the resume acceptance criterion.

The headline contract: ``repro monitor --resume`` from a mid-stream
checkpoint produces an incident list *bit-identical* — same window
fingerprints, same ranked stems, same TAMP annotations — to an
uninterrupted run over the same archive.
"""

import dataclasses

import pytest

from repro.pipeline import (
    CheckpointError,
    CheckpointStore,
    MetricsRegistry,
    MonitorConfig,
    run_monitor,
)
from repro.testkit import CrashPlan, InjectedCrash
from tests.pipeline.conftest import small_source


def crash_and_resume(config, checkpoint_dir, after_events):
    """Kill a monitor mid-run, then resume it; returns the final log."""
    with pytest.raises(InjectedCrash):
        run_monitor(
            small_source(),
            config,
            checkpoint_dir=checkpoint_dir,
            crash_plan=CrashPlan(after_events=after_events),
        )
    result = run_monitor(
        small_source(), config, checkpoint_dir=checkpoint_dir,
        resume=True,
    )
    return result, CheckpointStore(checkpoint_dir).read_reports()


class TestUninterrupted:
    def test_monitor_processes_the_whole_source(self, sliding_config):
        result = run_monitor(small_source(), sliding_config)
        assert result.stopped == "end"
        assert result.events == 1600
        assert result.offset == 1600
        assert len(result.reports) == 10
        assert result.stats["window"]["admitted"] > 0

    def test_reports_land_in_the_incident_log(
        self, sliding_config, tmp_path
    ):
        result = run_monitor(
            small_source(), sliding_config, checkpoint_dir=tmp_path
        )
        store = CheckpointStore(tmp_path)
        assert store.read_reports() == result.report_dicts
        assert result.checkpoints_written >= 1
        assert store.latest().offset == 1600


class TestResumeAcceptance:
    def test_resume_is_bit_identical_sliding(
        self, sliding_config, tmp_path
    ):
        baseline = run_monitor(small_source(), sliding_config)
        base = baseline.report_dicts

        _, resumed = crash_and_resume(
            sliding_config, tmp_path, after_events=800
        )

        assert resumed == base  # full bit-identity, tamp included
        assert [r["fingerprint"] for r in resumed] == [
            r["fingerprint"] for r in base
        ]
        assert [r["components"] for r in resumed] == [
            r["components"] for r in base
        ]

    def test_resume_before_first_checkpoint_replays_fresh(
        self, tumbling_config, tmp_path
    ):
        # checkpoint_every=3 with an early crash: no checkpoint exists
        # yet, so resume must fall back to a clean fresh start.
        baseline = run_monitor(small_source(), tumbling_config)
        _, resumed = crash_and_resume(
            tumbling_config, tmp_path, after_events=192
        )
        assert resumed == baseline.report_dicts

    def test_max_events_stop_is_resumable(self, sliding_config, tmp_path):
        baseline = run_monitor(small_source(), sliding_config)
        partial = run_monitor(
            small_source(),
            dataclasses.replace(sliding_config, max_events=640),
            checkpoint_dir=tmp_path,
        )
        assert partial.stopped == "max_events"
        assert partial.offset == 640
        result = run_monitor(
            small_source(), sliding_config, checkpoint_dir=tmp_path,
            resume=True,
        )
        assert result.stopped == "end"
        log = CheckpointStore(tmp_path).read_reports()
        assert log == baseline.report_dicts

    def test_operational_knobs_do_not_affect_bit_identity(
        self, sliding_config, tmp_path
    ):
        # Resuming with a different checkpoint cadence is legal — only
        # output-shaping config is pinned by the checkpoint.
        baseline = run_monitor(small_source(), sliding_config)
        with pytest.raises(InjectedCrash):
            run_monitor(
                small_source(), sliding_config, checkpoint_dir=tmp_path,
                crash_plan=CrashPlan(after_events=800),
            )
        retuned = dataclasses.replace(
            sliding_config, checkpoint_every=5, pace=0.0
        )
        run_monitor(
            small_source(), retuned, checkpoint_dir=tmp_path, resume=True
        )
        log = CheckpointStore(tmp_path).read_reports()
        assert log == baseline.report_dicts


class TestResumeRefusals:
    def test_resume_needs_a_checkpoint_dir(self, sliding_config):
        with pytest.raises(CheckpointError, match="checkpoint directory"):
            run_monitor(small_source(), sliding_config, resume=True)

    def test_config_mismatch_refused(self, sliding_config, tmp_path):
        with pytest.raises(InjectedCrash):
            run_monitor(
                small_source(), sliding_config, checkpoint_dir=tmp_path,
                crash_plan=CrashPlan(after_events=800),
            )
        other = dataclasses.replace(sliding_config, window=200.0)
        with pytest.raises(CheckpointError, match="config mismatch"):
            run_monitor(
                small_source(), other, checkpoint_dir=tmp_path,
                resume=True,
            )

    def test_source_mismatch_refused(self, sliding_config, tmp_path):
        with pytest.raises(InjectedCrash):
            run_monitor(
                small_source(), sliding_config, checkpoint_dir=tmp_path,
                crash_plan=CrashPlan(after_events=800),
            )
        from repro.pipeline import SyntheticSource

        other = SyntheticSource(1600, 600.0, seed=8, n_routes=400)
        with pytest.raises(CheckpointError, match="source mismatch"):
            run_monitor(
                other, sliding_config, checkpoint_dir=tmp_path,
                resume=True,
            )


class TestInstrumentation:
    def test_metrics_reflect_the_run(self, sliding_config):
        registry = MetricsRegistry()
        result = run_monitor(
            small_source(), sliding_config, registry=registry
        )
        snapshot = registry.snapshot()
        assert snapshot["repro_pipeline_events_total"] == result.events
        assert snapshot["repro_pipeline_windows_total"] == len(
            result.reports
        )
        assert snapshot["repro_pipeline_incidents_total"] == sum(
            len(r.result.components) for r in result.reports
        )
        lag = snapshot["repro_pipeline_window_lag_seconds"]
        assert lag["count"] == len(result.reports)
        assert lag["p99"] >= 0.0
        assert snapshot["repro_pipeline_events_per_second"] > 0

    def test_tracker_follows_the_reports(self, sliding_config):
        result = run_monitor(small_source(), sliding_config)
        # The synthetic feed plants correlated churn; the tracker must
        # have folded the per-window components into incidents.
        assert result.tracker.all_incidents()

    def test_on_report_callback_sees_every_window(self, sliding_config):
        seen = []
        result = run_monitor(
            small_source(), sliding_config, on_report=seen.append
        )
        assert seen == result.reports


class TestBackpressureAccounting:
    def test_drop_policy_losses_are_visible(self):
        config = MonitorConfig(
            window=120.0, slide=60.0, batch_size=64,
            max_queue=1, policy="drop",
        )
        registry = MetricsRegistry()
        result = run_monitor(
            small_source(), config, registry=registry
        )
        dropped = sum(s["dropped"] for s in result.stats.values())
        assert (
            registry.snapshot()["repro_pipeline_dropped_total"] == dropped
        )
