"""End-to-end monitor tests, including the resume acceptance criterion.

The headline contract: ``repro monitor --resume`` from a mid-stream
checkpoint produces an incident list *bit-identical* — same window
fingerprints, same ranked stems, same TAMP annotations — to an
uninterrupted run over the same archive.
"""

import dataclasses

import pytest

from repro.pipeline import (
    CheckpointError,
    CheckpointStore,
    MetricsRegistry,
    MonitorConfig,
    run_monitor,
)
from repro.testkit import CrashPlan, InjectedCrash
from tests.pipeline.conftest import small_source


def crash_and_resume(config, checkpoint_dir, after_events):
    """Kill a monitor mid-run, then resume it; returns the final log."""
    with pytest.raises(InjectedCrash):
        run_monitor(
            small_source(),
            config,
            checkpoint_dir=checkpoint_dir,
            crash_plan=CrashPlan(after_events=after_events),
        )
    result = run_monitor(
        small_source(), config, checkpoint_dir=checkpoint_dir,
        resume=True,
    )
    return result, CheckpointStore(checkpoint_dir).read_reports()


class TestUninterrupted:
    def test_monitor_processes_the_whole_source(self, sliding_config):
        result = run_monitor(small_source(), sliding_config)
        assert result.stopped == "end"
        assert result.events == 1600
        assert result.offset == 1600
        assert len(result.reports) == 10
        assert result.stats["window"]["admitted"] > 0

    def test_reports_land_in_the_incident_log(
        self, sliding_config, tmp_path
    ):
        result = run_monitor(
            small_source(), sliding_config, checkpoint_dir=tmp_path
        )
        store = CheckpointStore(tmp_path)
        assert store.read_reports() == result.report_dicts
        assert result.checkpoints_written >= 1
        assert store.latest().offset == 1600


class TestResumeAcceptance:
    def test_resume_is_bit_identical_sliding(
        self, sliding_config, tmp_path
    ):
        baseline = run_monitor(small_source(), sliding_config)
        base = baseline.report_dicts

        _, resumed = crash_and_resume(
            sliding_config, tmp_path, after_events=800
        )

        assert resumed == base  # full bit-identity, tamp included
        assert [r["fingerprint"] for r in resumed] == [
            r["fingerprint"] for r in base
        ]
        assert [r["components"] for r in resumed] == [
            r["components"] for r in base
        ]

    def test_resume_before_first_checkpoint_replays_fresh(
        self, tumbling_config, tmp_path
    ):
        # checkpoint_every=3 with an early crash: no checkpoint exists
        # yet, so resume must fall back to a clean fresh start.
        baseline = run_monitor(small_source(), tumbling_config)
        _, resumed = crash_and_resume(
            tumbling_config, tmp_path, after_events=192
        )
        assert resumed == baseline.report_dicts

    def test_max_events_stop_is_resumable(self, sliding_config, tmp_path):
        baseline = run_monitor(small_source(), sliding_config)
        partial = run_monitor(
            small_source(),
            dataclasses.replace(sliding_config, max_events=640),
            checkpoint_dir=tmp_path,
        )
        assert partial.stopped == "max_events"
        assert partial.offset == 640
        result = run_monitor(
            small_source(), sliding_config, checkpoint_dir=tmp_path,
            resume=True,
        )
        assert result.stopped == "end"
        log = CheckpointStore(tmp_path).read_reports()
        assert log == baseline.report_dicts

    def test_operational_knobs_do_not_affect_bit_identity(
        self, sliding_config, tmp_path
    ):
        # Resuming with a different checkpoint cadence is legal — only
        # output-shaping config is pinned by the checkpoint.
        baseline = run_monitor(small_source(), sliding_config)
        with pytest.raises(InjectedCrash):
            run_monitor(
                small_source(), sliding_config, checkpoint_dir=tmp_path,
                crash_plan=CrashPlan(after_events=800),
            )
        retuned = dataclasses.replace(
            sliding_config, checkpoint_every=5, pace=0.0
        )
        run_monitor(
            small_source(), retuned, checkpoint_dir=tmp_path, resume=True
        )
        log = CheckpointStore(tmp_path).read_reports()
        assert log == baseline.report_dicts


class TestIncidentResumeAcceptance:
    """The incident-store extension of the bit-identity contract.

    With the store enabled, crash/resume must rebuild the exact same
    managed incidents — ids, lifecycle states, every timestamp — as an
    uninterrupted run, and the sqlite mirror must reconcile to the
    same rows however many times the monitor dies.
    """

    def store_rows(self, checkpoint_dir):
        from repro.incidents import INCIDENT_DB, IncidentStore

        with IncidentStore(checkpoint_dir / INCIDENT_DB) as store:
            return (
                [r.to_dict() for r in store.rows()],
                store.reports_applied(),
            )

    def test_crash_resume_is_bit_identical_for_incidents(
        self, sliding_config, tmp_path
    ):
        clean_dir = tmp_path / "clean"
        crash_dir = tmp_path / "crash"
        clean_dir.mkdir()
        crash_dir.mkdir()

        baseline = run_monitor(
            small_source(), sliding_config, checkpoint_dir=clean_dir
        )
        resumed, _ = crash_and_resume(
            sliding_config, crash_dir, after_events=800
        )

        base_state = baseline.incidents.export_state()
        resumed_state = resumed.incidents.export_state()
        assert resumed_state == base_state  # ids, states, timestamps
        assert base_state["incidents"]  # the feed must produce some

        base_rows, base_applied = self.store_rows(clean_dir)
        crash_rows, crash_applied = self.store_rows(crash_dir)
        assert crash_rows == base_rows
        assert crash_applied == base_applied

    def test_incidents_resolve_at_end_of_stream(self, sliding_config):
        result = run_monitor(small_source(), sliding_config)
        records = result.incidents.all_incidents()
        assert records
        assert all(r.resolved for r in records)
        assert any(
            r.transitions[-1].reason == "end of stream" for r in records
        )

    def test_max_events_stop_leaves_incidents_live(
        self, sliding_config, tmp_path
    ):
        # A hard stop is not end-of-stream: finalize() must not run,
        # or the resumed run would diverge from the uninterrupted one.
        partial = run_monitor(
            small_source(),
            dataclasses.replace(sliding_config, max_events=800),
            checkpoint_dir=tmp_path,
        )
        assert partial.stopped == "max_events"
        assert any(
            not r.resolved for r in partial.incidents.all_incidents()
        )

    def test_double_crash_reconciles_the_store(
        self, sliding_config, tmp_path
    ):
        # Regression: rows written between the last checkpoint and a
        # crash must be reconciled away on *every* resume, including a
        # resume that itself crashes before the next checkpoint.
        clean_dir = tmp_path / "clean"
        crash_dir = tmp_path / "crash"
        clean_dir.mkdir()
        crash_dir.mkdir()

        baseline = run_monitor(
            small_source(), sliding_config, checkpoint_dir=clean_dir
        )

        with pytest.raises(InjectedCrash):
            run_monitor(
                small_source(), sliding_config, checkpoint_dir=crash_dir,
                crash_plan=CrashPlan(after_events=500),
            )
        with pytest.raises(InjectedCrash):
            run_monitor(
                small_source(), sliding_config, checkpoint_dir=crash_dir,
                resume=True, crash_plan=CrashPlan(after_events=400),
            )
        result = run_monitor(
            small_source(), sliding_config, checkpoint_dir=crash_dir,
            resume=True,
        )

        base_rows, base_applied = self.store_rows(clean_dir)
        crash_rows, crash_applied = self.store_rows(crash_dir)
        assert len(crash_rows) == len(base_rows)  # no ghost rows
        assert crash_rows == base_rows
        assert crash_applied == base_applied
        assert (
            result.incidents.export_state()
            == baseline.incidents.export_state()
        )


class TestResumeRefusals:
    def test_resume_needs_a_checkpoint_dir(self, sliding_config):
        with pytest.raises(CheckpointError, match="checkpoint directory"):
            run_monitor(small_source(), sliding_config, resume=True)

    def test_config_mismatch_refused(self, sliding_config, tmp_path):
        with pytest.raises(InjectedCrash):
            run_monitor(
                small_source(), sliding_config, checkpoint_dir=tmp_path,
                crash_plan=CrashPlan(after_events=800),
            )
        other = dataclasses.replace(sliding_config, window=200.0)
        with pytest.raises(CheckpointError, match="config mismatch"):
            run_monitor(
                small_source(), other, checkpoint_dir=tmp_path,
                resume=True,
            )

    def test_source_mismatch_refused(self, sliding_config, tmp_path):
        with pytest.raises(InjectedCrash):
            run_monitor(
                small_source(), sliding_config, checkpoint_dir=tmp_path,
                crash_plan=CrashPlan(after_events=800),
            )
        from repro.pipeline import SyntheticSource

        other = SyntheticSource(1600, 600.0, seed=8, n_routes=400)
        with pytest.raises(CheckpointError, match="source mismatch"):
            run_monitor(
                other, sliding_config, checkpoint_dir=tmp_path,
                resume=True,
            )


class TestInstrumentation:
    def test_metrics_reflect_the_run(self, sliding_config):
        registry = MetricsRegistry()
        result = run_monitor(
            small_source(), sliding_config, registry=registry
        )
        snapshot = registry.snapshot()
        assert snapshot["repro_pipeline_events_total"] == result.events
        assert snapshot["repro_pipeline_windows_total"] == len(
            result.reports
        )
        assert snapshot["repro_pipeline_incidents_total"] == sum(
            len(r.result.components) for r in result.reports
        )
        lag = snapshot["repro_pipeline_window_lag_seconds"]
        assert lag["count"] == len(result.reports)
        assert lag["p99"] >= 0.0
        assert snapshot["repro_pipeline_events_per_second"] > 0

    def test_tracker_follows_the_reports(self, sliding_config):
        result = run_monitor(small_source(), sliding_config)
        # The synthetic feed plants correlated churn; the tracker must
        # have folded the per-window components into incidents.
        assert result.tracker.all_incidents()

    def test_on_report_callback_sees_every_window(self, sliding_config):
        seen = []
        result = run_monitor(
            small_source(), sliding_config, on_report=seen.append
        )
        assert seen == result.reports


class TestBackpressureAccounting:
    def test_drop_policy_losses_are_visible(self):
        config = MonitorConfig(
            window=120.0, slide=60.0, batch_size=64,
            max_queue=1, policy="drop",
        )
        registry = MetricsRegistry()
        result = run_monitor(
            small_source(), config, registry=registry
        )
        dropped = sum(s["dropped"] for s in result.stats.values())
        assert (
            registry.snapshot()["repro_pipeline_dropped_total"] == dropped
        )
