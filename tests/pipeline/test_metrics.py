"""Tests for the monitor's metrics core and its HTTP surface."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.pipeline.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsServer,
)


class TestCounter:
    def test_monotonic(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.to_value() == 5
        with pytest.raises(ValueError, match="only go up"):
            counter.inc(-1)


class TestGauge:
    def test_set_and_inc(self):
        gauge = Gauge("g")
        gauge.set(3.5)
        gauge.inc(-1.5)
        assert gauge.to_value() == 2.0


class TestHistogram:
    def test_bounds_must_be_sorted_and_non_empty(self):
        with pytest.raises(ValueError, match="sorted"):
            Histogram("h", bounds=())
        with pytest.raises(ValueError, match="sorted"):
            Histogram("h", bounds=(2.0, 1.0))

    def test_observations_land_in_buckets(self):
        hist = Histogram("h", bounds=(1.0, 10.0))
        for value in (0.5, 0.7, 5.0, 50.0):
            hist.observe(value)
        value = hist.to_value()
        assert value["count"] == 4
        assert value["sum"] == pytest.approx(56.2)
        assert value["max"] == 50.0
        assert value["buckets"] == {"1": 2, "10": 1}
        assert value["overflow"] == 1

    def test_quantiles_interpolate_to_bucket_bounds(self):
        hist = Histogram("h", bounds=(1.0, 10.0, 100.0))
        for _ in range(99):
            hist.observe(0.5)
        hist.observe(42.0)
        assert hist.quantile(0.5) == 1.0
        # The tail bucket answers with its bound capped at the max seen.
        assert hist.quantile(1.0) == 42.0
        assert hist.quantile(0.0) == 0.5 or hist.quantile(0.0) <= 1.0

    def test_empty_quantile_is_zero(self):
        assert Histogram("h").quantile(0.99) == 0.0

    def test_quantile_range_validated(self):
        with pytest.raises(ValueError, match="quantile"):
            Histogram("h").quantile(1.5)

    def test_render_is_cumulative_prometheus_style(self):
        hist = Histogram("lag", bounds=(1.0, 10.0))
        hist.observe(0.5)
        hist.observe(5.0)
        hist.observe(99.0)
        lines = hist.render()
        assert 'lag_bucket{le="1"} 1' in lines
        assert 'lag_bucket{le="10"} 2' in lines
        assert 'lag_bucket{le="+Inf"} 3' in lines
        assert "lag_count 3" in lines


class TestRegistry:
    def test_get_or_create_returns_the_same_metric(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(ValueError, match="not a gauge"):
            registry.gauge("a")
        with pytest.raises(ValueError, match="not a histogram"):
            registry.histogram("a")

    def test_snapshot_is_json_serializable_and_sorted(self):
        registry = MetricsRegistry()
        registry.gauge("z").set(1)
        registry.counter("a").inc()
        registry.histogram("m").observe(0.2)
        snapshot = registry.snapshot()
        assert list(snapshot) == ["a", "m", "z"]
        json.dumps(snapshot)  # must not raise

    def test_render_text_carries_help_and_type(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total", "things counted").inc(2)
        text = registry.render_text()
        assert "# HELP repro_x_total things counted" in text
        assert "# TYPE repro_x_total counter" in text
        assert "repro_x_total 2" in text


class TestServer:
    def test_serves_text_and_json_on_an_ephemeral_port(self):
        registry = MetricsRegistry()
        registry.counter("repro_pipeline_events_total").inc(7)
        with MetricsServer(registry, port=0) as server:
            base = f"http://127.0.0.1:{server.port}"
            with urllib.request.urlopen(f"{base}/metrics") as resp:
                text = resp.read().decode()
            assert "repro_pipeline_events_total 7" in text
            with urllib.request.urlopen(f"{base}/metrics.json") as resp:
                data = json.loads(resp.read().decode())
            assert data["repro_pipeline_events_total"] == 7
            with pytest.raises(urllib.error.HTTPError):
                urllib.request.urlopen(f"{base}/nope")

    def test_close_is_idempotent(self):
        server = MetricsServer(MetricsRegistry(), port=0)
        server.close()
        server.close()

    def test_thread_cap_bounds_concurrency_but_serves_everyone(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total").inc(3)
        with MetricsServer(registry, port=0, max_threads=2) as server:
            assert server._httpd.max_threads == 2
            url = f"http://127.0.0.1:{server.port}/metrics"
            results: list[int] = []

            def fetch() -> None:
                with urllib.request.urlopen(url) as resp:
                    resp.read()
                    results.append(resp.status)

            threads = [
                threading.Thread(target=fetch) for _ in range(8)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)
            # Far more requests than threads: all are answered, just
            # never more than max_threads at once.
            assert results == [200] * 8
            gate = server._httpd._thread_gate
            assert gate._value == 2  # every slot returned
