"""Tests for the staged pipeline runtime: queues, backpressure, stats."""

import pytest

from repro.pipeline.runtime import (
    Batch,
    FunctionStage,
    Pipeline,
    Stage,
    StageStats,
    iter_batches,
)
from tests.stemming.test_stemmer import spike


class Doubler(Stage):
    """Emits every item twice — exercises fan-out accounting."""

    def process(self, item):
        return (item, item)


class Collector(Stage):
    """Buffers everything; surrenders the buffer at flush."""

    def __init__(self):
        super().__init__()
        self.items = []

    def process(self, item):
        self.items.append(item)
        return None

    def flush(self):
        out = list(self.items)
        self.items.clear()
        return out


class TestBatch:
    def test_offsets_must_span_the_events(self):
        events = tuple(spike("100 200", 3))
        with pytest.raises(ValueError, match="offsets span"):
            Batch(events, 0, 5)

    def test_len(self):
        events = tuple(spike("100 200", 3))
        assert len(Batch(events, 10, 13)) == 3


class TestIterBatches:
    def test_chunks_with_continuing_offsets(self):
        events = spike("100 200", 10)
        batches = list(iter_batches(events, batch_size=4, start_offset=6))
        assert [len(b) for b in batches] == [4, 4, 2]
        assert [(b.start_offset, b.end_offset) for b in batches] == [
            (6, 10), (10, 14), (14, 16),
        ]
        assert [e for b in batches for e in b.events] == events

    def test_batch_size_validated(self):
        with pytest.raises(ValueError, match="batch_size"):
            list(iter_batches([], batch_size=0))


class TestConstruction:
    def test_needs_stages(self):
        with pytest.raises(ValueError, match="at least one stage"):
            Pipeline([])

    def test_rejects_bad_policy(self):
        with pytest.raises(ValueError, match="policy"):
            Pipeline([Doubler()], policy="spill")

    def test_rejects_bad_queue_bound(self):
        with pytest.raises(ValueError, match="max_queue"):
            Pipeline([Doubler()], max_queue=0)

    def test_rejects_duplicate_stage_names(self):
        with pytest.raises(ValueError, match="unique"):
            Pipeline([Doubler(), Doubler()])

    def test_function_stage_takes_the_callable_name(self):
        def halve(item):
            return (item // 2,)

        assert FunctionStage(halve).name == "halve"
        assert FunctionStage(halve, name="h").name == "h"


class TestBackpressure:
    def test_block_policy_refuses_when_full(self):
        pipe = Pipeline([Collector()], max_queue=2)
        assert pipe.offer(1)
        assert pipe.offer(2)
        assert not pipe.offer(3)  # full: caller must pump and retry
        assert pipe.stats()["Collector"]["dropped"] == 0

    def test_drop_policy_discards_the_newest_and_accounts(self):
        pipe = Pipeline([Collector()], max_queue=2, policy="drop")
        assert pipe.offer(1)
        assert pipe.offer(2)
        assert pipe.offer(3)  # accepted-as-dropped
        assert pipe.stats()["Collector"]["dropped"] == 1
        pipe.pump()
        assert pipe.stages[0].items == [1, 2]

    def test_feed_pumps_through_a_full_queue(self):
        pipe = Pipeline([FunctionStage(lambda i: (i,), name="id")],
                        max_queue=1)
        for i in range(5):
            pipe.feed(i)
        assert pipe.take() == list(range(5))
        assert pipe.stats()["id"]["dropped"] == 0


class TestPumping:
    def test_downstream_first_drains_before_admitting_more(self):
        pipe = Pipeline([Doubler(), Collector()], max_queue=4)
        pipe.feed("a")
        pipe.feed("b")
        pipe.pump()
        assert pipe.stages[1].items == ["a", "a", "b", "b"]
        assert pipe.depths() == {"Doubler": 0, "Collector": 0}

    def test_pump_once_reports_quiescence(self):
        pipe = Pipeline([Doubler()])
        assert not pipe.pump_once()
        pipe.offer(1)
        assert pipe.pump_once()

    def test_flush_routes_buffered_state_downstream(self):
        pipe = Pipeline([Collector(), Doubler()])
        pipe.feed(1)
        pipe.feed(2)
        assert pipe.take() == []  # Collector is hoarding
        pipe.flush()
        assert pipe.take() == [1, 1, 2, 2]

    def test_take_drains_outputs(self):
        pipe = Pipeline([Doubler()])
        pipe.feed(9)
        assert pipe.take() == [9, 9]
        assert pipe.take() == []


class TestStats:
    def test_admitted_emitted_and_peak_depth(self):
        pipe = Pipeline([Doubler(), Collector()], max_queue=8)
        for i in range(3):
            pipe.feed(i)
        stats = pipe.stats()
        assert stats["Doubler"]["admitted"] == 3
        assert stats["Doubler"]["emitted"] == 6
        assert stats["Collector"]["admitted"] == 6
        assert stats["Collector"]["peak_depth"] >= 1

    def test_stats_round_trip_through_restore(self):
        pipe = Pipeline([Doubler()])
        pipe.feed(1)
        saved = pipe.stats()
        fresh = Pipeline([Doubler()])
        fresh.restore_stats(saved)
        assert fresh.stats() == saved

    def test_stage_stats_dict_round_trip(self):
        stats = StageStats(admitted=4, emitted=8, dropped=1, peak_depth=3)
        assert StageStats.from_dict(stats.to_dict()) == stats
