"""Tests for the anomaly catalog families and the scenario registry."""

import pytest

from repro.scenarios import catalog, registry
from repro.scenarios.labels import IncidentClass, LabeledIncident

#: The five related-work families the library adds beyond the paper.
CATALOG_NAMES = (
    "burst-announcements",
    "valley-route-leak",
    "interception-hijack",
    "hyper-specific-flood",
    "community-signal",
)


class TestRegistry:
    def test_all_entries_registered_once(self):
        names = registry.names()
        assert len(names) == len(set(names))
        assert len(names) >= 13

    def test_catalog_families_present(self):
        assert set(CATALOG_NAMES) <= set(registry.names())

    def test_scored_names_excludes_unscored(self):
        scored = registry.scored_names()
        assert "community-mistag" not in scored
        assert set(CATALOG_NAMES) <= set(scored)

    def test_get_unknown_name_lists_choices(self):
        with pytest.raises(KeyError, match="burst-announcements"):
            registry.get("no-such-scenario")

    def test_describe_mentions_reference_and_scoring(self):
        text = registry.get("burst-announcements").describe()
        assert "1905.05835" in text
        assert "window=60.0s" in text

    def test_overrides_reach_the_builder(self):
        incident = registry.generate(
            "burst-announcements", seed=1, bursts=2, prefixes_per_burst=5
        )
        assert incident.details["bursts"] == 2

    def test_build_stamps_seed(self):
        incident = registry.generate("route-leak", seed=9)
        assert incident.seed == 9


@pytest.fixture(scope="module", params=CATALOG_NAMES)
def built(request):
    incident = registry.generate(request.param, seed=0)
    return request.param, incident


class TestCatalogInvariants:
    """Label invariants every catalog family must satisfy."""

    def test_returns_labeled_incident(self, built):
        name, incident = built
        assert isinstance(incident, LabeledIncident)
        assert incident.name == name

    def test_stream_nonempty_and_sorted(self, built):
        _, incident = built
        times = [event.timestamp for event in incident.stream]
        assert times
        assert times == sorted(times)

    def test_ground_truth_present(self, built):
        _, incident = built
        assert incident.true_stems
        assert incident.affected_prefixes
        assert incident.window.duration > 0

    def test_window_within_stream_span(self, built):
        _, incident = built
        stream = incident.stream
        assert incident.window.overlaps(
            stream.start_time, stream.end_time + 1e-9
        )

    def test_seed_recorded(self, built):
        _, incident = built
        assert incident.seed == 0

    def test_affected_prefixes_appear_in_stream(self, built):
        _, incident = built
        seen = {event.prefix for event in incident.stream}
        assert incident.affected_prefixes <= seen


class TestFamilySpecifics:
    def test_burst_true_stem_is_burster_edge(self):
        incident = catalog.burst_announcements(seed=0)
        assert incident.true_stems == ((2914, catalog.AS_BURSTER),)
        assert incident.incident_class is IncidentClass.BURST
        assert sum(incident.details["burst_sizes"]) == len(
            incident.affected_prefixes
        )

    def test_valley_leak_edge_bottoms_out_at_provider(self):
        incident = catalog.valley_route_leak(seed=0)
        assert incident.true_stems == ((catalog.AS_LEAKER, 3356),)
        leaked_paths = [
            event.attributes.as_path
            for event in incident.stream
            if catalog.AS_LEAKER in event.attributes.as_path
        ]
        assert leaked_paths
        # The valley: provider routes re-exported through the customer.
        for path in leaked_paths:
            sequence = tuple(path)
            position = sequence.index(catalog.AS_LEAKER)
            assert sequence[position + 1] == 3356

    def test_interception_forges_nonexistent_edge(self):
        incident = catalog.interception_hijack(seed=0)
        assert incident.true_stems == (
            (catalog.AS_INTERCEPTOR, catalog.AS_VICTIM),
        )

    def test_hyper_specifics_are_slash25_to_32(self):
        incident = catalog.hyper_specific_flood(seed=0)
        assert all(
            25 <= prefix.length <= 32
            for prefix in incident.affected_prefixes
        )
        assert incident.details["flood_count"] == len(
            incident.affected_prefixes
        )

    def test_community_signal_moves_no_prefixes(self):
        incident = catalog.community_signal(seed=0)
        tagged = [
            event
            for event in incident.stream
            if catalog.SIGNAL_COMMUNITY in event.attributes.communities
        ]
        assert tagged
        # Attribute churn only: every affected prefix stays announced.
        assert incident.affected_prefixes <= {
            event.prefix for event in incident.stream
        }
