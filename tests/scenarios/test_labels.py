"""Unit tests for the v2 label schema and the legacy compat shims."""

import dataclasses
import json

import pytest

from repro.net.prefix import Prefix
from repro.scenarios.labels import (
    Incident,
    IncidentClass,
    LabeledIncident,
    ScenarioDetails,
    TimeWindow,
)
from tests.collector.test_stream import event


def stream_fixture(n=6):
    from repro.collector.stream import EventStream

    return EventStream([event(10.0 + float(t)) for t in range(n)])


class TestScenarioDetails:
    def test_mapping_protocol(self):
        details = ScenarioDetails(flap_count=10, period=60.0, tag="x")
        assert details["flap_count"] == 10
        assert details["period"] == 60.0
        assert len(details) == 3
        assert set(details) == {"flap_count", "period", "tag"}
        assert details.get("missing") is None
        assert "flap_count" in details

    def test_missing_key_raises(self):
        with pytest.raises(KeyError):
            ScenarioDetails(a=1)["b"]

    def test_no_item_assignment(self):
        details = ScenarioDetails(a=1)
        with pytest.raises(TypeError):
            details["a"] = 2  # type: ignore[index]

    def test_lists_become_int_tuples(self):
        details = ScenarioDetails(path=[7018, 64900])
        assert details["path"] == (7018, 64900)

    def test_rejects_non_int_tuple(self):
        with pytest.raises(TypeError, match="all-int"):
            ScenarioDetails(path=(1, "a"))

    def test_rejects_unsupported_value_type(self):
        with pytest.raises(TypeError, match="unsupported type"):
            ScenarioDetails(nested={"a": 1})

    def test_equality_with_plain_mapping(self):
        details = ScenarioDetails(a=1, b="x")
        assert details == {"a": 1, "b": "x"}
        assert details == ScenarioDetails(a=1, b="x")
        assert details != {"a": 2, "b": "x"}

    def test_hashable(self):
        assert hash(ScenarioDetails(a=1)) == hash(ScenarioDetails(a=1))

    def test_to_dict_json_round_trip(self):
        details = ScenarioDetails(path=(1, 2, 3), rate=0.5, on=True)
        plain = details.to_dict()
        assert plain["path"] == [1, 2, 3]
        assert json.loads(json.dumps(plain)) == plain
        assert ScenarioDetails.from_mapping(plain) == details


class TestTimeWindow:
    def test_duration(self):
        assert TimeWindow(10.0, 70.0).duration == 60.0

    def test_end_before_start_raises(self):
        with pytest.raises(ValueError, match="ends before"):
            TimeWindow(10.0, 5.0)

    def test_overlap_semantics(self):
        window = TimeWindow(100.0, 200.0)
        assert window.overlaps(150.0, 160.0)
        assert window.overlaps(50.0, 101.0)
        assert window.overlaps(199.0, 300.0)
        assert not window.overlaps(0.0, 100.0)
        assert not window.overlaps(200.0, 300.0)

    def test_zero_length_window_overlaps_containing_span(self):
        instant = TimeWindow(50.0, 50.0)
        assert instant.overlaps(0.0, 100.0)
        assert instant.overlaps(50.0, 60.0)
        assert not instant.overlaps(60.0, 100.0)

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            TimeWindow(0.0, 1.0).start = 5.0  # type: ignore[misc]


class TestLabeledIncident:
    def build(self, **kwargs):
        defaults = dict(
            name="test-incident",
            incident_class=IncidentClass.BURST,
            stream=stream_fixture(),
            true_stems=((100, 200), (200, 300)),
            affected_prefixes=frozenset({Prefix.parse("10.0.0.0/24")}),
            window=TimeWindow(10.0, 16.0),
            details=ScenarioDetails(bursts=4),
            seed=7,
        )
        defaults.update(kwargs)
        return LabeledIncident(**defaults)

    def test_frozen(self):
        incident = self.build()
        with pytest.raises(dataclasses.FrozenInstanceError):
            incident.name = "other"  # type: ignore[misc]

    def test_true_stem_is_first_of_true_stems(self):
        assert self.build().true_stem == (100, 200)
        assert self.build(true_stems=()).true_stem is None

    def test_labels_dict_is_json_serializable(self):
        labels = self.build().labels_dict()
        assert labels["name"] == "test-incident"
        assert labels["class"] == "burst"
        assert labels["seed"] == 7
        assert labels["true_stems"] == [["100", "200"], ["200", "300"]]
        assert labels["affected_prefixes"] == ["10.0.0.0/24"]
        assert labels["window"] == {"start": 10.0, "end": 16.0}
        assert labels["events"] == 6
        assert labels["details"] == {"bursts": 4}
        round_tripped = json.loads(self.build().labels_json())
        assert round_tripped["fingerprint"] == labels["fingerprint"]


class TestLegacyIncidentFactory:
    def test_returns_labeled_incident(self):
        stream = stream_fixture()
        incident = Incident(
            "route-leak",
            stream,
            (11423, 209),
            {Prefix.parse("128.32.0.0/16")},
            {"cycles": 2},
        )
        assert isinstance(incident, LabeledIncident)
        assert incident.true_stems == ((11423, 209),)
        assert incident.incident_class is IncidentClass.ROUTE_LEAK
        assert incident.details["cycles"] == 2
        assert incident.window == TimeWindow(10.0, 15.0)

    def test_none_true_stem_gives_empty_tuple(self):
        incident = Incident("community-mistag", stream_fixture(), None)
        assert incident.true_stems == ()
        assert incident.incident_class is IncidentClass.MISCONFIGURATION

    def test_unknown_name_defaults_to_misconfiguration(self):
        incident = Incident("never-heard-of-it", stream_fixture(), (1, 2))
        assert incident.incident_class is IncidentClass.MISCONFIGURATION

    def test_explicit_class_wins(self):
        incident = Incident(
            "custom", stream_fixture(), (1, 2),
            incident_class=IncidentClass.OSCILLATION,
        )
        assert incident.incident_class is IncidentClass.OSCILLATION

    def test_importable_from_legacy_module(self):
        from repro.simulator.scenarios import Incident as LegacyIncident

        assert LegacyIncident is Incident
