"""Tests for the ``repro scenarios`` CLI surface."""

import json

import pytest

from repro.cli import main
from repro.collector.stream import EventStream
from repro.scenarios import registry
from repro.scenarios.score import Scorecard

#: The cheapest scored scenario, for score-path tests.
FAST = "burst-announcements"


class TestListDescribe:
    def test_list_prints_every_entry(self, capsys):
        assert main(["scenarios", "list"]) == 0
        out = capsys.readouterr().out
        for name in registry.names():
            assert name in out
        assert "(not scored)" in out  # community-mistag

    def test_describe_one(self, capsys):
        assert main(["scenarios", "describe", FAST]) == 0
        out = capsys.readouterr().out
        assert "1905.05835" in out
        assert "window=" in out

    def test_unknown_name_exits_2(self, capsys):
        assert main(["scenarios", "describe", "bogus"]) == 2
        assert "unknown scenario" in capsys.readouterr().err


class TestGenerate:
    def test_writes_events_and_labels(self, tmp_path, capsys):
        code = main(
            ["scenarios", "generate", FAST, "-o", str(tmp_path), "--seed", "5"]
        )
        assert code == 0
        events_path = tmp_path / f"{FAST}.events.jsonl"
        labels_path = tmp_path / f"{FAST}.labels.json"
        assert events_path.exists() and labels_path.exists()
        labels = json.loads(labels_path.read_text())
        stream = EventStream.load(events_path)
        assert labels["seed"] == 5
        assert labels["events"] == len(stream)
        assert labels["fingerprint"] == stream.fingerprint()
        assert labels["true_stems"]
        # The artifact reproduces from the registry at the same seed.
        assert (
            registry.generate(FAST, seed=5).stream.fingerprint()
            == labels["fingerprint"]
        )


class TestScore:
    def test_score_writes_card(self, tmp_path, capsys):
        card_path = tmp_path / "card.json"
        code = main(
            ["scenarios", "score", FAST, "-o", str(card_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "F1=" in out and FAST in out
        card = Scorecard.load(card_path)
        assert FAST in card.scores
        assert card.scores[FAST].detected

    def test_gate_passes_against_itself(self, tmp_path, capsys):
        card_path = tmp_path / "base.json"
        assert main(["scenarios", "score", FAST, "-o", str(card_path)]) == 0
        code = main(
            ["scenarios", "score", FAST, "--baseline", str(card_path)]
        )
        assert code == 0
        assert "no regressions" in capsys.readouterr().out

    def test_degraded_detector_trips_gate(self, tmp_path, capsys):
        card_path = tmp_path / "base.json"
        assert main(["scenarios", "score", FAST, "-o", str(card_path)]) == 0
        code = main(
            [
                "scenarios", "score", FAST,
                "--baseline", str(card_path),
                "--min-strength", "1000000000",
            ]
        )
        assert code == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_missing_baseline_exits_2(self, tmp_path, capsys):
        code = main(
            [
                "scenarios", "score", FAST,
                "--baseline", str(tmp_path / "nope.json"),
            ]
        )
        assert code == 2
        assert "not found" in capsys.readouterr().err
