"""The tier-1 detection-quality gate.

Regenerates every scored scenario at seed 0 and compares against the
checked-in baseline (``bench_results/baselines/SCORE_scenarios.json``),
exactly as the CI ``scenario-score`` job does. A change that degrades
Stemming's precision/recall on the labeled catalog fails here, in the
same spirit as ``benchmarks/bench_guard.py`` for performance.
"""

from pathlib import Path

import pytest

from repro.scenarios.score import (
    Scorecard,
    build_scorecard,
    compare_scorecards,
    format_comparison,
)

BASELINE = (
    Path(__file__).resolve().parents[2]
    / "bench_results"
    / "baselines"
    / "SCORE_scenarios.json"
)


@pytest.fixture(scope="module")
def baseline() -> Scorecard:
    assert BASELINE.exists(), (
        f"missing detection-quality baseline {BASELINE}; regenerate with"
        " `repro scenarios score -o bench_results/baselines/"
        "SCORE_scenarios.json`"
    )
    return Scorecard.load(BASELINE)


@pytest.fixture(scope="module")
def fresh(baseline) -> Scorecard:
    config = baseline.config
    return build_scorecard(
        seed=int(config.get("seed", 0)),
        min_strength=int(config.get("min_strength", 2)),
        max_components=int(config.get("max_components", 16)),
    )


def test_baseline_covers_every_scored_scenario(baseline):
    from repro.scenarios import registry

    assert set(baseline.scores) == set(registry.scored_names())


def test_baseline_detects_everything(baseline):
    undetected = [
        name
        for name, score in baseline.scores.items()
        if not score.detected
    ]
    assert undetected == []


def test_baseline_has_one_merged_incident_per_scenario(baseline):
    """The lifecycle acceptance bar: every labeled scenario coalesces
    into exactly one managed incident, with its timing recorded."""
    for name, score in sorted(baseline.scores.items()):
        assert score.incidents == 1, (
            f"{name}: expected exactly one merged incident,"
            f" baseline has {score.incidents}"
        )
        assert score.detection_latency is not None, (
            f"{name}: baseline lacks a detection latency"
        )
        assert score.time_to_resolve is not None, (
            f"{name}: baseline lacks a time-to-resolve"
        )


def test_no_detection_regressions(fresh, baseline):
    regressions, checks = compare_scorecards(fresh, baseline)
    # 6 [0,1] metrics + best_rank + incidents + 2 lifecycle timings
    # per baseline scenario.
    assert checks >= 10 * len(baseline.scores)
    assert not regressions, "\n" + format_comparison(
        fresh, baseline, regressions
    )


def test_fresh_scores_match_pinned_artifact(fresh):
    """Seed-0 scores are bitwise-stable, not merely within tolerance.

    The checked-in ``bench_results/SCORE_scenarios.json`` is the exact
    artifact a fresh run produces; drift here means generation or
    scoring became nondeterministic.
    """
    pinned_path = BASELINE.parents[1] / "SCORE_scenarios.json"
    pinned = Scorecard.load(pinned_path)
    assert fresh.to_dict()["scenarios"] == pinned.to_dict()["scenarios"]
