"""Unit tests for the precision/recall scorer and the regression gate."""

import dataclasses

import pytest

from repro.pipeline.windows import WindowedStemmer
from repro.scenarios import catalog, registry
from repro.scenarios.score import (
    DEFAULT_TOLERANCE,
    IncidentScore,
    Scorecard,
    build_scorecard,
    compare_scorecards,
    format_comparison,
    score_incident,
    score_ranked,
)

A, B, C, D = (1, 2), (2, 3), (3, 4), (4, 5)


class TestScoreRanked:
    def test_perfect_single_stem(self):
        score = score_ranked([A, B, C], [A], k=3)
        assert score.precision == pytest.approx(1 / 3)
        assert score.recall == 1.0
        assert score.best_rank == 1
        assert score.top1_hit and score.topk_hit

    def test_known_precision_recall(self):
        # Truth {A, B}; top-3 holds A, C, B: 2 matches of 3 considered,
        # both truths covered.
        score = score_ranked([A, C, B, D], [A, B], k=3)
        assert score.precision == pytest.approx(2 / 3)
        assert score.recall == 1.0
        assert score.f1 == pytest.approx(0.8)

    def test_miss_in_top_k_but_ranked_later(self):
        score = score_ranked([B, C, D, A], [A], k=3)
        assert score.precision == 0.0
        assert score.recall == 0.0
        assert score.best_rank == 4  # found in the full ranking
        assert not score.top1_hit and not score.topk_hit

    def test_k_larger_than_ranking(self):
        # Precision counts over stems actually considered, so a short
        # but correct ranking is not penalized.
        score = score_ranked([A], [A], k=10)
        assert score.precision == 1.0
        assert score.recall == 1.0

    def test_empty_ranking_scores_zero(self):
        score = score_ranked([], [A], k=3)
        assert score.precision == score.recall == score.f1 == 0.0
        assert score.best_rank is None

    def test_multiple_true_stems_partial_coverage(self):
        score = score_ranked([A, C, D], [A, B], k=3)
        assert score.recall == pytest.approx(0.5)
        assert score.precision == pytest.approx(1 / 3)

    def test_duplicates_count_once_for_recall(self):
        score = score_ranked([A, A, A], [A, B], k=3)
        assert score.precision == 1.0
        assert score.recall == pytest.approx(0.5)

    def test_invalid_k_raises(self):
        with pytest.raises(ValueError, match="positive"):
            score_ranked([A], [A], k=0)

    def test_empty_truth_raises(self):
        with pytest.raises(ValueError, match="ground truth"):
            score_ranked([A], [], k=3)


@pytest.fixture(scope="module")
def burst():
    return registry.generate("burst-announcements", seed=0)


@pytest.fixture(scope="module")
def burst_entry():
    return registry.get("burst-announcements")


class TestScoreIncident:
    def test_detects_burst_ground_truth(self, burst, burst_entry):
        score = score_incident(
            burst, window=burst_entry.window, slide=burst_entry.slide
        )
        assert score.detected
        assert score.best_rank == 1
        assert score.f1 == pytest.approx(1.0)
        assert 0.0 < score.prefix_recall <= 1.0
        assert score.windows_scored <= score.windows

    def test_unscoreable_incident_raises(self, burst):
        unlabeled = dataclasses.replace(burst, true_stems=())
        with pytest.raises(ValueError, match="no true stems"):
            score_incident(unlabeled, window=60.0)

    def test_degraded_stage_scores_zero(self, burst, burst_entry):
        # A detector whose strength threshold filters everything out
        # must produce an honest zero, not an error.
        broken = WindowedStemmer(
            burst_entry.window,
            burst_entry.slide,
            min_strength=10**9,
        )
        score = score_incident(burst, window=burst_entry.window, stage=broken)
        assert not score.detected
        assert score.f1 == 0.0
        assert score.best_rank is None

    def test_round_trips_through_dict(self, burst, burst_entry):
        score = score_incident(
            burst, window=burst_entry.window, slide=burst_entry.slide
        )
        # to_dict rounds to 6 decimals, so compare in artifact form.
        round_tripped = IncidentScore.from_dict(score.to_dict())
        assert round_tripped.to_dict() == score.to_dict()


class TestScorecard:
    def test_save_load_round_trip(self, tmp_path, burst, burst_entry):
        card = Scorecard(config={"seed": 0})
        card.add(
            score_incident(
                burst, window=burst_entry.window, slide=burst_entry.slide
            )
        )
        path = tmp_path / "card.json"
        card.save(path)
        loaded = Scorecard.load(path)
        assert loaded.to_dict() == card.to_dict()
        assert loaded.config == {"seed": 0}

    def test_build_scorecard_rejects_unscored(self):
        with pytest.raises(ValueError, match="community-mistag"):
            build_scorecard(["community-mistag"])


def card_with(**metrics) -> Scorecard:
    base = dict(
        scenario="s",
        incident_class="burst",
        seed=0,
        events=10,
        windows=4,
        windows_scored=4,
        precision=1.0,
        recall=1.0,
        f1=1.0,
        best_rank=1,
        top1_rate=1.0,
        topk_rate=1.0,
        prefix_recall=1.0,
        detected=True,
    )
    base.update(metrics)
    card = Scorecard()
    card.add(IncidentScore(**base))
    return card


class TestCompareScorecards:
    def test_identical_cards_pass(self):
        regressions, checks = compare_scorecards(card_with(), card_with())
        assert regressions == []
        assert checks > 0

    def test_drop_within_tolerance_passes(self):
        fresh = card_with(f1=1.0 - DEFAULT_TOLERANCE / 2)
        regressions, _ = compare_scorecards(fresh, card_with())
        assert regressions == []

    def test_drop_beyond_tolerance_fails(self):
        fresh = card_with(f1=0.5)
        regressions, _ = compare_scorecards(fresh, card_with())
        assert [(r.scenario, r.metric) for r in regressions] == [("s", "f1")]

    def test_rank_worsening_fails(self):
        fresh = card_with(best_rank=3)
        regressions, _ = compare_scorecards(fresh, card_with())
        assert [r.metric for r in regressions] == ["best_rank"]
        # Slack forgives it.
        regressions, _ = compare_scorecards(
            fresh, card_with(), rank_slack=2
        )
        assert regressions == []

    def test_lost_rank_fails(self):
        fresh = card_with(best_rank=None, detected=False)
        regressions, _ = compare_scorecards(fresh, card_with())
        assert "best_rank" in [r.metric for r in regressions]

    def test_missing_scenario_fails(self):
        regressions, _ = compare_scorecards(Scorecard(), card_with())
        assert [r.metric for r in regressions] == ["present"]
        report = format_comparison(Scorecard(), card_with(), regressions)
        assert "MISSING" in report

    def test_new_scenario_is_not_a_failure(self):
        regressions, _ = compare_scorecards(card_with(), Scorecard())
        assert regressions == []

    def test_improvement_passes(self):
        base = card_with(f1=0.5, precision=0.5)
        regressions, _ = compare_scorecards(card_with(), base)
        assert regressions == []


class TestPerturbationTripsGate:
    """End-to-end proof: degrading the detector fails the comparison."""

    def test_degraded_min_strength_regresses(self, burst, burst_entry):
        good = Scorecard()
        good.add(
            score_incident(
                burst, window=burst_entry.window, slide=burst_entry.slide
            )
        )
        bad = Scorecard()
        bad.add(
            score_incident(
                burst,
                window=burst_entry.window,
                slide=burst_entry.slide,
                min_strength=10**9,
            )
        )
        regressions, _ = compare_scorecards(bad, good)
        metrics = {r.metric for r in regressions}
        assert "f1" in metrics and "best_rank" in metrics
        report = format_comparison(bad, good, regressions)
        assert "REGRESSED" in report
