"""Chaos cross-tests: fault plans from the testkit over labeled streams.

Two properties, in the spirit of the resume-chaos suite:

* event-level faults (loss, reordering, stall-and-burst) degrade the
  detection scores *gracefully* — the scorer never crashes, metrics
  stay in range, and a damaged stream never scores better than the
  clean one by more than the gate tolerance;
* byte-level corruption of the MRT wire form is *accounted for* — the
  non-strict ingest path skips the damaged records and the stream's
  :class:`IngestReport` explains exactly how much was lost.
"""

import dataclasses
import io

import pytest

from repro.mrt.loader import dump_updates, load_updates
from repro.scenarios import registry
from repro.scenarios.score import DEFAULT_TOLERANCE, score_incident
from repro.testkit.faults import apply_plan_to_bytes, apply_plan_to_stream

#: Event-level fault plans, name → plan steps.
PLANS = {
    "light-loss": [("drop-events", {"rate": 0.2})],
    "heavy-loss": [("drop-events", {"rate": 0.8})],
    "reorder": [("reorder-events", {"rate": 0.5, "max_shift": 5.0})],
    "stall-burst": [
        ("stall-burst", {"stall_start": 120.0, "stall_seconds": 60.0})
    ],
    "compound": [
        ("drop-events", {"rate": 0.3}),
        ("reorder-events", {"rate": 0.3, "max_shift": 2.0}),
    ],
}


@pytest.fixture(scope="module", params=["burst-announcements", "interception-hijack"])
def scored_clean(request):
    entry = registry.get(request.param)
    incident = entry.build(seed=0)
    clean = score_incident(
        incident, window=entry.window, slide=entry.slide, top_k=entry.top_k
    )
    return entry, incident, clean


@pytest.mark.parametrize("plan_name", sorted(PLANS))
def test_faulted_streams_degrade_gracefully(scored_clean, plan_name):
    entry, incident, clean = scored_clean
    faulted_stream = apply_plan_to_stream(
        incident.stream, PLANS[plan_name], seed=7
    )
    faulted = dataclasses.replace(incident, stream=faulted_stream)
    score = score_incident(
        faulted, window=entry.window, slide=entry.slide, top_k=entry.top_k
    )
    for metric in ("precision", "recall", "f1", "top1_rate", "topk_rate"):
        value = getattr(score, metric)
        assert 0.0 <= value <= 1.0
        # Damage never *improves* detection beyond the gate tolerance.
        assert value <= getattr(clean, metric) + DEFAULT_TOLERANCE


def test_total_loss_scores_zero_not_crash(scored_clean):
    entry, incident, _ = scored_clean
    emptied = apply_plan_to_stream(
        incident.stream, [("drop-events", {"rate": 1.0})], seed=1
    )
    faulted = dataclasses.replace(incident, stream=emptied)
    score = score_incident(faulted, window=entry.window, slide=entry.slide)
    assert score.events == 0
    assert score.f1 == 0.0
    assert not score.detected


def test_corrupted_wire_loss_is_accounted_for():
    """MRT-level corruption: the ingest report explains the loss."""
    incident = registry.generate("burst-announcements", seed=0)
    buffer = io.BytesIO()
    dump_updates(tuple(incident.stream), buffer)
    corrupted = apply_plan_to_bytes(
        buffer.getvalue(),
        [("corrupt-payloads", {"rate": 0.4, "byte_rate": 0.3})],
        seed=11,
    )
    with pytest.warns(UserWarning, match="skipped"):
        loaded = load_updates(io.BytesIO(corrupted))
    report = loaded.ingest_report
    assert report is not None
    assert report.records_skipped > 0
    # Accounting closes: every record read is ignored, decoded or
    # skipped, and the decoded ones produced the surviving events.
    assert (
        report.records_decoded
        + report.records_skipped
        + report.records_ignored
        == report.records_read
    )
    # A dropped announce also silences its later withdrawal, so events
    # never exceed what the surviving records could produce.
    assert report.events_produced == len(loaded)
    assert report.events_produced <= report.records_decoded
    assert report.error_counts
