"""Property tests: seeded determinism and wire round-trips.

Small sites and few examples keep these inside tier-1 budgets; the
properties themselves are the contract the scorecard baseline depends
on — if the same seed stopped reproducing the same stream, every
checked-in score would silently drift.
"""

import io

import pytest
from hypothesis import HealthCheck, assume, given, settings, strategies as st

from repro.mrt.ingest import IngestPolicy
from repro.mrt.loader import dump_updates, load_updates
from repro.scenarios import catalog

#: Shrunken knobs so a single generation runs in tens of milliseconds.
SMALL = dict(n_reflectors=2, n_prefixes=12)

FAST_SETTINGS = settings(
    max_examples=6,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)

seeds = st.integers(min_value=0, max_value=2**16 - 1)


@FAST_SETTINGS
@given(seed=seeds)
def test_same_seed_reproduces_fingerprint(seed):
    first = catalog.burst_announcements(seed, bursts=2, **SMALL)
    second = catalog.burst_announcements(seed, bursts=2, **SMALL)
    assert first.stream.fingerprint() == second.stream.fingerprint()
    assert first.labels_dict() == second.labels_dict()


@FAST_SETTINGS
@given(seed=seeds)
def test_same_seed_reproduces_every_family(seed):
    for family, knobs in (
        (catalog.valley_route_leak, dict(cycles=1, victim_origins=2)),
        (catalog.hyper_specific_flood, dict(flood_count=8)),
        (catalog.community_signal, dict(cycles=2)),
    ):
        first = family(seed, **SMALL, **knobs)
        second = family(seed, **SMALL, **knobs)
        assert first.stream.fingerprint() == second.stream.fingerprint()


@FAST_SETTINGS
@given(seed_a=seeds, seed_b=seeds)
def test_distinct_seeds_give_distinct_streams(seed_a, seed_b):
    assume(seed_a != seed_b)
    # Burst timing is drawn from the seed, so two seeds virtually never
    # produce the same event sequence.
    first = catalog.burst_announcements(seed_a, bursts=2, **SMALL)
    second = catalog.burst_announcements(seed_b, bursts=2, **SMALL)
    assert first.stream.fingerprint() != second.stream.fingerprint()


@FAST_SETTINGS
@given(seed=seeds)
def test_strict_ingest_round_trip(seed):
    """Scenario streams survive the MRT wire under a strict policy.

    Every event dumps to one BGP4MP record and every record decodes
    back — no skips, no quarantine — and the collector re-derives the
    same announcement/withdrawal structure over the same prefixes.
    """
    incident = catalog.hyper_specific_flood(seed, flood_count=8, **SMALL)
    events = tuple(incident.stream)
    buffer = io.BytesIO()
    written = dump_updates(events, buffer)
    assert written == len(events)
    buffer.seek(0)
    loaded = load_updates(buffer, policy=IngestPolicy(strict=True))
    report = loaded.ingest_report
    assert report.records_decoded == len(events)
    assert report.records_skipped == 0
    assert len(loaded) == len(events)
    assert {e.prefix for e in loaded} == {e.prefix for e in events}
    # BGP4MP_ET timestamps are microsecond-resolution on the wire.
    for got, want in zip(loaded, events):
        assert got.timestamp == pytest.approx(want.timestamp, abs=1e-6)
