"""Pool lifecycle: serial and forked execution agree."""

import os

import pytest

from repro.perf import fork_available, map_shards, partition


def _summarize(shard):
    """Module-level so worker processes can unpickle it."""
    return (len(shard), sum(shard), os.getpid())


def test_serial_path_matches_comprehension():
    shards = partition(list(range(100)), 4)
    assert map_shards(_summarize, shards, 1) == [
        _summarize(shard) for shard in shards
    ]


def test_single_shard_runs_serially():
    result = map_shards(_summarize, [[1, 2, 3]], 8)
    assert result == [(3, 6, os.getpid())]


def test_empty_shards():
    assert map_shards(_summarize, [], 4) == []


@pytest.mark.skipif(not fork_available(), reason="no fork on this platform")
def test_forked_pool_matches_serial():
    shards = partition(list(range(1000)), 4)
    forked = map_shards(_summarize, shards, 4)
    serial = [_summarize(shard) for shard in shards]
    # Same shard payloads in the same order...
    assert [r[:2] for r in forked] == [r[:2] for r in serial]
    # ...but computed outside this process.
    assert all(pid != os.getpid() for _, _, pid in forked)
