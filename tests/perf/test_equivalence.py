"""Sharded execution must be observationally identical to serial.

The parallel hot paths (counter expansion, stemming) are written so the
serial path runs the exact same shard code; these tests pin that down —
including on single-CPU machines, where ``REPRO_FORCE_WORKERS`` lifts
the affinity cap so the real pool gets exercised.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.perf import ENV_FORCE_WORKERS, effective_workers, fork_available
from repro.stemming.counter import SubsequenceCounter, _scan_top
from repro.stemming.stemmer import Stemmer
from tests.collector.test_stream import event

TOKENS = [("as", value) for value in range(1, 7)]


def _random_sequences(seed, count, max_len=6):
    rng = random.Random(seed)
    seen = set()
    while len(seen) < count:
        length = rng.randint(1, max_len)
        seen.add(tuple(rng.choice(TOKENS) for _ in range(length)))
    return sorted(seen, key=str)


sequence_lists = st.lists(
    st.tuples(
        st.lists(st.sampled_from(TOKENS), min_size=1, max_size=5).map(tuple),
        st.integers(1, 4),
    ),
    min_size=1,
    max_size=12,
)


class TestPairTopAgainstFullScan:
    """top() answered from the pair table == top() from the expansion."""

    @settings(max_examples=150, deadline=None)
    @given(sequence_lists, st.booleans())
    def test_top_matches_scan(self, additions, materialize):
        counter = SubsequenceCounter()
        for sequence, multiplicity in additions:
            counter.add_sequence(sequence, multiplicity)
        if materialize:
            counter.counts()  # switch top() onto the expansion path
        assert counter.top() == _scan_top(counter.counts().copy())

    @settings(max_examples=150, deadline=None)
    @given(sequence_lists, st.data())
    def test_top_survives_subtraction(self, additions, data):
        counter = SubsequenceCounter()
        totals = {}
        for sequence, multiplicity in additions:
            counter.add_sequence(sequence, multiplicity)
            totals[sequence] = totals.get(sequence, 0) + multiplicity
        victims = data.draw(
            st.lists(st.sampled_from(sorted(totals, key=str)), max_size=4)
        )
        removals = []
        for sequence in victims:
            if totals[sequence] == 0:
                continue
            taken = data.draw(st.integers(1, totals[sequence]))
            totals[sequence] -= taken
            removals.append((sequence, taken))
        if removals:
            counter.subtract_sequences(removals)
        assert counter.top() == _scan_top(counter.counts().copy())


class TestShardedCounter:
    @pytest.mark.skipif(
        not fork_available(), reason="no fork on this platform"
    )
    def test_sharded_expansion_matches_serial(self, monkeypatch):
        # Enough unique sequences to clear the serial-fallback floor.
        sequences = _random_sequences(seed=7, count=4200)
        monkeypatch.setenv(ENV_FORCE_WORKERS, "1")
        assert effective_workers(2, units=len(sequences)) == 2

        serial = SubsequenceCounter(workers=1)
        sharded = SubsequenceCounter(workers=2)
        for index, sequence in enumerate(sequences):
            multiplicity = 1 + index % 3
            serial.add_sequence(sequence, multiplicity)
            sharded.add_sequence(sequence, multiplicity)
        assert sharded.counts() == serial.counts()
        assert sharded.top() == serial.top()


def _mixed_stream():
    """A stream with a dominant correlated group plus background noise."""
    events = []
    t = 0.0
    for round_ in range(40):
        for prefix_index in range(5):
            events.append(
                event(
                    t,
                    prefix=f"10.{prefix_index}.0.0/16",
                    peer="1.1.1.1",
                    path="100 200 300",
                )
            )
            t += 0.1
        events.append(
            event(
                t,
                prefix=f"172.16.{round_ % 8}.0/24",
                peer="2.2.2.2" if round_ % 2 else "3.3.3.3",
                path="400 500" if round_ % 3 else "600 700 800",
            )
        )
        t += 0.1
    return events


class TestStemmerWorkersEquivalence:
    @pytest.mark.skipif(
        not fork_available(), reason="no fork on this platform"
    )
    def test_decomposition_identical_1_vs_4_workers(self, monkeypatch):
        monkeypatch.setenv(ENV_FORCE_WORKERS, "1")
        events = _mixed_stream()
        serial = Stemmer(workers=1).decompose(events)
        parallel = Stemmer(workers=4).decompose(events)
        assert len(serial.components) == len(parallel.components)
        for ours, theirs in zip(serial.components, parallel.components):
            assert ours.rank == theirs.rank
            assert ours.subsequence == theirs.subsequence
            assert ours.strength == theirs.strength
            assert ours.stem == theirs.stem
            assert ours.prefixes == theirs.prefixes
            assert list(ours.events) == list(theirs.events)
        assert serial.residual_events == parallel.residual_events
