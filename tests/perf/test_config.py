"""Worker-count resolution and the serial-fallback policy."""

import pytest

from repro.perf import (
    ENV_FORCE_WORKERS,
    ENV_WORKERS,
    effective_workers,
    fork_available,
    resolve_workers,
    usable_cpus,
)


@pytest.fixture(autouse=True)
def clean_env(monkeypatch):
    monkeypatch.delenv(ENV_WORKERS, raising=False)
    monkeypatch.delenv(ENV_FORCE_WORKERS, raising=False)


class TestResolveWorkers:
    def test_default_is_serial(self):
        assert resolve_workers(None) == 1

    def test_explicit_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(ENV_WORKERS, "7")
        monkeypatch.setenv(ENV_FORCE_WORKERS, "1")
        assert resolve_workers(3) == 3

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(ENV_WORKERS, "5")
        monkeypatch.setenv(ENV_FORCE_WORKERS, "1")
        assert resolve_workers(None) == 5

    def test_env_not_integer(self, monkeypatch):
        monkeypatch.setenv(ENV_WORKERS, "many")
        with pytest.raises(ValueError):
            resolve_workers(None)

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            resolve_workers(0)

    def test_capped_at_usable_cpus(self):
        assert resolve_workers(10_000) == usable_cpus()

    def test_force_lifts_cap(self, monkeypatch):
        monkeypatch.setenv(ENV_FORCE_WORKERS, "1")
        assert resolve_workers(10_000) == 10_000

    def test_force_zero_keeps_cap(self, monkeypatch):
        monkeypatch.setenv(ENV_FORCE_WORKERS, "0")
        assert resolve_workers(10_000) == usable_cpus()


class TestEffectiveWorkers:
    def test_serial_stays_serial(self):
        assert effective_workers(1, units=10**9) == 1

    def test_small_input_falls_back(self, monkeypatch):
        monkeypatch.setenv(ENV_FORCE_WORKERS, "1")
        assert effective_workers(4, units=10) == 1

    def test_large_input_parallel(self, monkeypatch):
        if not fork_available():
            pytest.skip("no fork on this platform")
        monkeypatch.setenv(ENV_FORCE_WORKERS, "1")
        assert effective_workers(4, units=10_000) == 4

    def test_min_units_override(self, monkeypatch):
        if not fork_available():
            pytest.skip("no fork on this platform")
        monkeypatch.setenv(ENV_FORCE_WORKERS, "1")
        assert effective_workers(2, units=100, min_units=10) == 2
        assert effective_workers(2, units=3, min_units=10) == 1
