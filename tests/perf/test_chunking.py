"""Shard partitioning invariants."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.perf import partition


class TestPartition:
    def test_empty_items(self):
        assert partition([], 4) == []

    def test_single_shard(self):
        assert partition([1, 2, 3], 1) == [[1, 2, 3]]

    def test_more_shards_than_items(self):
        assert partition([1, 2], 8) == [[1], [2]]

    def test_balanced_sizes(self):
        shards = partition(list(range(10)), 3)
        assert [len(s) for s in shards] == [4, 3, 3]

    def test_invalid_shard_count(self):
        with pytest.raises(ValueError):
            partition([1], 0)

    @given(
        st.lists(st.integers(), max_size=200),
        st.integers(1, 17),
    )
    def test_concatenation_preserves_order(self, items, shard_count):
        shards = partition(items, shard_count)
        assert [x for shard in shards for x in shard] == items

    @given(
        st.lists(st.integers(), min_size=1, max_size=200),
        st.integers(1, 17),
    )
    def test_shapes(self, items, shard_count):
        shards = partition(items, shard_count)
        assert 1 <= len(shards) <= shard_count
        assert all(shards)  # no empty chunks
        sizes = [len(s) for s in shards]
        assert max(sizes) - min(sizes) <= 1
