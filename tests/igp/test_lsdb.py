"""Unit tests for LSAs and the link-state database."""

import pytest

from repro.igp.database import LinkStateDatabase
from repro.igp.lsa import Link, LinkStateAd


def lsa(origin: str, links, sequence: int = 1) -> LinkStateAd:
    return LinkStateAd(
        origin=origin,
        links=tuple(Link(n, m) for n, m in links),
        sequence=sequence,
    )


class TestLsaValidation:
    def test_negative_metric_rejected(self):
        with pytest.raises(ValueError):
            Link("b", -1)

    def test_negative_sequence_rejected(self):
        with pytest.raises(ValueError):
            LinkStateAd("a", (), -1)


class TestDatabase:
    def test_apply_new(self):
        db = LinkStateDatabase()
        assert db.apply(lsa("a", [("b", 10)]))
        assert "a" in db
        assert len(db) == 1

    def test_newer_sequence_replaces(self):
        db = LinkStateDatabase()
        db.apply(lsa("a", [("b", 10)], sequence=1))
        assert db.apply(lsa("a", [("b", 20)], sequence=2))
        assert db.get("a").links[0].metric == 20

    def test_stale_sequence_ignored(self):
        db = LinkStateDatabase()
        db.apply(lsa("a", [("b", 10)], sequence=5))
        assert not db.apply(lsa("a", [("b", 99)], sequence=4))
        assert db.get("a").links[0].metric == 10

    def test_duplicate_sequence_not_a_change(self):
        db = LinkStateDatabase()
        db.apply(lsa("a", [("b", 10)], sequence=1))
        assert not db.apply(lsa("a", [("b", 10)], sequence=1))

    def test_empty_links_retracts(self):
        db = LinkStateDatabase()
        db.apply(lsa("a", [("b", 10)], sequence=1))
        assert db.apply(lsa("a", [], sequence=2))
        assert "a" not in db

    def test_retract_unknown_is_noop(self):
        db = LinkStateDatabase()
        assert not db.apply(lsa("ghost", [], sequence=1))

    def test_edges(self):
        db = LinkStateDatabase()
        db.apply(lsa("a", [("b", 10), ("c", 5)]))
        db.apply(lsa("b", [("a", 10)]))
        assert set(db.edges()) == {("a", "b", 10), ("a", "c", 5), ("b", "a", 10)}


class TestTwoWayCheck:
    def test_one_way_link_excluded_from_graph(self):
        db = LinkStateDatabase()
        db.apply(lsa("a", [("b", 10)]))
        db.apply(lsa("b", []))  # b exists? retracted — b unknown
        db.apply(lsa("b", [("c", 1)], sequence=2))
        db.apply(lsa("c", [("b", 1)]))
        graph = db.graph()
        # a→b is one-way (b does not list a), so it must be excluded.
        assert graph["a"] == []
        assert ("c", 1) in graph["b"]

    def test_stub_pseudo_node_kept(self):
        db = LinkStateDatabase()
        db.apply(lsa("a", [("stub-10.0.0.0/24", 1)]))
        graph = db.graph()
        assert ("stub-10.0.0.0/24", 1) in graph["a"]
