"""Unit and property tests for SPF."""

from hypothesis import given
from hypothesis import strategies as st

from repro.igp.spf import spf


SQUARE = {
    # a --1-- b
    # |       |
    # 4       1
    # |       |
    # c --1-- d
    "a": [("b", 1), ("c", 4)],
    "b": [("a", 1), ("d", 1)],
    "c": [("a", 4), ("d", 1)],
    "d": [("b", 1), ("c", 1)],
}


class TestSpf:
    def test_distances(self):
        paths = spf(SQUARE, "a")
        assert paths.cost("a") == 0
        assert paths.cost("b") == 1
        assert paths.cost("d") == 2
        assert paths.cost("c") == 3  # via b-d, not the direct metric-4 link

    def test_first_hops(self):
        paths = spf(SQUARE, "a")
        assert paths.next_hop("b") == "b"
        assert paths.next_hop("d") == "b"
        assert paths.next_hop("c") == "b"

    def test_unreachable(self):
        graph = {"a": [("b", 1)], "b": [("a", 1)], "z": []}
        paths = spf(graph, "a")
        assert paths.cost("z") is None
        assert not paths.reachable("z")

    def test_unknown_root(self):
        assert spf(SQUARE, "nope").cost("a") is None

    def test_equal_cost_tiebreak_deterministic(self):
        diamond = {
            "r": [("a", 1), ("b", 1)],
            "a": [("r", 1), ("t", 1)],
            "b": [("r", 1), ("t", 1)],
            "t": [("a", 1), ("b", 1)],
        }
        for _ in range(5):
            assert spf(diamond, "r").next_hop("t") == "a"


@st.composite
def random_graphs(draw):
    n = draw(st.integers(min_value=2, max_value=8))
    names = [f"n{i}" for i in range(n)]
    graph = {name: [] for name in names}
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(0, n - 1),
                st.integers(0, n - 1),
                st.integers(1, 10),
            ),
            max_size=20,
        )
    )
    seen = set()
    for i, j, metric in edges:
        if i == j or (i, j) in seen:
            continue
        seen.add((i, j))
        seen.add((j, i))
        graph[names[i]].append((names[j], metric))
        graph[names[j]].append((names[i], metric))
    return graph


class TestSpfProperties:
    @given(random_graphs())
    def test_triangle_inequality(self, graph):
        """d(root, v) ≤ d(root, u) + metric(u, v) for every edge."""
        paths = spf(graph, "n0")
        for u, links in graph.items():
            du = paths.cost(u)
            if du is None:
                continue
            for v, metric in links:
                dv = paths.cost(v)
                assert dv is not None
                assert dv <= du + metric

    @given(random_graphs())
    def test_root_cost_zero_and_nonnegative(self, graph):
        paths = spf(graph, "n0")
        assert paths.cost("n0") == 0
        assert all(cost >= 0 for cost in paths.distance.values())

    @given(random_graphs())
    def test_first_hop_is_root_neighbor(self, graph):
        paths = spf(graph, "n0")
        neighbors = {v for v, _ in graph["n0"]}
        for node, hop in paths.first_hop.items():
            assert hop in neighbors
