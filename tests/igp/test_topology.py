"""Unit tests for the managed IGP topology."""

import pytest

from repro.igp.topology import IGPTopology
from repro.net.prefix import parse_address


@pytest.fixture
def triangle() -> IGPTopology:
    topo = IGPTopology()
    for name in ("a", "b", "c"):
        topo.add_router(name)
    topo.add_link("a", "b", 10)
    topo.add_link("b", "c", 10)
    topo.add_link("a", "c", 50)
    return topo


class TestConstruction:
    def test_duplicate_router_rejected(self):
        topo = IGPTopology()
        topo.add_router("a")
        with pytest.raises(ValueError):
            topo.add_router("a")

    def test_link_to_unknown_rejected(self):
        topo = IGPTopology()
        topo.add_router("a")
        with pytest.raises(ValueError):
            topo.add_link("a", "ghost", 1)

    def test_self_link_rejected(self):
        topo = IGPTopology()
        topo.add_router("a")
        with pytest.raises(ValueError):
            topo.add_link("a", "a", 1)

    def test_address_ownership(self):
        topo = IGPTopology()
        addr = parse_address("10.0.0.1")
        topo.add_router("a", addresses=[addr])
        assert topo.router_for_address(addr) == "a"
        topo.add_router("b")
        with pytest.raises(ValueError):
            topo.add_address("b", addr)

    def test_address_for_unknown_router_rejected(self):
        topo = IGPTopology()
        with pytest.raises(ValueError):
            topo.add_address("ghost", 1)


class TestRouting:
    def test_cost_between(self, triangle):
        assert triangle.cost_between("a", "c") == 20  # via b, not direct 50

    def test_metric_change_reroutes(self, triangle):
        triangle.set_metric("a", "b", 100)
        assert triangle.cost_between("a", "c") == 50  # direct link now wins

    def test_link_failure(self, triangle):
        triangle.fail_link("a", "b")
        assert triangle.cost_between("a", "b") == 60  # a-c-b
        triangle.fail_link("a", "c")
        assert triangle.cost_between("a", "b") is None

    def test_restore_link(self, triangle):
        triangle.fail_link("a", "b")
        triangle.restore_link("a", "b", 10)
        assert triangle.cost_between("a", "b") == 10

    def test_mutating_unknown_link_rejected(self, triangle):
        with pytest.raises(ValueError):
            triangle.set_metric("a", "ghost", 5)
        triangle.fail_link("a", "b")
        with pytest.raises(ValueError):
            triangle.fail_link("a", "b")


class TestLsaStream:
    def test_every_mutation_floods(self, triangle):
        before = len(triangle.events)
        triangle.set_metric("a", "b", 99)
        # Both endpoints re-flood.
        assert len(triangle.events) == before + 2

    def test_lsa_sequences_increase(self, triangle):
        triangle.set_metric("a", "b", 99)
        triangle.set_metric("a", "b", 98)
        sequences = [e.sequence for e in triangle.events if e.origin == "a"]
        assert sequences == sorted(sequences)
        assert len(set(sequences)) == len(sequences)

    def test_timestamps_recorded(self, triangle):
        triangle.set_metric("a", "b", 99, now=42.0)
        assert triangle.events[-1].timestamp == 42.0


class TestBgpCostFn:
    def test_cost_fn_resolves_addresses(self, triangle):
        addr_c = parse_address("10.0.0.3")
        triangle.add_address("c", addr_c)
        cost = triangle.cost_fn("a")
        assert cost(addr_c) == 20

    def test_cost_fn_external_address_is_connected(self, triangle):
        cost = triangle.cost_fn("a")
        assert cost(parse_address("203.0.113.1")) == 0

    def test_cost_fn_own_address_zero(self, triangle):
        addr_a = parse_address("10.0.0.1")
        triangle.add_address("a", addr_a)
        assert triangle.cost_fn("a")(addr_a) == 0

    def test_cost_fn_unreachable_after_partition(self, triangle):
        addr_c = parse_address("10.0.0.3")
        triangle.add_address("c", addr_c)
        triangle.fail_link("a", "b")
        triangle.fail_link("a", "c")
        assert triangle.cost_fn("a")(addr_c) is None

    def test_cost_fn_tracks_topology_changes(self, triangle):
        """The same callable must see later topology changes (cache bust)."""
        addr_c = parse_address("10.0.0.3")
        triangle.add_address("c", addr_c)
        cost = triangle.cost_fn("a")
        assert cost(addr_c) == 20
        triangle.set_metric("b", "c", 100)
        assert cost(addr_c) == 50  # now cheaper directly
