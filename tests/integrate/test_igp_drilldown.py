"""Section III-D.3: joining the LSA stream with a BGP incident."""

import pytest

from repro.igp.lsa import Link, LinkStateAd
from repro.igp.topology import IGPTopology
from repro.integrate.igp import correlate_igp
from repro.net.prefix import parse_address
from repro.stemming.stemmer import Stemmer
from tests.stemming.test_stemmer import mk_event


NEXTHOP = "2.2.2.2"


@pytest.fixture
def topology() -> IGPTopology:
    topo = IGPTopology()
    topo.add_router("border", addresses=[parse_address(NEXTHOP)])
    topo.add_router("core")
    topo.add_router("elsewhere")
    topo.add_link("border", "core", 10, now=0.0)
    return topo


def component_at(times):
    events = [
        mk_event(t, "1.1.1.1", NEXTHOP, f"100 200 {300 + i}", f"10.0.{i}.0/24")
        for i, t in enumerate(times)
    ]
    return Stemmer().strongest_component(events)


class TestIgpCorrelation:
    def test_metric_change_in_window_implicated(self, topology):
        component = component_at([100.0, 101.0, 102.0])
        # An interior metric change just before the BGP fallout.
        topology.set_metric("border", "core", 99, now=95.0)
        correlation = correlate_igp(component, topology, slack_seconds=10.0)
        assert correlation.is_igp_rooted
        assert any(l.origin == "border" for l in correlation.implicated)

    def test_unrelated_lsa_not_implicated(self, topology):
        """An LSA from a router unrelated to the component's nexthops sits
        in the window but must not be implicated."""
        topology.add_link("core", "elsewhere", 5, now=0.0)
        component = component_at([100.0, 101.0])
        topology.set_metric("core", "elsewhere", 50, now=99.0)
        correlation = correlate_igp(component, topology, slack_seconds=10.0)
        # 'core' neighbors 'border' in the LSA links, so the core LSA may
        # implicate; restrict to origins unrelated to the nexthop owner.
        unrelated = [
            l for l in correlation.implicated if l.origin == "elsewhere"
        ]
        assert not unrelated

    def test_lsa_outside_window_ignored(self, topology):
        component = component_at([100.0, 101.0])
        topology.set_metric("border", "core", 99, now=10.0)  # long before
        correlation = correlate_igp(component, topology, slack_seconds=5.0)
        assert not correlation.is_igp_rooted
        assert correlation.window_lsas == ()

    def test_pure_bgp_incident_not_igp_rooted(self, topology):
        component = component_at([100.0, 101.0])
        correlation = correlate_igp(component, topology, slack_seconds=10.0)
        assert not correlation.is_igp_rooted

    def test_explicit_lsa_stream_override(self, topology):
        component = component_at([100.0, 101.0])
        external = [
            LinkStateAd(
                origin="border",
                links=(Link("core", 77),),
                sequence=9,
                timestamp=99.0,
            )
        ]
        correlation = correlate_igp(
            component, topology, slack_seconds=5.0, lsas=external
        )
        assert correlation.is_igp_rooted

    def test_negative_slack_rejected(self, topology):
        component = component_at([100.0])
        with pytest.raises(ValueError):
            correlate_igp(component, topology, slack_seconds=-1.0)

    def test_summary_readable(self, topology):
        component = component_at([100.0, 101.0])
        topology.set_metric("border", "core", 99, now=98.0)
        correlation = correlate_igp(component, topology, slack_seconds=10.0)
        text = correlation.summary()
        assert "window" in text
        assert "border" in text


class TestEndToEndReselection:
    def test_igp_change_causes_bgp_reselect_and_drilldown_finds_it(self):
        """The full D.3 loop: an IGP metric change flips a router's BGP
        best route; the resulting BGP events correlate back to the LSA."""
        from repro.bgp.router import BGPRouter
        from repro.net.aspath import ASPath
        from repro.net.attributes import PathAttributes
        from repro.net.message import BGPUpdate
        from repro.net.prefix import Prefix

        topo = IGPTopology()
        nh_a = parse_address("10.0.0.10")
        nh_b = parse_address("10.0.0.20")
        topo.add_router("r")
        topo.add_router("exit-a", addresses=[nh_a])
        topo.add_router("exit-b", addresses=[nh_b])
        topo.add_link("r", "exit-a", 10, now=0.0)
        topo.add_link("r", "exit-b", 20, now=0.0)
        router = BGPRouter("r", 100, 1, parse_address("10.0.0.1"))
        router.decision.igp_cost = topo.cost_fn("r")
        peer_a, peer_b = parse_address("10.1.0.1"), parse_address("10.1.0.2")
        router.add_neighbor(peer_a, 100, 2)
        router.add_neighbor(peer_b, 100, 3)
        router.neighbor(peer_a).session.establish_directly(0.0)
        router.neighbor(peer_b).session.establish_directly(0.0)
        prefix = Prefix.parse("192.0.2.0/24")
        router.receive_update(
            peer_a,
            BGPUpdate.announce(
                [prefix],
                PathAttributes(nexthop=nh_a, as_path=ASPath.parse("9 70")),
            ),
        )
        router.receive_update(
            peer_b,
            BGPUpdate.announce(
                [prefix],
                PathAttributes(nexthop=nh_b, as_path=ASPath.parse("8 70")),
            ),
        )
        assert router.best_route(prefix).attributes.nexthop == nh_a
        # Interior change: exit-a becomes expensive at t=50.
        topo.set_metric("r", "exit-a", 100, now=50.0)
        out = router.receive_update(peer_a, BGPUpdate(), now=50.1)
        # Force a reselect (real routers scan on IGP change).
        out = router._reselect(prefix, 50.1)
        assert router.best_route(prefix).attributes.nexthop == nh_b
        # The BGP fallout event, as REX would record it:
        event = mk_event(50.2, "10.0.0.1", "10.0.0.20", "8 70", str(prefix))
        component = Stemmer(min_strength=1).strongest_component([event])
        correlation = correlate_igp(component, topo, slack_seconds=5.0)
        assert correlation.is_igp_rooted
        assert {l.origin for l in correlation.implicated} >= {"r"}
