"""Section III-D.2: traffic weighting of TAMP and Stemming."""

import pytest

from repro.integrate.traffic import weighted_site_view
from repro.net.prefix import Prefix
from repro.tamp.graph import TampGraph
from repro.traffic.elephants import zipf_volumes
from repro.traffic.flows import FlowCollector, FlowRecord


def prefixes(n: int):
    return [Prefix(0x40000000 + i * 256, 24) for i in range(n)]


def two_path_graph(left: list, right: list) -> TampGraph:
    graph = TampGraph("site")
    for p in left:
        graph.add_prefix(("root", "site"), ("router", "r"), p)
        graph.add_prefix(("router", "r"), ("nh", 1), p)
    for p in right:
        graph.add_prefix(("root", "site"), ("router", "r"), p)
        graph.add_prefix(("router", "r"), ("nh", 2), p)
    return graph


class TestWeightedSiteView:
    def test_from_mapping(self):
        ps = prefixes(4)
        graph = two_path_graph(ps[:2], ps[2:])
        view = weighted_site_view(graph, {ps[0]: 100.0, ps[2]: 50.0})
        edge_left = (("router", "r"), ("nh", 1))
        edge_right = (("router", "r"), ("nh", 2))
        assert view.by_edge[edge_left] == 100.0
        assert view.by_edge[edge_right] == 50.0

    def test_from_flow_collector(self):
        ps = prefixes(2)
        graph = two_path_graph(ps[:1], ps[1:])
        collector = FlowCollector()
        collector.add(FlowRecord(0.0, ps[0], 300))
        collector.add(FlowRecord(0.0, ps[1], 100))
        view = weighted_site_view(graph, collector)
        assert view.volume_fraction((("router", "r"), ("nh", 1))) == 0.75

    def test_volume_fraction_empty(self):
        graph = two_path_graph([], [])
        view = weighted_site_view(graph, {})
        assert view.volume_fraction((("router", "r"), ("nh", 1))) == 0.0

    def test_imbalance_story(self):
        """An even prefix split hides a lopsided byte split: the Berkeley
        rate-limiter lesson, quantified."""
        ps = prefixes(10)
        graph = two_path_graph(ps[:5], ps[5:])
        volumes = {p: 1.0 for p in ps}
        volumes[ps[0]] = 1000.0  # one elephant on the left path
        view = weighted_site_view(graph, volumes)
        rows = view.imbalance(
            [(("router", "r"), ("nh", 1)), (("router", "r"), ("nh", 2))]
        )
        left, right = rows
        assert left["prefix_share"] == pytest.approx(0.5)
        assert left["volume_share"] > 0.99

    def test_weighted_stemmer_constructed(self):
        ps = prefixes(3)
        graph = two_path_graph(ps[:2], ps[2:])
        view = weighted_site_view(graph, zipf_volumes(ps))
        stemmer = view.stemmer(max_components=4)
        assert stemmer.max_components == 4
        assert stemmer.volumes  # volumes threaded through
