"""Section III-D.1: correlating Stemming output with router configs.

Reproduces the paper's walk-through: the route-leak component correlates
with 128.32.1.3's LOCAL_PREF-80-for-tagged-routes clause and exposes the
silent denial of untagged routes.
"""

import pytest

from repro.config.compiler import compile_config
from repro.config.parser import parse_config
from repro.integrate.policy import correlate_policies
from repro.simulator.scenarios import route_leak
from repro.simulator.workloads import BerkeleySite
from repro.net.attributes import Community
from repro.stemming.stemmer import Stemmer


@pytest.fixture(scope="module")
def leak_setup():
    site = BerkeleySite(n_prefixes=150)
    configs = [
        compile_config(parse_config(site._edge13_config())),
        compile_config(parse_config(site._edge200_config())),
    ]
    incident = route_leak(site, cycles=1)
    component = Stemmer().strongest_component(incident.stream)
    return site, configs, component


class TestPolicyCorrelation:
    def test_component_tags_extracted(self, leak_setup):
        _, configs, component = leak_setup
        correlation = correlate_policies(component, configs)
        tags = {str(c) for c in correlation.communities}
        # The leak interaction is between the ISP tag (withdrawn routes)
        # and the non-ISP tag (the leaked replacements).
        assert "11423:65350" in tags or "11423:65300" in tags

    def test_clause_hits_name_the_routers(self, leak_setup):
        _, configs, component = leak_setup
        correlation = correlate_policies(component, configs)
        routers = {hit.router for hit in correlation.hits}
        assert "edge-1-200" in routers

    def test_silent_denial_exposed(self, leak_setup):
        """Edge 1.3's import map implicitly denies the untagged leaked
        routes — the correlation must surface that silent drop."""
        _, configs, component = leak_setup
        correlation = correlate_policies(component, configs)
        assert "edge-1-3" in correlation.denials()

    def test_hits_carry_source_lines(self, leak_setup):
        _, configs, component = leak_setup
        correlation = correlate_policies(component, configs)
        assert any(hit.source_line > 0 for hit in correlation.hits)

    def test_summary_is_operator_readable(self, leak_setup):
        _, configs, component = leak_setup
        correlation = correlate_policies(component, configs)
        text = correlation.summary()
        assert "route-map" in text
        assert "denied" in text


class TestReplaySemantics:
    def test_first_match_counted_once(self):
        """An event must land on exactly one clause (first match wins)."""
        config = compile_config(
            parse_config(
                """\
hostname r
ip community-list standard TAGGED permit 1:1
route-map IMPORT permit 10
 match community TAGGED
 set local-preference 80
route-map IMPORT permit 20
 set local-preference 100
router bgp 25
 neighbor 10.0.0.1 remote-as 99
 neighbor 10.0.0.1 route-map IMPORT in
"""
            )
        )
        from tests.stemming.test_stemmer import mk_event
        from repro.stemming.stemmer import Stemmer

        events = []
        for i in range(6):
            e = mk_event(
                float(i), "1.1.1.1", "2.2.2.2", "99 200", f"10.0.{i}.0/24"
            )
            tagged = e.attributes.add_community(Community.parse("1:1"))
            events.append(
                type(e)(e.timestamp, e.kind, e.peer, e.prefix, tagged)
            )
        component = Stemmer().strongest_component(events)
        correlation = correlate_policies(component, [config])
        assert len(correlation.hits) == 1
        hit = correlation.hits[0]
        assert hit.clause_index == 0
        assert hit.matched_events == len(component.events)
        assert not correlation.denials()
