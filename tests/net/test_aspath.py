"""Unit and property tests for AS paths."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.aspath import ASPath, ASPathError

asns = st.integers(min_value=1, max_value=0xFFFFFFFF)


class TestParsing:
    def test_parse_sequence(self):
        path = ASPath.parse("11423 209 701")
        assert path.sequence == (11423, 209, 701)

    def test_parse_empty_is_local(self):
        assert ASPath.parse("") == ASPath()
        assert ASPath.parse("   ").sequence == ()

    def test_parse_as_set(self):
        path = ASPath.parse("11423 209 {7018,13606}")
        assert path.sequence == (11423, 209)
        assert path.as_set == frozenset({7018, 13606})

    def test_parse_as_set_space_separated(self):
        path = ASPath.parse("100 {1 2 3}")
        assert path.as_set == frozenset({1, 2, 3})

    def test_parse_rejects_unterminated_set(self):
        with pytest.raises(ASPathError):
            ASPath.parse("100 {1,2")

    def test_parse_rejects_empty_set(self):
        with pytest.raises(ASPathError):
            ASPath.parse("100 {}")

    def test_parse_rejects_garbage(self):
        with pytest.raises(ASPathError):
            ASPath.parse("100 abc")

    def test_rejects_zero_asn(self):
        with pytest.raises(ASPathError):
            ASPath([0])


class TestAccessors:
    def test_origin_as(self):
        assert ASPath.parse("11423 209 701").origin_as == 701

    def test_origin_of_empty_is_none(self):
        assert ASPath().origin_as is None

    def test_origin_ambiguous_with_set(self):
        assert ASPath.parse("100 {1,2}").origin_as is None

    def test_neighbor_as(self):
        assert ASPath.parse("11423 209 701").neighbor_as == 11423
        assert ASPath().neighbor_as is None

    def test_len_counts_set_as_one_hop(self):
        assert len(ASPath.parse("1 2 3")) == 3
        assert len(ASPath.parse("1 2 {3,4,5}")) == 3

    def test_contains(self):
        path = ASPath.parse("1 2 {3,4}")
        assert 2 in path
        assert 4 in path
        assert 9 not in path

    def test_edges(self):
        assert list(ASPath.parse("11423 209 701").edges()) == [
            (11423, 209),
            (209, 701),
        ]

    def test_edges_of_short_paths(self):
        assert list(ASPath.parse("100").edges()) == []
        assert list(ASPath().edges()) == []

    def test_startswith(self):
        path = ASPath.parse("11423 209 701")
        assert path.startswith(ASPath.parse("11423 209"))
        assert not path.startswith(ASPath.parse("209"))


class TestOperations:
    def test_prepend(self):
        assert ASPath.parse("209 701").prepend(11423).sequence == (
            11423,
            209,
            701,
        )

    def test_prepend_multiple(self):
        assert ASPath.parse("701").prepend(100, count=3).sequence == (
            100,
            100,
            100,
            701,
        )

    def test_prepend_rejects_nonpositive_count(self):
        with pytest.raises(ASPathError):
            ASPath().prepend(100, count=0)

    def test_has_loop(self):
        path = ASPath.parse("11423 209 701")
        assert path.has_loop(209)
        assert not path.has_loop(7018)

    def test_immutability(self):
        path = ASPath.parse("1 2")
        with pytest.raises(AttributeError):
            path.sequence = (9,)


class TestValueSemantics:
    def test_equality_and_hash(self):
        a = ASPath.parse("1 2 {3,4}")
        b = ASPath([1, 2], {4, 3})
        assert a == b
        assert hash(a) == hash(b)

    def test_str_round_trip(self):
        for text in ["", "1", "11423 209 701", "1 2 {3,4}"]:
            assert ASPath.parse(str(ASPath.parse(text))) == ASPath.parse(text)


class TestProperties:
    @given(st.lists(asns, max_size=10), st.frozensets(asns, max_size=5))
    def test_parse_str_round_trip(self, seq, aset):
        path = ASPath(seq, aset)
        assert ASPath.parse(str(path)) == path

    @given(st.lists(asns, min_size=2, max_size=10))
    def test_edge_count(self, seq):
        path = ASPath(seq)
        assert len(list(path.edges())) == len(seq) - 1

    @given(st.lists(asns, max_size=10), asns)
    def test_prepend_extends_and_detects_loop(self, seq, new):
        path = ASPath(seq).prepend(new)
        assert path.neighbor_as == new
        assert path.has_loop(new)
        assert len(path) == len(ASPath(seq)) + 1
