"""Unit and property tests for IPv4 prefixes."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.prefix import (
    Prefix,
    PrefixError,
    cidr_cover,
    format_address,
    parse_address,
)


def prefixes(min_length: int = 0, max_length: int = 32) -> st.SearchStrategy:
    """Strategy producing valid prefixes (host bits cleared)."""

    def build(raw: int, length: int) -> Prefix:
        mask = 0 if length == 0 else (0xFFFFFFFF << (32 - length)) & 0xFFFFFFFF
        return Prefix(raw & mask, length)

    return st.builds(
        build,
        st.integers(min_value=0, max_value=0xFFFFFFFF),
        st.integers(min_value=min_length, max_value=max_length),
    )


class TestParsing:
    def test_parse_standard(self):
        p = Prefix.parse("1.2.3.0/24")
        assert p.length == 24
        assert str(p) == "1.2.3.0/24"

    def test_parse_bare_address_is_host_route(self):
        assert Prefix.parse("10.0.0.1").length == 32

    def test_parse_default_route(self):
        p = Prefix.parse("0.0.0.0/0")
        assert p.length == 0
        assert p.network == 0

    def test_parse_rejects_bad_octet(self):
        with pytest.raises(PrefixError):
            Prefix.parse("1.2.3.256/24")

    def test_parse_rejects_short_address(self):
        with pytest.raises(PrefixError):
            Prefix.parse("1.2.3/24")

    def test_parse_rejects_bad_length(self):
        with pytest.raises(PrefixError):
            Prefix.parse("1.2.3.0/33")

    def test_parse_rejects_nonnumeric_length(self):
        with pytest.raises(PrefixError):
            Prefix.parse("1.2.3.0/abc")

    def test_parse_rejects_host_bits(self):
        with pytest.raises(PrefixError):
            Prefix.parse("1.2.3.1/24")

    def test_parse_rejects_garbage(self):
        with pytest.raises(PrefixError):
            Prefix.parse("not-a-prefix")


class TestContainment:
    def test_contains_more_specific(self):
        assert Prefix.parse("10.0.0.0/8").contains(Prefix.parse("10.1.0.0/16"))

    def test_contains_self(self):
        p = Prefix.parse("10.0.0.0/8")
        assert p.contains(p)

    def test_does_not_contain_less_specific(self):
        assert not Prefix.parse("10.1.0.0/16").contains(
            Prefix.parse("10.0.0.0/8")
        )

    def test_does_not_contain_sibling(self):
        assert not Prefix.parse("10.0.0.0/8").contains(
            Prefix.parse("11.0.0.0/8")
        )

    def test_default_route_contains_everything(self):
        default = Prefix.parse("0.0.0.0/0")
        assert default.contains(Prefix.parse("203.0.113.0/24"))

    def test_contains_address(self):
        p = Prefix.parse("192.0.2.0/24")
        assert p.contains_address(parse_address("192.0.2.99"))
        assert not p.contains_address(parse_address("192.0.3.1"))


class TestStructure:
    def test_supernet(self):
        assert Prefix.parse("10.1.0.0/16").supernet() == Prefix.parse(
            "10.0.0.0/15"
        )

    def test_supernet_of_default_fails(self):
        with pytest.raises(PrefixError):
            Prefix.parse("0.0.0.0/0").supernet()

    def test_subnets(self):
        low, high = Prefix.parse("10.0.0.0/8").subnets()
        assert low == Prefix.parse("10.0.0.0/9")
        assert high == Prefix.parse("10.128.0.0/9")

    def test_subnets_of_host_fails(self):
        with pytest.raises(PrefixError):
            Prefix.parse("10.0.0.1/32").subnets()

    def test_split(self):
        parts = list(Prefix.parse("10.0.0.0/22").split(24))
        assert len(parts) == 4
        assert parts[0] == Prefix.parse("10.0.0.0/24")
        assert parts[-1] == Prefix.parse("10.0.3.0/24")

    def test_split_shorter_fails(self):
        with pytest.raises(PrefixError):
            list(Prefix.parse("10.0.0.0/24").split(8))

    def test_size(self):
        assert Prefix.parse("10.0.0.0/24").size == 256
        assert Prefix.parse("10.0.0.1/32").size == 1

    def test_last_address(self):
        p = Prefix.parse("192.0.2.0/24")
        assert format_address(p.last_address) == "192.0.2.255"


class TestValueSemantics:
    def test_equality_and_hash(self):
        a = Prefix.parse("10.0.0.0/8")
        b = Prefix(parse_address("10.0.0.0"), 8)
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_ordering(self):
        assert Prefix.parse("9.0.0.0/8") < Prefix.parse("10.0.0.0/8")
        assert Prefix.parse("10.0.0.0/8") < Prefix.parse("10.0.0.0/16")

    def test_immutability(self):
        p = Prefix.parse("10.0.0.0/8")
        with pytest.raises(AttributeError):
            p.length = 16

    def test_repr_round_trips(self):
        p = Prefix.parse("172.16.0.0/12")
        assert "172.16.0.0/12" in repr(p)


class TestAddressHelpers:
    def test_round_trip(self):
        text = "203.0.113.7"
        assert format_address(parse_address(text)) == text

    def test_format_rejects_out_of_range(self):
        with pytest.raises(PrefixError):
            format_address(1 << 32)


class TestCidrCover:
    def test_aligned_range_is_single_prefix(self):
        start = parse_address("10.0.0.0")
        cover = cidr_cover(start, start + 256)
        assert cover == [Prefix.parse("10.0.0.0/24")]

    def test_unaligned_range(self):
        start = parse_address("10.0.0.128")
        cover = cidr_cover(start, start + 384)  # .128 .. .255 + next /24
        assert cover == [
            Prefix.parse("10.0.0.128/25"),
            Prefix.parse("10.0.1.0/24"),
        ]

    def test_empty_range(self):
        assert cidr_cover(100, 100) == []

    def test_invalid_range_rejected(self):
        with pytest.raises(PrefixError):
            cidr_cover(200, 100)
        with pytest.raises(PrefixError):
            cidr_cover(0, (1 << 32) + 2)

    def test_full_space(self):
        assert cidr_cover(0, 1 << 32) == [Prefix.parse("0.0.0.0/0")]

    @given(
        st.integers(min_value=0, max_value=(1 << 32) - 1),
        st.integers(min_value=0, max_value=1 << 20),
    )
    def test_cover_is_exact_partition(self, start, length):
        end = min(start + length, 1 << 32)
        cover = cidr_cover(start, end)
        # Total size matches the range exactly.
        assert sum(p.size for p in cover) == end - start
        # Blocks are ordered, contiguous and non-overlapping.
        cursor = start
        for prefix in cover:
            assert prefix.first_address == cursor
            cursor = prefix.last_address + 1
        assert cursor == end

    @given(
        st.integers(min_value=0, max_value=(1 << 32) - 1),
        st.integers(min_value=1, max_value=1 << 16),
    )
    def test_cover_is_minimal_greedy(self, start, length):
        """Each block is the largest aligned block fitting the remainder,
        so no two adjacent blocks could merge into one prefix."""
        end = min(start + length, 1 << 32)
        cover = cidr_cover(start, end)
        for a, b in zip(cover, cover[1:]):
            if a.length == b.length and a.length > 0:
                merged_network = a.network & ~(1 << (32 - a.length))
                # If they were two halves of one block, the cover would
                # have emitted the parent instead.
                assert not (
                    merged_network == a.network
                    and a.last_address + 1 == b.first_address
                    and b.network == a.network | (1 << (32 - a.length))
                )


class TestProperties:
    @given(prefixes())
    def test_str_parse_round_trip(self, p: Prefix):
        assert Prefix.parse(str(p)) == p

    @given(prefixes(max_length=31))
    def test_subnets_partition_parent(self, p: Prefix):
        low, high = p.subnets()
        assert p.contains(low) and p.contains(high)
        assert low.size + high.size == p.size
        assert low.last_address + 1 == high.first_address

    @given(prefixes(min_length=1))
    def test_supernet_contains_child(self, p: Prefix):
        assert p.supernet().contains(p)

    @given(prefixes(), prefixes())
    def test_containment_antisymmetry(self, a: Prefix, b: Prefix):
        if a.contains(b) and b.contains(a):
            assert a == b

    @given(prefixes())
    def test_network_within_range(self, p: Prefix):
        assert p.first_address <= p.last_address
        assert p.contains_address(p.first_address)
        assert p.contains_address(p.last_address)
