"""Unit and property tests for the prefix radix trie."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.prefix import Prefix, parse_address
from repro.net.trie import PrefixTrie

from tests.net.test_prefix import prefixes


@pytest.fixture
def small_trie() -> PrefixTrie:
    trie: PrefixTrie = PrefixTrie()
    trie.insert(Prefix.parse("10.0.0.0/8"), "eight")
    trie.insert(Prefix.parse("10.1.0.0/16"), "sixteen")
    trie.insert(Prefix.parse("10.1.2.0/24"), "twentyfour")
    trie.insert(Prefix.parse("192.0.2.0/24"), "doc")
    return trie


class TestBasicOperations:
    def test_len(self, small_trie):
        assert len(small_trie) == 4

    def test_contains(self, small_trie):
        assert Prefix.parse("10.1.0.0/16") in small_trie
        assert Prefix.parse("10.2.0.0/16") not in small_trie

    def test_get_exact(self, small_trie):
        assert small_trie.get(Prefix.parse("10.1.0.0/16")) == "sixteen"

    def test_get_missing_returns_default(self, small_trie):
        assert small_trie.get(Prefix.parse("172.16.0.0/12"), "dflt") == "dflt"

    def test_insert_replaces(self, small_trie):
        small_trie.insert(Prefix.parse("10.0.0.0/8"), "new")
        assert small_trie.get(Prefix.parse("10.0.0.0/8")) == "new"
        assert len(small_trie) == 4

    def test_delete(self, small_trie):
        assert small_trie.delete(Prefix.parse("10.1.0.0/16"))
        assert Prefix.parse("10.1.0.0/16") not in small_trie
        assert len(small_trie) == 3

    def test_delete_missing_returns_false(self, small_trie):
        assert not small_trie.delete(Prefix.parse("172.16.0.0/12"))

    def test_delete_keeps_descendants(self, small_trie):
        small_trie.delete(Prefix.parse("10.1.0.0/16"))
        assert small_trie.get(Prefix.parse("10.1.2.0/24")) == "twentyfour"

    def test_root_value(self):
        trie: PrefixTrie = PrefixTrie()
        trie.insert(Prefix.parse("0.0.0.0/0"), "default")
        assert trie.get(Prefix.parse("0.0.0.0/0")) == "default"
        assert trie.longest_match_address(parse_address("8.8.8.8")) == (
            Prefix.parse("0.0.0.0/0"),
            "default",
        )


class TestLongestMatch:
    def test_most_specific_wins(self, small_trie):
        match = small_trie.longest_match_address(parse_address("10.1.2.3"))
        assert match == (Prefix.parse("10.1.2.0/24"), "twentyfour")

    def test_falls_back_to_covering(self, small_trie):
        match = small_trie.longest_match_address(parse_address("10.9.9.9"))
        assert match == (Prefix.parse("10.0.0.0/8"), "eight")

    def test_no_match(self, small_trie):
        assert small_trie.longest_match_address(parse_address("8.8.8.8")) is None

    def test_match_on_prefix(self, small_trie):
        match = small_trie.longest_match(Prefix.parse("10.1.2.0/25"))
        assert match == (Prefix.parse("10.1.2.0/24"), "twentyfour")

    def test_exact_prefix_matches_itself(self, small_trie):
        match = small_trie.longest_match(Prefix.parse("10.1.0.0/16"))
        assert match == (Prefix.parse("10.1.0.0/16"), "sixteen")


class TestCoverQueries:
    def test_covered(self, small_trie):
        covered = dict(small_trie.covered(Prefix.parse("10.0.0.0/8")))
        assert set(covered.values()) == {"eight", "sixteen", "twentyfour"}

    def test_covered_narrow(self, small_trie):
        covered = dict(small_trie.covered(Prefix.parse("10.1.2.0/24")))
        assert set(covered.values()) == {"twentyfour"}

    def test_covered_empty(self, small_trie):
        assert list(small_trie.covered(Prefix.parse("172.16.0.0/12"))) == []

    def test_covering_order(self, small_trie):
        covering = [p for p, _ in small_trie.covering(Prefix.parse("10.1.2.0/24"))]
        assert covering == [
            Prefix.parse("10.0.0.0/8"),
            Prefix.parse("10.1.0.0/16"),
            Prefix.parse("10.1.2.0/24"),
        ]

    def test_items_yields_everything(self, small_trie):
        assert len(list(small_trie.items())) == 4
        assert len(list(small_trie.keys())) == 4


class TestProperties:
    @given(st.dictionaries(prefixes(), st.integers(), max_size=40))
    def test_behaves_like_dict(self, entries):
        trie: PrefixTrie = PrefixTrie()
        for prefix, value in entries.items():
            trie.insert(prefix, value)
        assert len(trie) == len(entries)
        for prefix, value in entries.items():
            assert trie.get(prefix) == value
        assert dict(trie.items()) == entries

    @given(
        st.dictionaries(prefixes(), st.integers(), max_size=30),
        st.integers(min_value=0, max_value=0xFFFFFFFF),
    )
    def test_longest_match_agrees_with_scan(self, entries, address):
        trie: PrefixTrie = PrefixTrie()
        for prefix, value in entries.items():
            trie.insert(prefix, value)
        expected = None
        for prefix in entries:
            if prefix.contains_address(address):
                if expected is None or prefix.length > expected.length:
                    expected = prefix
        result = trie.longest_match_address(address)
        if expected is None:
            assert result is None
        else:
            assert result == (expected, entries[expected])

    @given(st.dictionaries(prefixes(), st.integers(), max_size=30), prefixes())
    def test_covered_agrees_with_scan(self, entries, target):
        trie: PrefixTrie = PrefixTrie()
        for prefix, value in entries.items():
            trie.insert(prefix, value)
        expected = {p for p in entries if target.contains(p)}
        assert {p for p, _ in trie.covered(target)} == expected

    @given(st.lists(prefixes(), max_size=30))
    def test_insert_then_delete_leaves_empty(self, keys):
        trie: PrefixTrie = PrefixTrie()
        for prefix in keys:
            trie.insert(prefix, 1)
        for prefix in set(keys):
            assert trie.delete(prefix)
        assert len(trie) == 0
        assert list(trie.items()) == []
