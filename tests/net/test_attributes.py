"""Unit tests for path attributes, communities and messages."""

import pytest

from repro.net.aspath import ASPath
from repro.net.attributes import (
    DEFAULT_LOCAL_PREF,
    Community,
    Origin,
    PathAttributes,
)
from repro.net.message import (
    Announcement,
    BGPUpdate,
    NotificationCode,
    NotificationMessage,
    Withdrawal,
)
from repro.net.prefix import Prefix, parse_address


def make_attrs(**overrides) -> PathAttributes:
    base = dict(
        nexthop=parse_address("128.32.0.66"),
        as_path=ASPath.parse("11423 209 701"),
    )
    base.update(overrides)
    return PathAttributes(**base)


class TestCommunity:
    def test_parse(self):
        c = Community.parse("11423:65350")
        assert (c.asn, c.value) == (11423, 65350)

    def test_str_round_trip(self):
        assert str(Community.parse("2152:65297")) == "2152:65297"

    def test_parse_rejects_missing_colon(self):
        with pytest.raises(ValueError):
            Community.parse("1142365350")

    def test_parse_rejects_nonnumeric(self):
        with pytest.raises(ValueError):
            Community.parse("a:b")

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            Community(70000, 1)
        with pytest.raises(ValueError):
            Community(1, 70000)

    def test_equality_hash_ordering(self):
        a = Community.parse("1:2")
        b = Community(1, 2)
        assert a == b and hash(a) == hash(b)
        assert Community(1, 1) < Community(1, 2) < Community(2, 0)


class TestPathAttributes:
    def test_defaults(self):
        attrs = make_attrs()
        assert attrs.local_pref == DEFAULT_LOCAL_PREF
        assert attrs.med is None
        assert attrs.origin is Origin.IGP
        assert attrs.communities == frozenset()

    def test_replace(self):
        attrs = make_attrs()
        changed = attrs.replace(local_pref=80)
        assert changed.local_pref == 80
        assert attrs.local_pref == DEFAULT_LOCAL_PREF
        assert changed.as_path == attrs.as_path

    def test_replace_rejects_unknown_field(self):
        with pytest.raises(TypeError):
            make_attrs().replace(bogus=1)

    def test_community_manipulation(self):
        tag = Community.parse("11423:65350")
        attrs = make_attrs().add_community(tag)
        assert attrs.has_community(tag)
        assert not attrs.remove_community(tag).has_community(tag)

    def test_equality_and_hash(self):
        assert make_attrs() == make_attrs()
        assert hash(make_attrs()) == hash(make_attrs())
        assert make_attrs() != make_attrs(med=10)

    def test_immutability(self):
        with pytest.raises(AttributeError):
            make_attrs().local_pref = 50

    def test_repr_mentions_nondefault_fields(self):
        attrs = make_attrs(local_pref=80, med=5)
        text = repr(attrs)
        assert "local_pref=80" in text and "med=5" in text


class TestBGPUpdate:
    def test_announce_builder(self):
        prefixes = [Prefix.parse("1.2.3.0/24"), Prefix.parse("1.2.4.0/24")]
        update = BGPUpdate.announce(prefixes, make_attrs())
        assert len(update) == 2
        assert all(isinstance(a, Announcement) for a in update.announcements)
        assert not update.withdrawals

    def test_withdraw_builder(self):
        update = BGPUpdate.withdraw([Prefix.parse("1.2.3.0/24")])
        assert update.withdrawals == (Withdrawal(Prefix.parse("1.2.3.0/24")),)

    def test_empty(self):
        assert BGPUpdate().is_empty
        assert not BGPUpdate.withdraw([Prefix.parse("1.2.3.0/24")]).is_empty

    def test_len_counts_both(self):
        update = BGPUpdate(
            withdrawals=(Withdrawal(Prefix.parse("1.0.0.0/8")),),
            announcements=(
                Announcement(Prefix.parse("2.0.0.0/8"), make_attrs()),
            ),
        )
        assert len(update) == 2


class TestNotification:
    def test_codes(self):
        msg = NotificationMessage(NotificationCode.MAX_PREFIX_EXCEEDED, "1000")
        assert msg.code is NotificationCode.MAX_PREFIX_EXCEEDED
        assert msg.detail == "1000"
