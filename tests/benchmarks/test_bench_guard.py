"""The CI bench-regression guard must flag real slowdowns and only those.

The guard compares appended ``BENCH_*.json`` row entries (freshest run
last) against a committed baseline, matched by row identity, filtered
by scale, with a noise floor for sub-jitter rows. These tests drive
:func:`benchmarks.bench_guard.compare` and the CLI exit codes directly
on synthetic entries — no benchmarks run here.
"""

import json

from benchmarks.bench_guard import compare, main, row_identity


def entry(routes, measured, scale=0.05, **extra):
    made = {
        "scale": scale,
        "workers": 1,
        "row": f"routes={routes} measured={measured}s",
        "routes": routes,
        "paper_seconds": 7.0,
        "measured_seconds": measured,
    }
    made.update(extra)
    return made


class TestCompare:
    def test_identical_runs_pass(self):
        entries = [entry(75_000, 1.0), entry(7_500, 0.2)]
        regressions, checked = compare(entries, entries)
        assert regressions == []
        assert len(checked) == 2

    def test_slowdown_beyond_tolerance_is_flagged(self):
        baseline = [entry(75_000, 1.0)]
        regressions, checked = compare([entry(75_000, 1.3)], baseline)
        assert len(regressions) == 1
        assert regressions[0]["ratio"] == 1.3
        # A slowdown inside the tolerance passes.
        regressions, _ = compare([entry(75_000, 1.2)], baseline)
        assert regressions == []
        # So does a speedup, however large.
        regressions, _ = compare([entry(75_000, 0.1)], baseline)
        assert regressions == []

    def test_noise_floor_skips_jitter_rows(self):
        baseline = [entry(100, 0.01)]
        regressions, checked = compare([entry(100, 0.04)], baseline)
        assert regressions == [] and checked == []

    def test_identity_ignores_measurements_not_parameters(self):
        base = entry(75_000, 1.0)
        fresh = entry(75_000, 1.0, workers=4)
        assert row_identity(base) == row_identity(fresh)
        # Different row parameters never match each other.
        assert row_identity(base) != row_identity(entry(7_500, 1.0))

    def test_scale_filter_and_freshest_entry_win(self):
        # The fresh file carries an old full-scale row plus two smoke
        # runs of the same row; only the last smoke run counts.
        fresh = [
            entry(1_500_000, 20.0, scale=1.0),
            entry(75_000, 9.9),
            entry(75_000, 1.0),
        ]
        baseline = [entry(75_000, 1.0), entry(1_500_000, 1.0, scale=1.0)]
        regressions, checked = compare(fresh, baseline, scale=0.05)
        assert regressions == []
        assert len(checked) == 1
        assert checked[0]["fresh_seconds"] == 1.0


class TestCli:
    def write(self, path, entries):
        path.write_text(json.dumps(entries), encoding="utf-8")
        return str(path)

    def test_pass_and_fail_exit_codes(self, tmp_path, capsys):
        baseline = self.write(tmp_path / "base.json", [entry(75_000, 1.0)])
        fresh_ok = self.write(tmp_path / "ok.json", [entry(75_000, 1.1)])
        assert main([fresh_ok, baseline]) == 0
        assert "within tolerance" in capsys.readouterr().out
        fresh_bad = self.write(tmp_path / "bad.json", [entry(75_000, 2.0)])
        assert main([fresh_bad, baseline]) == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_no_overlap_is_an_error(self, tmp_path, capsys):
        baseline = self.write(tmp_path / "base.json", [entry(75_000, 1.0)])
        fresh = self.write(tmp_path / "fresh.json", [entry(7_500, 1.0)])
        assert main([fresh, baseline]) == 2
        assert "no comparable rows" in capsys.readouterr().err

    def test_missing_file_is_an_error(self, tmp_path, capsys):
        baseline = self.write(tmp_path / "base.json", [entry(75_000, 1.0)])
        assert main([str(tmp_path / "nope.json"), baseline]) == 2
        assert "bench-guard error" in capsys.readouterr().err

    def test_custom_tolerance(self, tmp_path):
        baseline = self.write(tmp_path / "base.json", [entry(75_000, 1.0)])
        fresh = self.write(tmp_path / "fresh.json", [entry(75_000, 1.4)])
        assert main([fresh, baseline]) == 1
        assert main([fresh, baseline, "--tolerance", "0.5"]) == 0
