"""MRT framing and high-level loader tests."""

import io

import pytest

from repro.collector.events import EventKind
from repro.collector.rex import RouteExplorer
from repro.collector.stream import EventStream
from repro.mrt.loader import dump_rib, dump_updates, load_rib, load_updates
from repro.mrt.records import (
    SUBTYPE_BGP4MP_MESSAGE_AS4,
    TYPE_BGP4MP,
    TYPE_BGP4MP_ET,
    MRTError,
    MRTRecord,
    read_records,
    write_records,
)
from repro.simulator.synthetic import (
    BERKELEY_PROFILE,
    populate_view,
    session_reset_events,
)
from tests.collector.test_stream import event


class TestFraming:
    def test_round_trip(self, tmp_path):
        records = [
            MRTRecord(100.0, TYPE_BGP4MP, SUBTYPE_BGP4MP_MESSAGE_AS4, b"abc"),
            MRTRecord(200.5, TYPE_BGP4MP_ET, SUBTYPE_BGP4MP_MESSAGE_AS4, b"x"),
        ]
        path = tmp_path / "frames.mrt"
        assert write_records(records, path) == 2
        restored = list(read_records(path))
        assert len(restored) == 2
        assert restored[0].payload == b"abc"
        assert restored[0].timestamp == 100.0
        # The _ET variant preserves sub-second time.
        assert restored[1].timestamp == pytest.approx(200.5, abs=1e-5)

    def test_streams_accepted(self):
        buffer = io.BytesIO()
        write_records(
            [MRTRecord(1.0, TYPE_BGP4MP, 4, b"zz")], buffer
        )
        buffer.seek(0)
        assert list(read_records(buffer))[0].payload == b"zz"

    def test_truncated_header_rejected(self):
        with pytest.raises(MRTError):
            list(read_records(io.BytesIO(b"\x00\x01\x02")))

    def test_truncated_payload_rejected(self):
        buffer = io.BytesIO()
        write_records([MRTRecord(1.0, TYPE_BGP4MP, 4, b"full")], buffer)
        data = buffer.getvalue()[:-2]
        with pytest.raises(MRTError):
            list(read_records(io.BytesIO(data)))

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.mrt"
        path.write_bytes(b"")
        assert list(read_records(path)) == []


class TestUpdatesRoundTrip:
    def _stream(self) -> EventStream:
        rex = RouteExplorer()
        populate_view(rex, 500, BERKELEY_PROFILE, routes_per_prefix=1.5)
        return session_reset_events(rex, 0, start=1000.0,
                                    convergence_seconds=60.0)

    def test_dump_then_load_preserves_announcements(self, tmp_path):
        stream = self._stream()
        path = tmp_path / "updates.mrt"
        assert dump_updates(stream, path) == len(stream)
        restored = load_updates(path)
        assert restored.announce_count() == stream.announce_count()

    def test_withdrawals_reaugmented_on_load(self, tmp_path):
        """The wire strips withdrawal attributes; loading replays through
        a collector, which re-attaches them — but only for routes the
        file announced first. A reset stream withdraws *before*
        re-announcing, so those withdrawals are dropped (the collector
        never knew the routes), exactly like a mid-stream archive."""
        stream = self._stream()
        path = tmp_path / "updates.mrt"
        dump_updates(stream, path)
        rex = RouteExplorer()
        load_updates(path, rex=rex)
        assert rex.dropped_withdrawals == stream.withdraw_count()

    def test_full_cycle_with_prior_announcements(self, tmp_path):
        """Announce-first streams survive a full wire round trip with
        attributes intact on withdrawals."""
        events = [
            event(1.0, prefix="10.0.0.0/8", kind=EventKind.ANNOUNCE),
            event(2.0, prefix="10.0.0.0/8", kind=EventKind.WITHDRAW),
        ]
        path = tmp_path / "pair.mrt"
        dump_updates(EventStream(events), path)
        restored = load_updates(path)
        assert len(restored) == 2
        withdrawal = [e for e in restored if e.is_withdrawal][0]
        assert withdrawal.attributes.as_path == events[0].attributes.as_path

    def test_timestamps_preserved(self, tmp_path):
        events = [event(1234.25, prefix="10.0.0.0/8")]
        path = tmp_path / "t.mrt"
        dump_updates(EventStream(events), path)
        restored = load_updates(path)
        assert restored[0].timestamp == pytest.approx(1234.25, abs=1e-5)

    def test_non_update_records_skipped(self, tmp_path):
        path = tmp_path / "mixed.mrt"
        write_records(
            [MRTRecord(1.0, 99, 0, b"not-bgp")], path
        )
        assert len(load_updates(path)) == 0

    def test_garbage_payload_skipped_unless_strict(self, tmp_path):
        from repro.mrt.ingest import IngestWarning

        path = tmp_path / "bad.mrt"
        write_records(
            [MRTRecord(1.0, TYPE_BGP4MP, SUBTYPE_BGP4MP_MESSAGE_AS4, b"xx")],
            path,
        )
        # A 100% skip rate crosses the warn threshold — the skip is no
        # longer silent, and the report carries the accounting.
        with pytest.warns(IngestWarning):
            stream = load_updates(path)
        assert len(stream) == 0
        assert stream.ingest_report.records_skipped == 1
        with pytest.raises((MRTError, ValueError)):
            load_updates(path, strict=True)


class TestPropertyRoundTrip:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=1e6, allow_nan=False),
                st.integers(0, 50),  # prefix slot
                st.lists(st.integers(1, 1 << 30), min_size=1, max_size=5),
                st.booleans(),  # withdrawal?
            ),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_random_streams_survive_the_wire(self, raw):
        """Announce-first random streams: dump to MRT, load back, and the
        collector view matches (announcements exact; withdrawals
        re-augmented whenever the route was known)."""
        import io

        from repro.collector.events import BGPEvent, EventKind
        from repro.net.aspath import ASPath
        from repro.net.attributes import PathAttributes
        from repro.net.prefix import Prefix

        events = []
        announced: set = set()
        for t, slot, path, withdraw in sorted(raw, key=lambda r: r[0]):
            prefix = Prefix(0x0A000000 + slot * 256, 24)
            attrs = PathAttributes(nexthop=0x0B000001, as_path=ASPath(path))
            if withdraw and prefix in announced:
                events.append(
                    BGPEvent(t, EventKind.WITHDRAW, 0x01010101, prefix, attrs)
                )
                announced.discard(prefix)
            else:
                events.append(
                    BGPEvent(t, EventKind.ANNOUNCE, 0x01010101, prefix, attrs)
                )
                announced.add(prefix)
        buffer = io.BytesIO()
        dump_updates(events, buffer)
        buffer.seek(0)
        restored = load_updates(buffer)
        originals = [e for e in events if not e.is_withdrawal]
        restored_announce = [e for e in restored if not e.is_withdrawal]
        assert len(restored_announce) == len(originals)
        for a, b in zip(restored_announce, originals):
            assert a.prefix == b.prefix
            assert a.attributes.as_path == b.attributes.as_path
        # Withdrawals of known routes survive with augmented attributes.
        assert restored.withdraw_count() == sum(
            1 for e in events if e.is_withdrawal
        )


class TestRibRoundTrip:
    def test_dump_then_load_preserves_inventory(self, tmp_path):
        rex = RouteExplorer()
        populate_view(rex, 1200, BERKELEY_PROFILE, routes_per_prefix=1.8)
        path = tmp_path / "rib.mrt"
        dump_rib(rex, path)
        restored = load_rib(path)
        assert restored.route_count() == rex.route_count()
        assert restored.prefix_count() == rex.prefix_count()
        assert restored.nexthop_count() == rex.nexthop_count()
        assert set(restored.peers()) == set(rex.peers())

    def test_attributes_survive(self, tmp_path):
        rex = RouteExplorer()
        populate_view(rex, 200, BERKELEY_PROFILE, routes_per_prefix=1.5)
        path = tmp_path / "rib.mrt"
        dump_rib(rex, path)
        restored = load_rib(path)
        peer = rex.peers()[0]
        for route in rex.rib(peer).routes():
            assert restored.rib(peer).get(route.prefix) == route.attributes

    def test_tamp_picture_from_mrt(self, tmp_path):
        """The point of the package: a RIB file drives a TAMP picture."""
        from repro.net.prefix import format_address
        from repro.tamp.graph import TampGraph
        from repro.tamp.prune import prune_flat
        from repro.tamp.tree import TampTree

        rex = RouteExplorer()
        populate_view(rex, 1000, BERKELEY_PROFILE, routes_per_prefix=1.8)
        path = tmp_path / "rib.mrt"
        dump_rib(rex, path)
        restored = load_rib(path)
        trees = [
            TampTree.from_routes(
                format_address(peer), restored.rib(peer).routes()
            )
            for peer in restored.peers()
        ]
        graph = prune_flat(TampGraph.merge(trees, site_name="mrt"))
        assert graph.total_prefixes() > 0
        assert graph.edge_count() > 0
