"""Unit, conformance and property tests for the BGP wire codec."""

import struct

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.mrt.bgp_codec import (
    MARKER,
    BGPCodecError,
    decode_attributes,
    decode_prefix,
    decode_update,
    encode_attributes,
    encode_prefix,
    encode_update,
)
from repro.net.aspath import ASPath
from repro.net.attributes import Community, Origin, PathAttributes
from repro.net.message import BGPUpdate
from repro.net.prefix import Prefix, parse_address


def attrs(**overrides) -> PathAttributes:
    base = dict(
        nexthop=parse_address("192.0.2.1"),
        as_path=ASPath.parse("11423 209 701"),
    )
    base.update(overrides)
    return PathAttributes(**base)


class TestPrefixWire:
    @pytest.mark.parametrize(
        "text,wire",
        [
            ("0.0.0.0/0", b"\x00"),
            ("10.0.0.0/8", b"\x08\x0a"),
            ("192.0.2.0/24", b"\x18\xc0\x00\x02"),
            ("192.0.2.128/25", b"\x19\xc0\x00\x02\x80"),
            ("203.0.113.7/32", b"\x20\xcb\x00\x71\x07"),
        ],
    )
    def test_rfc4271_examples(self, text, wire):
        """§4.3: length byte then the minimal network bytes."""
        prefix = Prefix.parse(text)
        assert encode_prefix(prefix) == wire
        decoded, offset = decode_prefix(wire, 0)
        assert decoded == prefix
        assert offset == len(wire)

    def test_reject_overlong_mask(self):
        with pytest.raises(BGPCodecError):
            decode_prefix(b"\x21\x00\x00\x00\x00\x00", 0)

    def test_reject_truncated(self):
        with pytest.raises(BGPCodecError):
            decode_prefix(b"\x18\xc0", 0)

    @given(
        st.integers(0, 0xFFFFFFFF),
        st.integers(0, 32),
    )
    def test_round_trip(self, raw, length):
        mask = 0 if length == 0 else (0xFFFFFFFF << (32 - length)) & 0xFFFFFFFF
        prefix = Prefix(raw & mask, length)
        decoded, _ = decode_prefix(encode_prefix(prefix), 0)
        assert decoded == prefix


class TestAttributeWire:
    def test_minimal_round_trip(self):
        decoded, skipped = decode_attributes(encode_attributes(attrs()))
        assert decoded == attrs()
        assert skipped == []

    def test_full_round_trip(self):
        full = attrs(
            origin=Origin.INCOMPLETE,
            local_pref=80,
            med=30,
            communities=[Community.parse("11423:65350"), Community(1, 2)],
            originator_id=parse_address("10.0.0.1"),
            cluster_list=(parse_address("10.0.0.2"), 7),
        )
        decoded, _ = decode_attributes(encode_attributes(full))
        assert decoded == full

    def test_as_set_round_trip(self):
        bundle = attrs(as_path=ASPath.parse("100 200 {300,400}"))
        decoded, _ = decode_attributes(encode_attributes(bundle))
        assert decoded.as_path == bundle.as_path

    def test_unknown_attribute_skipped(self):
        payload = encode_attributes(attrs())
        # Append an optional-transitive attribute of unknown type 99.
        payload += bytes([0xC0, 99, 2]) + b"\xde\xad"
        decoded, skipped = decode_attributes(payload)
        assert decoded == attrs()
        assert skipped == [99]

    def test_withdrawal_only_block(self):
        assert decode_attributes(b"") == (None, [])

    def test_malformed_origin_rejected(self):
        payload = bytes([0x40, 1, 1, 9])  # ORIGIN value 9
        with pytest.raises(BGPCodecError):
            decode_attributes(payload)

    def test_truncated_payload_rejected(self):
        payload = bytes([0x40, 2, 10, 0])  # claims 10 bytes, has 1
        with pytest.raises(BGPCodecError):
            decode_attributes(payload)

    def test_four_byte_asn(self):
        """RFC 6793: ASNs above 65535 must survive."""
        bundle = attrs(as_path=ASPath([4200000001, 209]))
        decoded, _ = decode_attributes(encode_attributes(bundle))
        assert decoded.as_path.sequence == (4200000001, 209)


class TestUpdateWire:
    def test_announcement_round_trip(self):
        update = BGPUpdate.announce(
            [Prefix.parse("192.0.2.0/24"), Prefix.parse("198.51.100.0/24")],
            attrs(),
        )
        decoded = decode_update(encode_update(update))
        assert decoded.update == update

    def test_withdrawal_round_trip(self):
        update = BGPUpdate.withdraw([Prefix.parse("192.0.2.0/24")])
        decoded = decode_update(encode_update(update))
        assert decoded.update == update

    def test_mixed_round_trip(self):
        update = BGPUpdate(
            withdrawals=BGPUpdate.withdraw(
                [Prefix.parse("10.0.0.0/8")]
            ).withdrawals,
            announcements=BGPUpdate.announce(
                [Prefix.parse("192.0.2.0/24")], attrs()
            ).announcements,
        )
        decoded = decode_update(encode_update(update))
        assert decoded.update == update

    def test_header_structure(self):
        """RFC 4271 §4.1: 16-byte marker of ones, 2-byte length, type 2."""
        wire = encode_update(BGPUpdate.withdraw([Prefix.parse("10.0.0.0/8")]))
        assert wire[:16] == MARKER
        length, msg_type = struct.unpack_from("!HB", wire, 16)
        assert length == len(wire)
        assert msg_type == 2

    def test_mixed_attribute_bundles_rejected(self):
        from repro.net.message import Announcement

        update = BGPUpdate(
            announcements=(
                Announcement(Prefix.parse("10.0.0.0/8"), attrs()),
                Announcement(Prefix.parse("11.0.0.0/8"), attrs(med=9)),
            )
        )
        with pytest.raises(BGPCodecError):
            encode_update(update)

    def test_oversized_update_rejected(self):
        prefixes = [Prefix(0x0A000000 + i * 256, 24) for i in range(1500)]
        with pytest.raises(BGPCodecError):
            encode_update(BGPUpdate.announce(prefixes, attrs()))

    def test_bad_marker_rejected(self):
        wire = bytearray(encode_update(BGPUpdate.withdraw(
            [Prefix.parse("10.0.0.0/8")])))
        wire[0] = 0
        with pytest.raises(BGPCodecError):
            decode_update(bytes(wire))

    def test_nlri_without_attributes_rejected(self):
        body = struct.pack("!H", 0) + struct.pack("!H", 0) + b"\x08\x0a"
        total = 19 + len(body)
        wire = MARKER + struct.pack("!HB", total, 2) + body
        with pytest.raises(BGPCodecError):
            decode_update(wire)

    @given(
        st.lists(
            st.tuples(
                st.integers(0, 0xFFFFFF), st.integers(8, 24)
            ),
            min_size=1,
            max_size=20,
        ),
        st.lists(st.integers(1, 1 << 31), min_size=1, max_size=6),
        st.integers(0, 200),
    )
    def test_property_round_trip(self, raw_prefixes, path, med):
        prefixes = []
        for raw, length in raw_prefixes:
            mask = (0xFFFFFFFF << (32 - length)) & 0xFFFFFFFF
            prefixes.append(Prefix((raw << 8) & mask, length))
        update = BGPUpdate.announce(
            dict.fromkeys(prefixes),  # dedupe, keep order
            attrs(as_path=ASPath(path), med=med),
        )
        decoded = decode_update(encode_update(update))
        assert decoded.update == update
