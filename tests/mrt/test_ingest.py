"""IngestReport / IngestPolicy / quarantine behavior of the loaders."""

import io
import json
import warnings

import pytest

from repro.collector.rex import RouteExplorer
from repro.mrt.ingest import (
    IngestError,
    IngestPolicy,
    IngestReport,
    IngestWarning,
    read_quarantine,
)
from repro.mrt.loader import dump_rib, load_rib, load_updates
from repro.mrt.records import (
    SUBTYPE_BGP4MP_MESSAGE_AS4,
    TYPE_BGP4MP,
    MRTError,
    MRTRecord,
    write_records,
)
from repro.simulator.synthetic import BERKELEY_PROFILE, populate_view
from repro.testkit.corpus import build_clean_records


def archive_bytes(records) -> bytes:
    buffer = io.BytesIO()
    write_records(records, buffer)
    return buffer.getvalue()


def garbage_record(timestamp: float = 1.0) -> MRTRecord:
    return MRTRecord(
        timestamp, TYPE_BGP4MP, SUBTYPE_BGP4MP_MESSAGE_AS4, b"\xde\xad"
    )


def mixed_archive(n_clean: int = 40, n_bad: int = 2) -> bytes:
    records = build_clean_records(n_updates=n_clean)
    for index in range(n_bad):
        records.insert(
            2 * index + 1, garbage_record(records[2 * index].timestamp)
        )
    return archive_bytes(records)


class TestReportAccounting:
    def test_clean_load_is_ok(self):
        stream = load_updates(
            io.BytesIO(archive_bytes(build_clean_records(n_updates=20)))
        )
        report = stream.ingest_report
        assert report.ok and not report.is_lossy
        assert report.kind == "updates"
        assert report.records_decoded == 20
        assert report.records_skipped == 0
        assert report.skip_rate == 0.0
        assert report.events_produced == len(stream)
        assert report.first_timestamp == 1000.0
        assert report.error_counts == {}

    def test_default_mode_counts_every_skip(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", IngestWarning)
            stream = load_updates(io.BytesIO(mixed_archive(n_bad=3)))
        report = stream.ingest_report
        assert report.records_skipped == 3
        assert report.records_decoded == 40
        assert report.attempted == 43
        assert report.skip_rate == pytest.approx(3 / 43)
        assert not report.ok
        assert sum(report.error_counts.values()) == 3

    def test_non_update_records_are_ignored_not_skipped(self):
        records = build_clean_records(n_updates=10)
        records.append(MRTRecord(2000.0, 99, 0, b"state-change"))
        stream = load_updates(io.BytesIO(archive_bytes(records)))
        report = stream.ingest_report
        assert report.records_ignored == 1
        assert report.records_skipped == 0
        assert report.ok

    def test_framing_error_recorded_and_load_stops(self):
        data = archive_bytes(build_clean_records(n_updates=20))
        stream = load_updates(io.BytesIO(data[:-7]))
        report = stream.ingest_report
        assert report.framing_error is not None
        assert not report.ok
        assert report.records_read < 20

    def test_out_of_order_and_gap_detection(self):
        records = build_clean_records(n_updates=6)
        shifted = MRTRecord(
            records[0].timestamp - 50.0, records[3].type,
            records[3].subtype, records[3].payload,
        )
        records[3] = shifted
        late = MRTRecord(
            records[-1].timestamp + 7200.0, records[-1].type,
            records[-1].subtype, records[-1].payload,
        )
        records.append(late)
        stream = load_updates(io.BytesIO(archive_bytes(records)))
        report = stream.ingest_report
        assert report.out_of_order_records >= 1
        assert report.gap_count == 1
        assert len(report.gaps) == 1
        _, gap_seconds = report.gaps[0]
        assert gap_seconds > 3600.0
        assert report.suspicious

    def test_report_rides_the_collector_too(self):
        rex = RouteExplorer()
        load_updates(
            io.BytesIO(archive_bytes(build_clean_records(n_updates=5))),
            rex=rex,
        )
        assert len(rex.ingest_reports) == 1
        assert rex.last_ingest is rex.ingest_reports[0]
        assert rex.ingest_ok()
        assert "ingest" in rex.ingest_summary()

    def test_to_dict_is_json_serializable(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", IngestWarning)
            stream = load_updates(io.BytesIO(mixed_archive()))
        payload = json.dumps(stream.ingest_report.to_dict())
        decoded = json.loads(payload)
        assert decoded["records_skipped"] == 2
        assert decoded["ok"] is False

    def test_summary_names_the_damage(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", IngestWarning)
            stream = load_updates(io.BytesIO(mixed_archive()))
        text = stream.ingest_report.summary()
        assert "skipped" in text
        assert "errors:" in text


class TestWarnPath:
    def test_warns_past_the_threshold(self):
        with pytest.warns(IngestWarning, match="inspect the IngestReport"):
            load_updates(io.BytesIO(mixed_archive(n_clean=40, n_bad=2)))

    def test_no_warning_on_clean_load(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", IngestWarning)
            load_updates(
                io.BytesIO(archive_bytes(build_clean_records(n_updates=20)))
            )

    def test_no_warning_below_the_threshold(self):
        policy = IngestPolicy(warn_threshold=0.2)
        with warnings.catch_warnings():
            warnings.simplefilter("error", IngestWarning)
            stream = load_updates(
                io.BytesIO(mixed_archive(n_clean=40, n_bad=2)),
                policy=policy,
            )
        # Still counted — quiet never means unaccounted.
        assert stream.ingest_report.records_skipped == 2


class TestStrictAndBudget:
    def test_strict_raises_immediately(self):
        with pytest.raises((MRTError, ValueError)):
            load_updates(io.BytesIO(mixed_archive()), strict=True)

    def test_strict_via_policy(self):
        with pytest.raises((MRTError, ValueError)):
            load_updates(
                io.BytesIO(mixed_archive()),
                policy=IngestPolicy(strict=True),
            )

    def test_budget_aborts_past_the_rate(self):
        records = build_clean_records(n_updates=30)
        for index in range(10):
            records.insert(3 * index, garbage_record(900.0 + index))
        policy = IngestPolicy(max_error_rate=0.1, min_records=10)
        with pytest.raises(IngestError) as exc_info:
            load_updates(io.BytesIO(archive_bytes(records)), policy=policy)
        report = exc_info.value.report
        assert report.aborted
        assert report.skip_rate > 0.1
        assert not report.ok

    def test_budget_tolerates_early_noise(self):
        # One bad record at the head of a long file: under min_records
        # the rate check holds off, and by the end the rate is tiny.
        records = build_clean_records(n_updates=60)
        records.insert(0, garbage_record(999.0))
        policy = IngestPolicy(
            max_error_rate=0.05, min_records=25, warn_threshold=0.5
        )
        stream = load_updates(
            io.BytesIO(archive_bytes(records)), policy=policy
        )
        assert stream.ingest_report.records_skipped == 1
        assert not stream.ingest_report.aborted


class TestQuarantine:
    def test_undecodable_records_are_replayable(self, tmp_path):
        qpath = tmp_path / "quarantine.jsonl"
        policy = IngestPolicy(quarantine=qpath, warn_threshold=1.0)
        stream = load_updates(
            io.BytesIO(mixed_archive(n_bad=3)), policy=policy
        )
        assert stream.ingest_report.records_quarantined == 3
        replayed = list(read_quarantine(qpath))
        assert len(replayed) == 3
        assert all(r.payload == b"\xde\xad" for r in replayed)
        assert all(r.type == TYPE_BGP4MP for r in replayed)

    def test_quarantine_lines_carry_the_error(self, tmp_path):
        qpath = tmp_path / "quarantine.jsonl"
        policy = IngestPolicy(quarantine=qpath, warn_threshold=1.0)
        load_updates(io.BytesIO(mixed_archive(n_bad=1)), policy=policy)
        entry = json.loads(qpath.read_text().splitlines()[0])
        assert entry["error"]
        assert entry["message"]
        assert bytes.fromhex(entry["payload"]) == b"\xde\xad"

    def test_clean_load_leaves_no_quarantine_file(self, tmp_path):
        qpath = tmp_path / "quarantine.jsonl"
        policy = IngestPolicy(quarantine=qpath)
        load_updates(
            io.BytesIO(archive_bytes(build_clean_records(n_updates=5))),
            policy=policy,
        )
        assert not qpath.exists()


class TestRibIngest:
    def _rib_bytes(self, n_prefixes: int = 60) -> bytes:
        rex = RouteExplorer()
        populate_view(rex, n_prefixes, BERKELEY_PROFILE,
                      routes_per_prefix=1.5)
        buffer = io.BytesIO()
        dump_rib(rex, buffer)
        return buffer.getvalue()

    def test_clean_rib_reports_entries(self):
        restored = load_rib(io.BytesIO(self._rib_bytes()))
        report = restored.last_ingest
        assert report.kind == "rib"
        assert report.ok
        assert report.entries_read == restored.route_count()
        assert report.entries_skipped == 0

    def test_truncated_rib_sets_framing_error(self):
        data = self._rib_bytes()
        restored = load_rib(io.BytesIO(data[: len(data) // 2]))
        report = restored.last_ingest
        assert report.framing_error is not None
        assert not report.ok
        assert not restored.ingest_ok()

    def test_corrupt_rib_counts_skips(self):
        from repro.testkit.faults import corrupt_payloads
        from repro.mrt.records import read_records

        records = list(read_records(io.BytesIO(self._rib_bytes())))
        # Leave the peer-index record intact so entries stay mappable.
        damaged = records[:1] + corrupt_payloads(
            records[1:], rate=0.5, byte_rate=0.1, seed=5
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", IngestWarning)
            restored = load_rib(io.BytesIO(archive_bytes(damaged)))
        report = restored.last_ingest
        assert not report.ok
        assert (report.records_skipped + report.entries_skipped) > 0

    def test_strict_rib_raises(self):
        data = self._rib_bytes()
        with pytest.raises(MRTError):
            load_rib(io.BytesIO(data[: len(data) // 2]), strict=True)


class TestReportUnit:
    def test_observe_timestamp_tracks_shape(self):
        report = IngestReport(source="x")
        for t in (10.0, 20.0, 15.0, 8000.0):
            report.observe_timestamp(t, gap_threshold=3600.0)
        assert report.first_timestamp == 10.0
        assert report.last_timestamp == 8000.0
        assert report.out_of_order_records == 1
        assert report.gap_count == 1

    def test_gap_list_is_bounded(self):
        from repro.mrt.ingest import MAX_RECORDED_GAPS

        report = IngestReport(source="x")
        t = 0.0
        for _ in range(MAX_RECORDED_GAPS + 10):
            report.observe_timestamp(t, gap_threshold=1.0)
            t += 10.0
        assert report.gap_count == MAX_RECORDED_GAPS + 9
        assert len(report.gaps) == MAX_RECORDED_GAPS

    def test_empty_report_is_ok_but_not_suspicious(self):
        report = IngestReport(source="x")
        assert report.ok
        assert not report.suspicious
        assert report.skip_rate == 0.0
