"""Property-based round-trip and fuzz tests for the BGP wire codec.

Two guarantees, one per test family:

* **Round-trip**: any modeled value survives encode → decode exactly.
* **Fuzz**: any mutation of valid wire bytes either still decodes or
  raises :class:`BGPCodecError` / :class:`MRTError` — never a stray
  exception, never a crash. (Mis-decoding into a *different valid*
  message is possible for some bit flips — that is what the ingest
  accounting and chaos suite are for — but the codec must never die.)
"""

import io

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mrt.bgp_codec import (
    BGPCodecError,
    decode_attributes,
    decode_prefix,
    decode_update,
    encode_attributes,
    encode_prefix,
    encode_update,
)
from repro.mrt.records import (
    MRTError,
    decode_bgp4mp,
    read_records,
)
from repro.net.aspath import ASPath
from repro.net.attributes import Community, Origin, PathAttributes
from repro.net.message import BGPUpdate
from repro.net.prefix import Prefix
from repro.testkit.corpus import build_clean_records
from repro.testkit.faults import flip_bytes, truncate_bytes


def prefixes() -> st.SearchStrategy[Prefix]:
    def build(raw: int, length: int) -> Prefix:
        mask = 0 if length == 0 else (
            (0xFFFFFFFF << (32 - length)) & 0xFFFFFFFF
        )
        return Prefix(raw & mask, length)

    return st.builds(
        build, st.integers(0, 0xFFFFFFFF), st.integers(0, 32)
    )


def as_paths() -> st.SearchStrategy[ASPath]:
    asn = st.integers(1, 0xFFFFFFFF)
    return st.builds(
        ASPath,
        st.lists(asn, min_size=1, max_size=6),
        st.frozensets(asn, max_size=4),
    )


def communities() -> st.SearchStrategy[Community]:
    part = st.integers(0, 0xFFFF)
    return st.builds(Community, part, part)


def attribute_bundles() -> st.SearchStrategy[PathAttributes]:
    addr = st.integers(0, 0xFFFFFFFF)
    return st.builds(
        PathAttributes,
        nexthop=addr,
        as_path=as_paths(),
        origin=st.sampled_from(list(Origin)),
        local_pref=st.integers(0, 0xFFFFFFFF),
        med=st.one_of(st.none(), st.integers(0, 0xFFFFFFFF)),
        communities=st.frozensets(communities(), max_size=5),
        originator_id=st.one_of(st.none(), addr),
        cluster_list=st.lists(addr, max_size=3),
    )


class TestRoundTrips:
    @given(prefixes())
    @settings(max_examples=200, deadline=None)
    def test_prefix_round_trip(self, prefix):
        decoded, offset = decode_prefix(encode_prefix(prefix), 0)
        assert decoded == prefix
        assert offset == len(encode_prefix(prefix))

    @given(attribute_bundles())
    @settings(max_examples=100, deadline=None)
    def test_attributes_round_trip(self, attrs):
        decoded, skipped = decode_attributes(encode_attributes(attrs))
        assert skipped == []
        assert decoded == attrs

    @given(
        st.lists(prefixes(), min_size=1, max_size=8, unique=True),
        attribute_bundles(),
    )
    @settings(max_examples=50, deadline=None)
    def test_announce_update_round_trip(self, nlri, attrs):
        update = BGPUpdate.announce(nlri, attrs)
        decoded = decode_update(encode_update(update))
        assert decoded.skipped_attributes == ()
        announced = [a.prefix for a in decoded.update.announcements]
        assert announced == list(nlri)
        assert decoded.update.announcements[0].attributes == attrs

    @given(st.lists(prefixes(), min_size=1, max_size=8, unique=True))
    @settings(max_examples=50, deadline=None)
    def test_withdraw_update_round_trip(self, nlri):
        update = BGPUpdate.withdraw(nlri)
        decoded = decode_update(encode_update(update))
        withdrawn = [w.prefix for w in decoded.update.withdrawals]
        assert withdrawn == list(nlri)
        assert decoded.update.announcements == ()


def valid_update_bytes() -> st.SearchStrategy[bytes]:
    return st.builds(
        lambda nlri, attrs: encode_update(BGPUpdate.announce(nlri, attrs)),
        st.lists(prefixes(), min_size=1, max_size=4, unique=True),
        attribute_bundles(),
    )


class TestFuzzNeverCrashes:
    @given(
        valid_update_bytes(),
        st.integers(0, 2**32 - 1),
        st.floats(0.01, 0.3),
    )
    @settings(max_examples=150, deadline=None)
    def test_bit_flipped_updates_decode_or_raise_codec_errors(
        self, wire, seed, rate
    ):
        mutated = flip_bytes(wire, rate=rate, seed=seed)
        try:
            decoded = decode_update(mutated)
        except (BGPCodecError, MRTError):
            return  # rejected cleanly: the guarantee holds
        assert decoded.update is not None

    @given(valid_update_bytes(), st.integers(0, 2**32 - 1))
    @settings(max_examples=100, deadline=None)
    def test_truncated_updates_decode_or_raise_codec_errors(
        self, wire, seed
    ):
        mutated = truncate_bytes(wire, keep_min=0.0, keep_max=0.95,
                                 seed=seed)
        try:
            decode_update(mutated)
        except (BGPCodecError, MRTError):
            pass

    @given(st.binary(max_size=64))
    @settings(max_examples=150, deadline=None)
    def test_arbitrary_bytes_never_crash_the_update_codec(self, blob):
        try:
            decode_update(blob)
        except (BGPCodecError, MRTError):
            pass

    @given(st.binary(max_size=64))
    @settings(max_examples=150, deadline=None)
    def test_arbitrary_bytes_never_crash_the_attribute_codec(self, blob):
        try:
            decode_attributes(blob)
        except (BGPCodecError, MRTError):
            pass

    @given(st.binary(max_size=64))
    @settings(max_examples=100, deadline=None)
    def test_arbitrary_bytes_never_crash_the_envelope_codec(self, blob):
        try:
            decode_bgp4mp(blob)
        except (BGPCodecError, MRTError):
            pass

    @given(st.integers(0, 2**32 - 1), st.floats(0.001, 0.05))
    @settings(max_examples=25, deadline=None)
    def test_flipped_archives_frame_or_raise_mrt_errors(self, seed, rate):
        """Whole-archive fuzz: framing either yields records or raises
        MRTError; whatever frames must decode or raise codec errors."""
        buffer = io.BytesIO()
        from repro.mrt.records import write_records

        write_records(build_clean_records(n_updates=10), buffer)
        mutated = flip_bytes(buffer.getvalue(), rate=rate, seed=seed)
        try:
            records = list(read_records(io.BytesIO(mutated)))
        except MRTError:
            return
        for record in records:
            if not record.is_bgp4mp_update:
                continue
            try:
                decode_update(decode_bgp4mp(record.payload).bgp_message)
            except (BGPCodecError, MRTError):
                pass
