"""Tests for IOS-style as-path access-lists."""

import pytest

from repro.bgp.errors import PolicyError
from repro.bgp.policy import MatchASPathRegex, compile_as_path_regex
from repro.config.compiler import compile_config
from repro.config.parser import ConfigParseError, parse_config
from tests.config.test_compiler import P, attrs


class TestRegexTranslation:
    @pytest.mark.parametrize(
        "pattern,path,matches",
        [
            ("_701_", "11423 701 3356", True),
            ("_701_", "11423 7018 3356", False),  # 7018 is not 701
            ("^11423", "11423 209", True),
            ("^11423", "209 11423", False),
            ("209$", "11423 209", True),
            ("^$", "", True),  # locally originated
            ("^$", "11423", False),
            ("_209_701_", "11423 209 701 5", True),
            (".*", "anything 1 2", True),
        ],
    )
    def test_ios_semantics(self, pattern, path, matches):
        regex = compile_as_path_regex(pattern)
        assert (regex.search(path) is not None) == matches

    def test_bad_regex_rejected(self):
        with pytest.raises(PolicyError):
            compile_as_path_regex("(unclosed")

    def test_escaped_underscore_literal(self):
        # An escaped underscore stays literal (paths never contain one,
        # so it simply never matches).
        regex = compile_as_path_regex(r"\_")
        assert regex.search("1 2 3") is None


class TestMatchCondition:
    def test_match_against_attributes(self):
        condition = MatchASPathRegex("_209_")
        from repro.bgp.policy import PolicyContext

        assert condition.matches(P, attrs(path="11423 209"), PolicyContext())
        assert not condition.matches(P, attrs(path="11423 701"), PolicyContext())


CONFIG = """\
hostname r
ip as-path access-list NO-TRANSIT-X deny _666_
ip as-path access-list NO-TRANSIT-X permit .*
route-map IMPORT permit 10
 match as-path NO-TRANSIT-X
 set local-preference 90
router bgp 25
 neighbor 10.0.0.1 remote-as 11423
 neighbor 10.0.0.1 route-map IMPORT in
"""


class TestConfigIntegration:
    def test_parse_as_path_list(self):
        config = parse_config(CONFIG)
        assert len(config.as_path_lists) == 2
        deny, permit = config.as_path_lists
        assert not deny.permit
        assert deny.regex == "_666_"
        assert permit.permit

    def test_compiled_first_match_semantics(self):
        compiled = compile_config(parse_config(CONFIG))
        route_map = compiled.route_maps["IMPORT"]
        # A path transiting AS 666 is denied (no clause matches: the
        # as-path list returns False, clause 10 fails, implicit deny).
        assert route_map.apply(P, attrs(path="11423 666 3356")) is None
        clean = route_map.apply(P, attrs(path="11423 209"))
        assert clean is not None
        assert clean.local_pref == 90

    def test_bad_regex_in_config_names_line(self):
        text = "ip as-path access-list X permit (unclosed\n"
        with pytest.raises(ConfigParseError) as info:
            parse_config(text)
        assert info.value.line_number == 1

    def test_dangling_list_reference(self):
        text = """\
route-map M permit 10
 match as-path GHOST
router bgp 1
 neighbor 1.1.1.1 remote-as 2
"""
        with pytest.raises(PolicyError):
            compile_config(parse_config(text))

    def test_truncated_list_rejected(self):
        with pytest.raises(ConfigParseError):
            parse_config("ip as-path access-list X permit\n")

    def test_regex_with_spaces(self):
        text = "ip as-path access-list X permit ^11423 209$\n"
        config = parse_config(text)
        assert config.as_path_lists[0].regex == "^11423 209$"
