"""Round-trip tests for the configuration renderer."""

import pytest

from repro.config.parser import parse_config
from repro.config.render import render_config
from tests.config.test_parser import BERKELEY_STYLE


def normalize(text: str) -> str:
    """Parse-and-render: the canonical form of a configuration."""
    return render_config(parse_config(text))


class TestRoundTrip:
    def test_fixpoint_on_berkeley_config(self):
        once = normalize(BERKELEY_STYLE)
        assert normalize(once) == once

    def test_semantics_preserved(self):
        """The rendered config compiles to equivalent policy objects."""
        from repro.config.compiler import compile_config
        from repro.net.attributes import Community
        from tests.config.test_compiler import P, attrs

        original = compile_config(parse_config(BERKELEY_STYLE))
        rendered = compile_config(parse_config(normalize(BERKELEY_STYLE)))
        tagged = attrs(communities=["11423:65350"])
        for config in (original, rendered):
            assert (
                config.route_maps["FROM-CALREN"].apply(P, tagged).local_pref
                == 80
            )
        assert original.asn == rendered.asn
        assert set(original.neighbors) == set(rendered.neighbors)

    @pytest.mark.parametrize(
        "text",
        [
            "hostname h\n",
            "ip prefix-list X permit 10.0.0.0/8 ge 16 le 24\n",
            "ip community-list standard C deny 1:1 2:2\n",
            "ip as-path access-list A permit _701_\n",
            "route-map M deny 20\n match local-origin\n",
            (
                "route-map M permit 10\n"
                " match as-path contains 7018\n"
                " set metric 30\n"
                " set community 1:2 3:4 additive\n"
                " set as-path prepend 100 100\n"
                " set ip next-hop 10.0.0.9\n"
            ),
            (
                "router bgp 7\n"
                " bgp router-id 1.2.3.4\n"
                " bgp cluster-id 4.3.2.1\n"
                " bgp always-compare-med\n"
                " bgp bestpath med missing-as-worst\n"
                " network 10.0.0.0/8\n"
                " neighbor 1.1.1.1 remote-as 2\n"
                " neighbor 1.1.1.1 maximum-prefix 100\n"
                " neighbor 1.1.1.1 route-reflector-client\n"
                " neighbor 1.1.1.1 next-hop-self\n"
            ),
        ],
    )
    def test_fixpoint_per_statement(self, text):
        once = normalize(text)
        assert normalize(once) == once

    def test_site_builder_configs_round_trip(self):
        """The Berkeley workload's generated configs survive the cycle."""
        from repro.simulator.workloads import BerkeleySite

        site = BerkeleySite(n_prefixes=150)
        for text in (site._edge13_config(), site._edge200_config()):
            once = normalize(text)
            assert normalize(once) == once
