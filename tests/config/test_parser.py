"""Unit tests for the configuration parser."""

import pytest

from repro.config.parser import ConfigParseError, parse_config
from repro.net.prefix import Prefix, parse_address

BERKELEY_STYLE = """\
hostname edge-1
!
ip prefix-list LOWER-HALF seq 5 permit 0.0.0.0/1 le 32
ip prefix-list LOWER-HALF seq 10 deny 0.0.0.0/0 le 32
ip community-list standard ISP-ROUTES permit 11423:65350
ip community-list standard OTHER-ROUTES permit 11423:65300 11423:65301
!
route-map FROM-CALREN permit 10
 match community ISP-ROUTES
 set local-preference 80
route-map FROM-CALREN permit 20
 set local-preference 100
!
router bgp 25
 bgp router-id 128.32.1.3
 bgp deterministic-med
 network 128.32.0.0/16
 neighbor 128.32.0.66 remote-as 11423
 neighbor 128.32.0.66 route-map FROM-CALREN in
 neighbor 128.32.0.66 maximum-prefix 150000
 neighbor 10.1.1.1 remote-as 25
 neighbor 10.1.1.1 route-reflector-client
 neighbor 10.1.1.1 next-hop-self
"""


class TestFullConfig:
    def test_parses_complete_config(self):
        config = parse_config(BERKELEY_STYLE)
        assert config.hostname == "edge-1"
        assert len(config.prefix_lists) == 2
        assert len(config.community_lists) == 2
        assert len(config.route_maps) == 2
        assert config.bgp is not None

    def test_prefix_list_fields(self):
        config = parse_config(BERKELEY_STYLE)
        first, second = config.prefix_lists
        assert first.name == "LOWER-HALF"
        assert first.sequence == 5
        assert first.permit
        assert first.prefix == Prefix.parse("0.0.0.0/1")
        assert first.le == 32 and first.ge is None
        assert not second.permit

    def test_community_list_fields(self):
        config = parse_config(BERKELEY_STYLE)
        other = config.community_lists[1]
        assert other.name == "OTHER-ROUTES"
        assert len(other.communities) == 2

    def test_route_map_entries(self):
        config = parse_config(BERKELEY_STYLE)
        first, second = config.route_maps
        assert (first.name, first.sequence) == ("FROM-CALREN", 10)
        assert first.matches[0].kind == "community"
        assert first.matches[0].argument == "ISP-ROUTES"
        assert first.sets[0].kind == "local-preference"
        assert first.sets[0].arguments == ("80",)
        assert second.sequence == 20
        assert second.matches == ()

    def test_bgp_section(self):
        bgp = parse_config(BERKELEY_STYLE).bgp
        assert bgp.asn == 25
        assert bgp.router_id == parse_address("128.32.1.3")
        assert bgp.deterministic_med
        assert not bgp.always_compare_med
        assert bgp.networks == (Prefix.parse("128.32.0.0/16"),)
        kinds = {(n.address, n.kind) for n in bgp.neighbors}
        assert (parse_address("128.32.0.66"), "maximum-prefix") in kinds
        assert (parse_address("10.1.1.1"), "route-reflector-client") in kinds

    def test_line_numbers_recorded(self):
        config = parse_config(BERKELEY_STYLE)
        assert config.prefix_lists[0].line_number == 3
        assert config.route_maps[0].line_number == 8


class TestDirectiveVariants:
    def test_match_variants(self):
        text = """\
route-map M permit 10
 match ip address prefix-list PL
 match as-path contains 7018
 match local-origin
router bgp 1
 neighbor 1.1.1.1 remote-as 2
"""
        entry = parse_config(text).route_maps[0]
        kinds = [m.kind for m in entry.matches]
        assert kinds == ["prefix-list", "as-path-contains", "local-origin"]

    def test_set_variants(self):
        text = """\
route-map M permit 10
 set metric 50
 set community 1:2 3:4 additive
 set comm-list CL delete
 set as-path prepend 100 100
 set ip next-hop 10.0.0.1
router bgp 1
 neighbor 1.1.1.1 remote-as 2
"""
        entry = parse_config(text).route_maps[0]
        kinds = [s.kind for s in entry.sets]
        assert kinds == [
            "metric",
            "community",
            "comm-list-delete",
            "prepend",
            "next-hop",
        ]
        assert entry.sets[1].arguments == ("1:2", "3:4", "additive")

    def test_bgp_flags(self):
        text = """\
router bgp 7
 bgp always-compare-med
 bgp bestpath med missing-as-worst
 bgp cluster-id 1.2.3.4
 neighbor 1.1.1.1 remote-as 2
"""
        bgp = parse_config(text).bgp
        assert bgp.always_compare_med
        assert bgp.med_missing_as_worst
        assert bgp.cluster_id == parse_address("1.2.3.4")

    def test_prefix_list_ge_le(self):
        text = "ip prefix-list X permit 10.0.0.0/8 ge 16 le 24\n"
        line = parse_config(text).prefix_lists[0]
        assert (line.ge, line.le) == (16, 24)

    def test_route_map_deny(self):
        text = "route-map M deny 10\n"
        assert not parse_config(text).route_maps[0].permit


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "frobnicate everything\n",
            "ip prefix-list X permit not-a-prefix\n",
            "ip prefix-list X permit 1.2.3.0/24 ge\n",
            "ip community-list X permit\n",
            "ip community-list X permit notacommunity\n",
            "route-map M sideways 10\n",
            "route-map M permit ten\n",
            "route-map M permit 10\n match nothing-known 5\n",
            "route-map M permit 10\n set nothing-known 5\n",
            "route-map M permit 10\n frobnicate\n",
            "router bgp notanumber\n",
            "router bgp 1\n unknown directive\n",
            "router bgp 1\n neighbor 1.1.1.1 remote-as xyz\n",
            "router bgp 1\n neighbor 1.1.1.1 warp-speed\n",
            "router bgp 1\n!\nrouter bgp 2\n",
            " indented outside any block\n",
        ],
    )
    def test_malformed_rejected(self, text):
        with pytest.raises(ConfigParseError):
            parse_config(text)

    def test_error_carries_line_number(self):
        try:
            parse_config("hostname ok\nbogus statement\n")
        except ConfigParseError as exc:
            assert exc.line_number == 2
            assert "line 2" in str(exc)
        else:
            pytest.fail("expected ConfigParseError")

    def test_comments_and_blanks_ignored(self):
        config = parse_config("! comment\n\n!\nhostname h\n")
        assert config.hostname == "h"
