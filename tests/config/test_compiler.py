"""Unit tests for the configuration compiler."""

import pytest

from repro.bgp.errors import PolicyError
from repro.bgp.policy import PolicyContext
from repro.config.compiler import compile_config
from repro.config.parser import parse_config
from repro.net.aspath import ASPath
from repro.net.attributes import Community, PathAttributes
from repro.net.prefix import Prefix, parse_address


def compiled(text: str):
    return compile_config(parse_config(text))


def attrs(path="11423 209", communities=(), **kwargs) -> PathAttributes:
    return PathAttributes(
        nexthop=parse_address("128.32.0.66"),
        as_path=ASPath.parse(path),
        communities=[Community.parse(c) for c in communities],
        **kwargs,
    )


P = Prefix.parse("192.0.2.0/24")

BERKELEY_EDGE = """\
hostname edge-1
ip community-list standard ISP-ROUTES permit 11423:65350
route-map FROM-CALREN permit 10
 match community ISP-ROUTES
 set local-preference 80
route-map FROM-CALREN permit 20
 set local-preference 100
router bgp 25
 bgp router-id 128.32.1.3
 neighbor 128.32.0.66 remote-as 11423
 neighbor 128.32.0.66 route-map FROM-CALREN in
"""


class TestRouteMapCompilation:
    def test_community_keyed_local_pref(self):
        """The paper's D.1 example: LOCAL_PREF 80 for tagged ISP routes."""
        config = compiled(BERKELEY_EDGE)
        route_map = config.route_maps["FROM-CALREN"]
        tagged = route_map.apply(P, attrs(communities=["11423:65350"]))
        plain = route_map.apply(P, attrs())
        assert tagged.local_pref == 80
        assert plain.local_pref == 100

    def test_neighbor_policy_wired(self):
        config = compiled(BERKELEY_EDGE)
        neighbor = config.neighbor("128.32.0.66")
        assert neighbor.remote_as == 11423
        assert neighbor.import_map_name == "FROM-CALREN"
        imported = neighbor.policy.import_route(
            P, attrs(communities=["11423:65350"])
        )
        assert imported.local_pref == 80

    def test_source_lines_tracked(self):
        config = compiled(BERKELEY_EDGE)
        lines = dict(config.source_lines["FROM-CALREN"])
        assert lines[10] == 3
        assert lines[20] == 6

    def test_clause_order_by_sequence(self):
        text = """\
route-map M permit 20
 set local-preference 50
route-map M permit 10
 set local-preference 99
router bgp 1
 neighbor 1.1.1.1 remote-as 2
"""
        route_map = compiled(text).route_maps["M"]
        assert route_map.apply(P, attrs()).local_pref == 99

    def test_duplicate_sequence_rejected(self):
        text = """\
route-map M permit 10
route-map M permit 10
router bgp 1
 neighbor 1.1.1.1 remote-as 2
"""
        with pytest.raises(PolicyError):
            compiled(text)


class TestListSemantics:
    def test_prefix_list_first_match_decides(self):
        text = """\
ip prefix-list PL seq 5 deny 192.0.2.0/24
ip prefix-list PL seq 10 permit 192.0.0.0/8 le 32
route-map M permit 10
 match ip address prefix-list PL
router bgp 1
 neighbor 1.1.1.1 remote-as 2
"""
        config = compiled(text)
        pl = config.prefix_lists["PL"]
        ctx = PolicyContext()
        assert not pl.matches(P, attrs(), ctx)  # denied by seq 5
        assert pl.matches(Prefix.parse("192.0.3.0/24"), attrs(), ctx)
        # Implicit deny for prefixes outside all lines.
        assert not pl.matches(Prefix.parse("10.0.0.0/8"), attrs(), ctx)

    def test_community_list_deny_line(self):
        text = """\
ip community-list CL deny 1:1
ip community-list CL permit 1:2
router bgp 1
 neighbor 1.1.1.1 remote-as 2
"""
        cl = compiled(text).community_lists["CL"]
        ctx = PolicyContext()
        assert not cl.matches(P, attrs(communities=["1:1"]), ctx)
        assert cl.matches(P, attrs(communities=["1:2"]), ctx)
        assert not cl.matches(P, attrs(), ctx)


class TestSetActions:
    def test_set_community_replaces(self):
        text = """\
route-map M permit 10
 set community 9:9
router bgp 1
 neighbor 1.1.1.1 remote-as 2
"""
        result = compiled(text).route_maps["M"].apply(
            P, attrs(communities=["1:1", "2:2"])
        )
        assert result.communities == frozenset({Community.parse("9:9")})

    def test_set_community_additive(self):
        text = """\
route-map M permit 10
 set community 9:9 additive
router bgp 1
 neighbor 1.1.1.1 remote-as 2
"""
        result = compiled(text).route_maps["M"].apply(
            P, attrs(communities=["1:1"])
        )
        assert Community.parse("9:9") in result.communities
        assert Community.parse("1:1") in result.communities

    def test_comm_list_delete(self):
        text = """\
ip community-list CL permit 1:1 2:2
route-map M permit 10
 set comm-list CL delete
router bgp 1
 neighbor 1.1.1.1 remote-as 2
"""
        result = compiled(text).route_maps["M"].apply(
            P, attrs(communities=["1:1", "3:3"])
        )
        assert result.communities == frozenset({Community.parse("3:3")})

    def test_prepend_uniform(self):
        text = """\
route-map M permit 10
 set as-path prepend 100 100 100
router bgp 1
 neighbor 1.1.1.1 remote-as 2
"""
        result = compiled(text).route_maps["M"].apply(P, attrs(path="209"))
        assert result.as_path.sequence == (100, 100, 100, 209)

    def test_prepend_mixed_chain(self):
        text = """\
route-map M permit 10
 set as-path prepend 100 200
router bgp 1
 neighbor 1.1.1.1 remote-as 2
"""
        result = compiled(text).route_maps["M"].apply(P, attrs(path="209"))
        assert result.as_path.sequence == (100, 200, 209)

    def test_set_metric_and_nexthop(self):
        text = """\
route-map M permit 10
 set metric 30
 set ip next-hop 10.0.0.9
router bgp 1
 neighbor 1.1.1.1 remote-as 2
"""
        result = compiled(text).route_maps["M"].apply(P, attrs())
        assert result.med == 30
        assert result.nexthop == parse_address("10.0.0.9")


class TestBgpCompilation:
    def test_decision_flags(self):
        text = """\
router bgp 7
 bgp always-compare-med
 bgp deterministic-med
 bgp bestpath med missing-as-worst
 neighbor 1.1.1.1 remote-as 2
"""
        decision = compiled(text).decision
        assert decision.compare_med_always
        assert decision.deterministic_med
        assert decision.med_missing_as_worst

    def test_neighbor_flags(self):
        text = """\
router bgp 7
 neighbor 1.1.1.1 remote-as 7
 neighbor 1.1.1.1 route-reflector-client
 neighbor 1.1.1.1 next-hop-self
 neighbor 1.1.1.1 maximum-prefix 1000
"""
        neighbor = compiled(text).neighbor("1.1.1.1")
        assert neighbor.is_rr_client
        assert neighbor.nexthop_self
        assert neighbor.max_prefixes == 1000
        assert neighbor.policy.max_prefixes == 1000

    def test_networks(self):
        text = """\
router bgp 7
 network 128.32.0.0/16
 neighbor 1.1.1.1 remote-as 2
"""
        assert compiled(text).networks == (Prefix.parse("128.32.0.0/16"),)


class TestCompileErrors:
    def test_missing_bgp_section(self):
        with pytest.raises(PolicyError):
            compiled("hostname h\n")

    def test_dangling_route_map_reference(self):
        text = """\
router bgp 1
 neighbor 1.1.1.1 remote-as 2
 neighbor 1.1.1.1 route-map GHOST in
"""
        with pytest.raises(PolicyError):
            compiled(text)

    def test_dangling_community_list(self):
        text = """\
route-map M permit 10
 match community GHOST
router bgp 1
 neighbor 1.1.1.1 remote-as 2
"""
        with pytest.raises(PolicyError):
            compiled(text)

    def test_dangling_prefix_list(self):
        text = """\
route-map M permit 10
 match ip address prefix-list GHOST
router bgp 1
 neighbor 1.1.1.1 remote-as 2
"""
        with pytest.raises(PolicyError):
            compiled(text)

    def test_dangling_comm_list_delete(self):
        text = """\
route-map M permit 10
 set comm-list GHOST delete
router bgp 1
 neighbor 1.1.1.1 remote-as 2
"""
        with pytest.raises(PolicyError):
            compiled(text)

    def test_neighbor_without_remote_as(self):
        text = """\
router bgp 1
 neighbor 1.1.1.1 next-hop-self
"""
        with pytest.raises(PolicyError):
            compiled(text)
