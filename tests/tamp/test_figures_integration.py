"""Integration: TAMP over simulated workloads reproduces the figures.

Each test corresponds to a paper figure's qualitative claim; the
benchmark harness (benchmarks/test_figures.py) prints the quantitative
rows next to the published ones.
"""

import pytest

from repro.bgp.rib import Route
from repro.net.prefix import parse_address
from repro.simulator.scenarios import (
    backdoor_routes,
    med_oscillation,
    route_leak,
)
from repro.simulator.workloads import (
    AS_ABILENE,
    AS_CALREN,
    AS_KDDI,
    AS_LOS_NETTOS,
    AS_QWEST,
    COMM_CENIC_LAAP,
    LEAK_PATH_ASES,
    BerkeleySite,
)
from repro.tamp.animate import EdgeState, animate_stream
from repro.tamp.graph import TampGraph
from repro.tamp.prune import prune_flat, prune_hierarchical
from repro.tamp.tree import TampTree


def site_graph(site: BerkeleySite, routes=None) -> TampGraph:
    """Merge per-peer TAMP trees from REX's current tables."""
    trees = []
    for peer in site.rex.peers():
        rib = site.rex.rib(peer)
        routes_for_peer = list(rib.routes())
        if routes is not None:
            routes_for_peer = [
                r for r in routes_for_peer if routes(r)
            ]
        trees.append(
            TampTree.from_routes(
                f"{peer >> 24 & 255}.{peer >> 16 & 255}."
                f"{peer >> 8 & 255}.{peer & 255}",
                routes_for_peer,
                include_prefix_leaves=False,
            )
        )
    return TampGraph.merge(trees, site_name="Berkeley")


@pytest.fixture(scope="module")
def berkeley():
    return BerkeleySite(n_prefixes=400)


class TestFigure2Picture:
    def test_calren_carries_everything(self, berkeley):
        """Figure 2: 100% of prefixes come from CalREN."""
        graph = prune_flat(site_graph(berkeley))
        # Sum over edges into AS 11423 (from any nexthop): every prefix.
        carried = set()
        for (parent, child), prefixes in graph.edges():
            if child == ("as", AS_CALREN):
                carried |= prefixes
        assert len(carried) == graph.total_prefixes()

    def test_qwest_carries_about_80_percent(self, berkeley):
        """Figure 2: ~80% of prefixes via the commodity Internet / QWest."""
        graph = site_graph(berkeley)
        fraction = graph.edge_fraction(("as", AS_CALREN), ("as", AS_QWEST))
        assert fraction == pytest.approx(0.83, abs=0.05)

    def test_abilene_carries_about_6_percent(self, berkeley):
        graph = site_graph(berkeley)
        # Abilene hangs off CalREN's research AS 11422.
        fraction = graph.edge_fraction(("as", 11422), ("as", AS_ABILENE))
        assert fraction == pytest.approx(0.06, abs=0.02)

    def test_load_split_misconfiguration_visible(self, berkeley):
        """Section IV-A: .66 carries 78%, .70 carries 5% — visible as edge
        weights in the picture, invisible in 'show ip bgp'."""
        graph = site_graph(berkeley)
        nh66 = parse_address("128.32.0.66")
        nh70 = parse_address("128.32.0.70")
        total = graph.total_prefixes()
        w66 = graph.weight(("nh", nh66), ("as", AS_CALREN)) / total
        w70 = graph.weight(("nh", nh70), ("as", AS_CALREN)) / total
        assert w66 == pytest.approx(0.78, abs=0.03)
        assert w70 == pytest.approx(0.05, abs=0.02)

    def test_default_prune_keeps_picture_small(self, berkeley):
        raw = site_graph(berkeley)
        pruned = prune_flat(raw)
        assert pruned.edge_count() < raw.edge_count()
        assert pruned.edge_count() <= 40


class TestFigure5Backdoor:
    def test_backdoor_hidden_flat_exposed_hierarchical(self):
        site = BerkeleySite(n_prefixes=400)
        backdoor_routes(site)
        graph = site_graph(site)
        flat = prune_flat(graph)
        nh_backdoor = parse_address("169.229.0.157")
        assert ("nh", nh_backdoor) not in flat.nodes()
        hierarchical = prune_hierarchical(graph, keep_depth=4)
        assert ("nh", nh_backdoor) in hierarchical.nodes()
        assert hierarchical.has_edge(("nh", nh_backdoor), ("as", 7018))


class TestFigure6CommunitySubset:
    def test_tagged_subset_shows_mistag_split(self, berkeley):
        """TAMP of only the 2152:65297-tagged routes: ~32% Los Nettos,
        ~68% KDDI."""
        graph = site_graph(
            berkeley,
            routes=lambda r: COMM_CENIC_LAAP in r.attributes.communities,
        )
        total = graph.total_prefixes()
        ln = graph.weight(("as", 2152), ("as", AS_LOS_NETTOS)) / total
        kddi = graph.weight(("as", 2152), ("as", AS_KDDI)) / total
        assert ln == pytest.approx(0.32, abs=0.05)
        assert kddi == pytest.approx(0.68, abs=0.05)


class TestFigure7LeakAnimation:
    def test_animation_colors_tell_the_story(self):
        """Figure 7(b): the 11423-209 path loses (blue, with shadow), the
        6-AS-hop leak path gains (green)."""
        site = BerkeleySite(n_prefixes=200)
        baseline = list(site.rex.all_routes())
        incident = route_leak(site, cycles=1)
        qwest_edge = (("as", AS_CALREN), ("as", AS_QWEST))
        leak_edge = (("as", LEAK_PATH_ASES[2]), ("as", LEAK_PATH_ASES[3]))
        animation = animate_stream(
            incident.stream,
            baseline=baseline,
            play_duration=2.0,
            fps=5,
        )
        qwest_states = animation.states_seen(qwest_edge)
        leak_states = animation.states_seen(leak_edge)
        assert EdgeState.LOSING in qwest_states
        assert EdgeState.GAINING in leak_states

    def test_shadow_remembers_leak_peak(self):
        site = BerkeleySite(n_prefixes=200)
        baseline = list(site.rex.all_routes())
        feed13 = parse_address("128.32.0.1")
        # Only the leak phase (no restore): the QWest edge ends shrunken.
        incident = route_leak(site, cycles=1, leak_hold=1e9)
        stream = incident.stream.between(100.0, 150.0)
        animation = animate_stream(
            stream, baseline=baseline, play_duration=1.0, fps=5
        )
        qwest_edge = (("as", AS_CALREN), ("as", AS_QWEST))
        shadows = animation.final_shadows()
        assert qwest_edge in shadows
        assert shadows[qwest_edge] > animation.tamp.graph.weight(*qwest_edge)


class TestFigure3MedAnimation:
    def test_oscillating_edge_flaps_yellow(self):
        incident = med_oscillation(flap_count=60, period=0.02)
        nh_as2 = parse_address("10.3.4.5")
        edge = (("nh", nh_as2), ("as", 2))
        animation = animate_stream(
            incident.stream,
            play_duration=1.0,
            fps=10,
            track_edges=[edge],
        )
        states = animation.states_seen(edge)
        assert EdgeState.FLAPPING in states

    def test_impulse_plot_on_selected_edge(self):
        """The Figure 3 side plot: the selected edge's single prefix
        pulses between present and absent."""
        incident = med_oscillation(flap_count=60, period=0.02)
        nh_as2 = parse_address("10.3.4.5")
        edge = (("nh", nh_as2), ("as", 2))
        animation = animate_stream(
            incident.stream, play_duration=1.0, fps=10, track_edges=[edge]
        )
        series = animation.series[edge]
        assert series.is_impulse_train()
        assert set(series.counts()) <= {0, 1}
