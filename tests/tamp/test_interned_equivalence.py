"""The interned TAMP pipeline must reproduce the original builder.

The rewrite (DESIGN.md §10) swapped per-edge ``set[Prefix]`` stores for
interned id stores, added a fused serial fast path and a sharded
parallel path — all pure implementation: these tests pin the decoded
results to the preserved pre-rewrite builder
(:mod:`repro.tamp.reference`) at every observable level:

* the edge set and per-edge prefix sets (the weights),
* the per-edge refcount maps,
* the flat-prune survivors,
* the rendered picture, byte for byte,

on both site profiles, serially and sharded across a real fork pool
(``REPRO_FORCE_WORKERS`` lifts the single-CPU affinity cap). A final
family checks the batch event path against incremental maintenance,
and the ``total_prefixes`` cache against mutate-after-read staleness.
"""

import hashlib

import pytest

from repro.collector.events import BGPEvent, EventKind
from repro.collector.rex import RouteExplorer
from repro.net.prefix import Prefix, format_address
from repro.perf import ENV_FORCE_WORKERS, fork_available
from repro.simulator.synthetic import (
    BERKELEY_PROFILE,
    ISP_ANON_PROFILE,
    populate_view,
)
from repro.tamp.graph import TampGraph
from repro.tamp.incremental import IncrementalTamp
from repro.tamp.picture import (
    build_picture,
    picture_from_events,
    picture_from_rex,
)
from repro.tamp.prune import prune_flat
from repro.tamp.render import render_svg
from repro.tamp.reference import reference_picture, reference_prune_flat
from repro.tamp.tree import TampTree

#: profile, route count, routes-per-prefix (Berkeley has only 4 peers,
#: so its multi-homing factor must stay below that).
PROFILES = {
    "berkeley": (BERKELEY_PROFILE, 1_200, 1.8),
    "isp-anon": (ISP_ANON_PROFILE, 6_000, 7.5),
}


def route_groups(profile_name, seed=2002):
    profile, n_routes, per_prefix = PROFILES[profile_name]
    rex = RouteExplorer()
    populate_view(
        rex, n_routes, profile, routes_per_prefix=per_prefix, seed=seed
    )
    return [
        (format_address(peer), list(rex.rib(peer).routes()))
        for peer in rex.peers()
    ]


def decoded(graph):
    return {edge: set(prefixes) for edge, prefixes in graph.edges()}


def svg_digest(graph, title):
    return hashlib.sha256(
        render_svg(graph, title=title).encode()
    ).hexdigest()


class TestInternedMatchesReference:
    @pytest.mark.parametrize("profile_name", sorted(PROFILES))
    def test_serial_build_identical(self, profile_name):
        groups = route_groups(profile_name)
        reference = reference_picture(groups, "site", threshold=None)
        interned = build_picture(groups, "site")
        assert decoded(interned) == decoded(reference)
        assert dict(interned.raw_edges()) == dict(reference.raw_edges())
        assert interned.total_prefixes() == reference.total_prefixes()
        ref_pruned = reference_prune_flat(reference)
        pruned = prune_flat(interned)
        assert decoded(pruned) == decoded(ref_pruned)
        assert svg_digest(pruned, profile_name) == svg_digest(
            ref_pruned, profile_name
        )

    @pytest.mark.parametrize("profile_name", sorted(PROFILES))
    def test_sharded_build_identical(self, profile_name, monkeypatch):
        if not fork_available():
            pytest.skip("fork start method unavailable")
        monkeypatch.setenv(ENV_FORCE_WORKERS, "1")
        groups = route_groups(profile_name)
        serial = build_picture(groups, "site")
        sharded = build_picture(groups, "site", workers=4)
        assert decoded(sharded) == decoded(serial)
        assert dict(sharded.raw_edges()) == dict(serial.raw_edges())
        pruned_serial = prune_flat(serial)
        pruned_sharded = prune_flat(sharded)
        assert decoded(pruned_sharded) == decoded(pruned_serial)
        # Byte-identical pictures: serial vs sharded must be
        # indistinguishable all the way to the rendered artifact.
        assert svg_digest(pruned_sharded, profile_name) == svg_digest(
            pruned_serial, profile_name
        )

    def test_merge_tree_matches_fused_path(self):
        """merge_router (fused) == from_routes + merge_tree (columnar)."""
        groups = route_groups("berkeley")
        fused = TampGraph("site")
        for name, routes in groups:
            fused.merge_router(name, routes)
        columnar = TampGraph("site")
        for name, routes in groups:
            columnar.merge_tree(
                TampTree.from_routes(
                    name, routes, symbols=columnar.symbols
                )
            )
        assert decoded(fused) == decoded(columnar)
        assert dict(fused.raw_edges()) == dict(columnar.raw_edges())

    def test_picture_from_rex_matches_build_picture(self):
        profile, n_routes, per_prefix = PROFILES["berkeley"]
        rex = RouteExplorer()
        populate_view(
            rex, n_routes, profile, routes_per_prefix=per_prefix, seed=7
        )
        groups = [
            (format_address(peer), list(rex.rib(peer).routes()))
            for peer in rex.peers()
        ]
        assert decoded(picture_from_rex(rex, "site")) == decoded(
            build_picture(groups, "site")
        )


class TestEventPathEquivalence:
    def _events(self):
        events = []
        clock = 0.0
        for name, routes in route_groups("berkeley"):
            for route in routes:
                events.append(
                    BGPEvent(
                        clock,
                        EventKind.ANNOUNCE,
                        route.peer,
                        route.prefix,
                        route.attributes,
                    )
                )
                clock += 0.25
        # Withdraw a slice so the replay path exercises removals too.
        for event in events[:: 40]:
            events.append(
                BGPEvent(
                    clock, EventKind.WITHDRAW, event.peer, event.prefix, None
                )
            )
            clock += 0.25
        return events

    def test_batch_replay_matches_incremental(self):
        events = self._events()
        tamp = IncrementalTamp("site")
        tamp.apply_all(events)
        batch = picture_from_events(events, "site")
        # Same picture: edge sets and weights agree. (Refcounts on the
        # site edge legitimately differ: incremental maintenance counts
        # per routing event, the batch build once per surviving route.)
        assert decoded(batch) == decoded(tamp.graph)


class TestTotalPrefixesCache:
    def test_mutate_after_read_recomputes(self):
        """The cached total must not survive any mutation path."""
        graph = TampGraph("site")
        a, b, c = ("router", "r1"), ("as", 1), ("as", 2)
        graph.add_prefix(a, b, Prefix(0x0A000000, 24))
        assert graph.total_prefixes() == 1  # prime the cache
        graph.add_prefix(a, b, Prefix(0x0B000000, 24))
        assert graph.total_prefixes() == 2
        graph.add_prefix(b, c, Prefix(0x0B000000, 24))
        assert graph.total_prefixes() == 2
        graph.discard_prefix(a, b, Prefix(0x0A000000, 24))
        assert graph.total_prefixes() == 1
        graph.discard_prefix(b, c, Prefix(0x0B000000, 24))
        assert graph.total_prefixes() == 1
        graph.discard_prefix(a, b, Prefix(0x0B000000, 24))
        assert graph.total_prefixes() == 0

    def test_merge_invalidates_cached_total(self):
        groups = route_groups("berkeley")
        graph = TampGraph("site")
        name, routes = groups[0]
        graph.merge_router(name, routes)
        before = graph.total_prefixes()  # prime the cache
        for name, routes in groups[1:]:
            graph.merge_router(name, routes)
        fresh = build_picture(groups, "site")
        assert graph.total_prefixes() == fresh.total_prefixes()
        assert graph.total_prefixes() >= before

    def test_merge_tree_invalidates_cached_total(self):
        groups = route_groups("berkeley")
        graph = TampGraph("site")
        first = TampTree.from_routes(
            groups[0][0], groups[0][1], symbols=graph.symbols
        )
        graph.merge_tree(first)
        graph.total_prefixes()  # prime the cache
        for name, routes in groups[1:]:
            graph.merge_tree(
                TampTree.from_routes(name, routes, symbols=graph.symbols)
            )
        fresh = build_picture(groups, "site")
        assert graph.total_prefixes() == fresh.total_prefixes()
