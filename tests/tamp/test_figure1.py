"""The paper's Figure 1: TAMP tree construction and merging.

Two routers X and Y hold overlapping routes through shared nexthops. The
merged graph's NexthopA–AS1 edge must weigh 4 — the size of the *union*
{1.2.1.0/24, 1.2.2.0/24, 1.2.3.0/24, 1.2.4.0/24} — not 6, the sum of the
per-router counts.
"""

from repro.net.aspath import ASPath
from repro.net.attributes import PathAttributes
from repro.net.prefix import Prefix, parse_address
from repro.tamp.graph import TampGraph
from repro.tamp.tree import TampTree

NEXTHOP_A = parse_address("10.0.0.1")
NEXTHOP_B = parse_address("10.0.0.2")


def attrs(nexthop: int, path: str) -> PathAttributes:
    return PathAttributes(nexthop=nexthop, as_path=ASPath.parse(path))


def build_x() -> TampTree:
    """Router X: three prefixes via NexthopA/AS1, one via NexthopB/AS2-AS3."""
    tree = TampTree("X")
    tree.add_route(Prefix.parse("1.2.1.0/24"), attrs(NEXTHOP_A, "1"))
    tree.add_route(Prefix.parse("1.2.2.0/24"), attrs(NEXTHOP_A, "1"))
    tree.add_route(Prefix.parse("1.2.3.0/24"), attrs(NEXTHOP_A, "1"))
    tree.add_route(Prefix.parse("1.3.1.0/24"), attrs(NEXTHOP_B, "2 3"))
    return tree


def build_y() -> TampTree:
    """Router Y: overlaps X on two AS1 prefixes, adds 1.2.4.0/24."""
    tree = TampTree("Y")
    tree.add_route(Prefix.parse("1.2.2.0/24"), attrs(NEXTHOP_A, "1"))
    tree.add_route(Prefix.parse("1.2.3.0/24"), attrs(NEXTHOP_A, "1"))
    tree.add_route(Prefix.parse("1.2.4.0/24"), attrs(NEXTHOP_A, "1"))
    tree.add_route(Prefix.parse("1.3.1.0/24"), attrs(NEXTHOP_B, "2 3"))
    return tree


class TestPerRouterTrees:
    def test_x_tree_structure(self):
        tree = build_x()
        assert tree.weight(("router", "X"), ("nh", NEXTHOP_A)) == 3
        assert tree.weight(("nh", NEXTHOP_A), ("as", 1)) == 3
        assert tree.weight(("nh", NEXTHOP_B), ("as", 2)) == 1
        assert tree.weight(("as", 2), ("as", 3)) == 1

    def test_prefix_leaves(self):
        tree = build_x()
        assert tree.weight(("as", 1), ("pfx", Prefix.parse("1.2.1.0/24"))) == 1

    def test_total_prefixes(self):
        assert build_x().total_prefixes() == 4
        assert build_y().total_prefixes() == 4


class TestMergedGraph:
    def test_union_not_sum(self):
        """The Figure 1(c) check: NexthopA-AS1 weighs 4, not 6."""
        merged = TampGraph.merge([build_x(), build_y()])
        assert merged.weight(("nh", NEXTHOP_A), ("as", 1)) == 4

    def test_union_contents(self):
        merged = TampGraph.merge([build_x(), build_y()])
        prefixes = merged.edge_prefixes(("nh", NEXTHOP_A), ("as", 1))
        assert prefixes == frozenset(
            {
                Prefix.parse("1.2.1.0/24"),
                Prefix.parse("1.2.2.0/24"),
                Prefix.parse("1.2.3.0/24"),
                Prefix.parse("1.2.4.0/24"),
            }
        )

    def test_router_edges_stay_per_router(self):
        merged = TampGraph.merge([build_x(), build_y()])
        assert merged.weight(("router", "X"), ("nh", NEXTHOP_A)) == 3
        assert merged.weight(("router", "Y"), ("nh", NEXTHOP_A)) == 3

    def test_shared_tail_edge(self):
        merged = TampGraph.merge([build_x(), build_y()])
        # Both routers route 1.3.1.0/24 via AS2-AS3: union size 1.
        assert merged.weight(("as", 2), ("as", 3)) == 1

    def test_site_root(self):
        merged = TampGraph.merge([build_x(), build_y()], site_name="site")
        assert merged.weight(("root", "site"), ("router", "X")) == 4
        assert merged.roots() == [("root", "site")]

    def test_total_prefixes_of_merge(self):
        merged = TampGraph.merge([build_x(), build_y()])
        assert merged.total_prefixes() == 5
