"""Tests for the SMIL-animated SVG export."""

import xml.etree.ElementTree as ET

from repro.bgp.rib import Route
from repro.collector.stream import EventStream
from repro.tamp.animate import animate_stream
from repro.tamp.svg_animation import render_svg_animation
from tests.tamp.test_incremental import PEER_A, announce, attrs, withdraw
from tests.tamp.test_animate import prefixes


def leak_animation():
    baseline = [Route(p, attrs("11423 209"), PEER_A) for p in prefixes(10)]
    events = []
    for i, p in enumerate(prefixes(6)):
        events.append(withdraw(PEER_A, p, "11423 209", t=float(i)))
        events.append(announce(PEER_A, p, "11423 2152 3356", t=10.0 + i))
    return animate_stream(
        EventStream(events), baseline=baseline, play_duration=5.0, fps=4
    )


class TestSvgAnimation:
    def test_valid_xml(self):
        svg = render_svg_animation(leak_animation(), title="leak")
        root = ET.fromstring(svg)
        assert root.tag.endswith("svg")

    def test_changed_edges_have_animations(self):
        svg = render_svg_animation(leak_animation())
        assert "<animate" in svg
        assert 'attributeName="stroke"' in svg
        assert 'attributeName="stroke-width"' in svg

    def test_state_colors_present(self):
        svg = render_svg_animation(leak_animation())
        assert "#2c7bb6" in svg  # losing (blue)
        assert "#1a9641" in svg  # gaining (green)

    def test_vanished_edges_still_drawn(self):
        """An edge that disappears mid-animation must exist in the SVG
        (it animates down), not vanish from the picture."""
        baseline = [Route(prefixes(1)[0], attrs("11423 209"), PEER_A)]
        events = EventStream(
            [withdraw(PEER_A, prefixes(1)[0], "11423 209", t=1.0),
             announce(PEER_A, prefixes(1)[0], "9 8", t=2.0)]
        )
        animation = animate_stream(
            events, baseline=baseline, play_duration=2.0, fps=4
        )
        svg = render_svg_animation(animation)
        assert "AS209" in svg  # the dead branch is still in the picture
        assert "AS9" in svg

    def test_clock_ticks(self):
        svg = render_svg_animation(leak_animation())
        assert "t = " in svg

    def test_empty_animation(self):
        animation = animate_stream(EventStream(), play_duration=1.0, fps=2)
        svg = render_svg_animation(animation)
        ET.fromstring(svg)  # parses

    def test_keytimes_monotone(self):
        """SMIL requires strictly increasing keyTimes."""
        svg = render_svg_animation(leak_animation())
        import re

        for match in re.finditer(r'keyTimes="([^"]+)"', svg):
            times = [float(t) for t in match.group(1).split(";")]
            assert times == sorted(times)
            assert len(set(times)) == len(times)


class TestWorkers:
    def test_worker_count_does_not_change_output(self, monkeypatch):
        monkeypatch.setenv("REPRO_FORCE_WORKERS", "1")
        animation = leak_animation()
        assert render_svg_animation(animation, workers=4) == (
            render_svg_animation(animation, workers=1)
        )

    def test_shards_render_independently(self):
        """Concatenated shard renders == one-shot render (the property
        the parallel path relies on)."""
        from repro.perf import partition
        from repro.tamp.svg_animation import _render_edge_shard

        jobs = [
            ((10.0 * i, 20.0), (10.0 * i, 90.0), (), (), i + 1)
            for i in range(7)
        ]
        whole = _render_edge_shard(jobs, 8, 10, 12.0, 5.0)
        sharded = []
        for shard in partition(jobs, 3):
            sharded.extend(_render_edge_shard(shard, 8, 10, 12.0, 5.0))
        assert sharded == whole
