"""Unit tests for TAMP trees and graphs beyond the Figure 1 example."""

from hypothesis import given
from hypothesis import strategies as st

from repro.net.aspath import ASPath
from repro.net.attributes import PathAttributes
from repro.net.prefix import Prefix, parse_address
from repro.tamp.graph import TampGraph
from repro.tamp.tree import TampTree, route_path_tokens

NH = parse_address("10.0.0.1")


def attrs(path: str, nexthop: int = NH) -> PathAttributes:
    return PathAttributes(nexthop=nexthop, as_path=ASPath.parse(path))


P = Prefix.parse("192.0.2.0/24")


class TestPathTokens:
    def test_chain_shape(self):
        chain = route_path_tokens(("router", "r"), P, attrs("1 2 3"))
        assert chain == [
            ("router", "r"),
            ("nh", NH),
            ("as", 1),
            ("as", 2),
            ("as", 3),
            ("pfx", P),
        ]

    def test_prepending_collapses(self):
        """AS prepending traverses one AS; the tree must not self-loop."""
        chain = route_path_tokens(("router", "r"), P, attrs("1 1 1 2"))
        assert chain == [
            ("router", "r"),
            ("nh", NH),
            ("as", 1),
            ("as", 2),
            ("pfx", P),
        ]

    def test_no_prefix_leaf(self):
        chain = route_path_tokens(
            ("router", "r"), P, attrs("1"), include_prefix_leaf=False
        )
        assert chain[-1] == ("as", 1)

    def test_empty_path_links_nexthop_to_prefix(self):
        chain = route_path_tokens(("router", "r"), P, attrs(""))
        assert chain == [("router", "r"), ("nh", NH), ("pfx", P)]


class TestTreeMaintenance:
    def test_remove_route_reverses_add(self):
        tree = TampTree("r")
        tree.add_route(P, attrs("1 2"))
        tree.remove_route(P, attrs("1 2"))
        assert tree.edge_count() == 0
        assert tree.nodes() == {("router", "r")}

    def test_remove_keeps_shared_edges(self):
        tree = TampTree("r")
        other = Prefix.parse("198.51.100.0/24")
        tree.add_route(P, attrs("1 2"))
        tree.add_route(other, attrs("1 2"))
        tree.remove_route(P, attrs("1 2"))
        assert tree.weight(("as", 1), ("as", 2)) == 1

    def test_children(self):
        tree = TampTree("r")
        tree.add_route(P, attrs("1 2"))
        assert tree.children(("router", "r")) == {("nh", NH)}
        assert tree.children(("as", 1)) == {("as", 2)}


class TestGraphOperations:
    def test_add_prefix_returns_novelty(self):
        graph = TampGraph()
        assert graph.add_prefix(("as", 1), ("as", 2), P)
        assert not graph.add_prefix(("as", 1), ("as", 2), P)  # refcount bump
        assert graph.weight(("as", 1), ("as", 2)) == 1

    def test_discard_respects_refcounts(self):
        graph = TampGraph()
        graph.add_prefix(("as", 1), ("as", 2), P)
        graph.add_prefix(("as", 1), ("as", 2), P)
        assert not graph.discard_prefix(("as", 1), ("as", 2), P)
        assert graph.weight(("as", 1), ("as", 2)) == 1
        assert graph.discard_prefix(("as", 1), ("as", 2), P)
        assert not graph.has_edge(("as", 1), ("as", 2))

    def test_discard_unknown_is_noop(self):
        graph = TampGraph()
        assert not graph.discard_prefix(("as", 1), ("as", 2), P)
        graph.add_prefix(("as", 1), ("as", 2), P)
        other = Prefix.parse("198.51.100.0/24")
        assert not graph.discard_prefix(("as", 1), ("as", 2), other)

    def test_depths(self):
        graph = TampGraph("site")
        tree = TampTree("r")
        tree.add_route(P, attrs("1 2"))
        graph.merge_tree(tree)
        depths = graph.depths()
        assert depths[("root", "site")] == 0
        assert depths[("router", "r")] == 1
        assert depths[("nh", NH)] == 2
        assert depths[("as", 1)] == 3
        assert depths[("pfx", P)] == 5

    def test_edge_fraction(self):
        graph = TampGraph()
        other = Prefix.parse("198.51.100.0/24")
        graph.add_prefix(("as", 1), ("as", 2), P)
        graph.add_prefix(("as", 1), ("as", 3), other)
        assert graph.edge_fraction(("as", 1), ("as", 2)) == 0.5

    def test_copy_is_independent(self):
        graph = TampGraph()
        graph.add_prefix(("as", 1), ("as", 2), P)
        duplicate = graph.copy()
        duplicate.discard_prefix(("as", 1), ("as", 2), P)
        assert graph.has_edge(("as", 1), ("as", 2))
        assert not duplicate.has_edge(("as", 1), ("as", 2))

    def test_roots_without_site(self):
        graph = TampGraph()
        graph.add_prefix(("router", "r"), ("nh", NH), P)
        assert graph.roots() == [("router", "r")]


class TestMergeProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(0, 5),  # prefix index
                st.sampled_from(["1", "1 2", "2 3", "3"]),
            ),
            min_size=1,
            max_size=20,
        ),
        st.lists(
            st.tuples(
                st.integers(0, 5),
                st.sampled_from(["1", "1 2", "2 3", "3"]),
            ),
            min_size=1,
            max_size=20,
        ),
    )
    def test_merged_weight_is_union_size(self, routes_x, routes_y):
        prefixes = [Prefix(0x0A000000 + i * 256, 24) for i in range(6)]
        x, y = TampTree("X"), TampTree("Y")
        for idx, path in routes_x:
            x.add_route(prefixes[idx], attrs(path))
        for idx, path in routes_y:
            y.add_route(prefixes[idx], attrs(path))
        merged = TampGraph.merge([x, y])
        for (parent, child), merged_prefixes in merged.edges():
            expected = x.edge_prefixes(parent, child) | y.edge_prefixes(
                parent, child
            )
            assert merged_prefixes == expected
            assert merged.weight(parent, child) == len(expected)

    @given(st.lists(st.sampled_from(["1", "1 2", "1 2 3"]), max_size=15))
    def test_weight_bounded_by_total(self, paths):
        tree = TampTree("r")
        for i, path in enumerate(paths):
            tree.add_route(Prefix(0x0A000000 + i * 256, 24), attrs(path))
        graph = TampGraph.merge([tree])
        total = graph.total_prefixes()
        for (parent, child), prefixes in graph.edges():
            assert len(prefixes) <= total


class TestTotalPrefixCache:
    """total_prefixes() is cached; every mutation must invalidate it."""

    def test_add_new_prefix_invalidates(self):
        graph = TampGraph()
        graph.add_prefix(("as", 1), ("as", 2), P)
        assert graph.total_prefixes() == 1
        other = Prefix.parse("198.51.100.0/24")
        graph.add_prefix(("as", 1), ("as", 2), other)
        assert graph.total_prefixes() == 2

    def test_refcount_bump_keeps_total(self):
        graph = TampGraph()
        graph.add_prefix(("as", 1), ("as", 2), P)
        assert graph.total_prefixes() == 1
        graph.add_prefix(("as", 1), ("as", 2), P)
        assert graph.total_prefixes() == 1

    def test_discard_invalidates_on_last_reference(self):
        graph = TampGraph()
        graph.add_prefix(("as", 1), ("as", 2), P)
        graph.add_prefix(("as", 1), ("as", 2), P)
        assert graph.total_prefixes() == 1
        graph.discard_prefix(("as", 1), ("as", 2), P)
        assert graph.total_prefixes() == 1  # one reference remains
        graph.discard_prefix(("as", 1), ("as", 2), P)
        assert graph.total_prefixes() == 0

    def test_remove_edge_invalidates(self):
        graph = TampGraph()
        other = Prefix.parse("198.51.100.0/24")
        graph.add_prefix(("as", 1), ("as", 2), P)
        graph.add_prefix(("as", 1), ("as", 3), other)
        assert graph.total_prefixes() == 2
        graph.remove_edge(("as", 1), ("as", 3))
        assert graph.total_prefixes() == 1

    def test_merge_tree_invalidates(self):
        graph = TampGraph("site")
        first = TampTree("r1")
        first.add_route(P, attrs("1 2"))
        graph.merge_tree(first)
        assert graph.total_prefixes() == 1
        second = TampTree("r2")
        second.add_route(Prefix.parse("198.51.100.0/24"), attrs("2 3"))
        graph.merge_tree(second)
        assert graph.total_prefixes() == 2

    def test_adopt_edge_invalidates(self):
        graph = TampGraph()
        graph.add_prefix(("as", 1), ("as", 2), P)
        assert graph.total_prefixes() == 1
        other = Prefix.parse("198.51.100.0/24")
        graph.adopt_edge(("as", 2), ("as", 3), {other: 2})
        assert graph.total_prefixes() == 2

    def test_copy_carries_cache_safely(self):
        graph = TampGraph()
        graph.add_prefix(("as", 1), ("as", 2), P)
        assert graph.total_prefixes() == 1
        duplicate = graph.copy()
        other = Prefix.parse("198.51.100.0/24")
        duplicate.add_prefix(("as", 1), ("as", 2), other)
        assert duplicate.total_prefixes() == 2
        assert graph.total_prefixes() == 1
