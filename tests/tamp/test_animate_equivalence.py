"""Equivalence suite pinning the interned animator to an object-level one.

:func:`repro.tamp.animate.animate_stream` diffs frames on packed edge
ids against the maintainer's id-keyed refcount stores and decodes
tokens lazily (DESIGN.md §10). This suite replays the same streams
through an object-level reference animator — token-keyed edge Counters,
per-event ``route_path_tokens`` re-tokenization, the seed formulation —
and asserts the decoded frames (counts, states, shadows), tracked
series, and final graph state are identical. Streams come from
Hypothesis scripts over a small route universe and from the seeded
synthetic generator.
"""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collector.events import BGPEvent, EventKind
from repro.collector.stream import EventStream
from repro.net.prefix import Prefix
from repro.tamp.animate import EdgeState, animate_stream
from repro.tamp.incremental import default_peer_namer
from repro.tamp.tree import route_path_tokens
from tests.tamp.test_incremental import NH, PEER_A, PEER_B, attrs

PREFIXES = [Prefix.parse(f"10.{i}.0.0/16") for i in range(3)]
PATHS = ["11423 209", "11423 2152 3356", "7018 209"]


class ObjectLevelAnimator:
    """The pre-interning animation formulation, kept token-level on
    purpose: per-event chain re-tokenization, token-pair dict keys,
    ``Counter[Prefix]`` edge stores. Slow and allocation-heavy — which
    is why it lives in a test — but unambiguous."""

    def __init__(self, site_name="site"):
        self.site = ("root", site_name)
        self.routes = {}
        self.edges = {}
        self.adds = {}
        self.removes = {}

    def chain_of(self, peer, prefix, attributes):
        root = ("router", default_peer_namer(peer))
        chain = route_path_tokens(root, prefix, attributes, False)
        return [self.site, *chain]

    def edges_of(self, event):
        chain = self.chain_of(event.peer, event.prefix, event.attributes)
        return list(zip(chain, chain[1:]))

    def weight(self, edge):
        return len(self.edges.get(edge, ()))

    def _add(self, peer, prefix, attributes):
        chain = self.chain_of(peer, prefix, attributes)
        for edge in zip(chain, chain[1:]):
            store = self.edges.setdefault(edge, Counter())
            store[prefix] += 1
            if store[prefix] == 1:
                self.adds[edge] = self.adds.get(edge, 0) + 1

    def _remove(self, peer, prefix, attributes):
        chain = self.chain_of(peer, prefix, attributes)
        for edge in zip(chain, chain[1:]):
            store = self.edges.get(edge)
            if store is None or prefix not in store:
                continue
            store[prefix] -= 1
            if store[prefix] == 0:
                del store[prefix]
                self.removes[edge] = self.removes.get(edge, 0) + 1
                if not store:
                    del self.edges[edge]

    def apply(self, event):
        key = (event.peer, event.prefix)
        if event.is_withdrawal:
            old = self.routes.pop(key, None)
            if old is not None:
                self._remove(event.peer, event.prefix, old)
            return
        old = self.routes.get(key)
        if old == event.attributes:
            return
        if old is not None:
            self._remove(event.peer, event.prefix, old)
        self.routes[key] = event.attributes
        self._add(event.peer, event.prefix, event.attributes)

    def consume(self):
        adds, removes = self.adds, self.removes
        self.adds, self.removes = {}, {}
        return adds, removes


def reference_animation(events, play_duration, fps, track_edges=()):
    """Token-level frame generation mirroring the animator's contract."""
    import bisect

    ref = ObjectLevelAnimator()
    frame_count = int(round(play_duration * fps))
    all_events = list(events)
    start = events.start_time if len(events) else 0.0
    end = events.end_time if len(events) else 0.0
    timerange = max(0.0, (end or 0.0) - (start or 0.0))
    slice_width = timerange / frame_count
    origin = start or 0.0
    keys = [e.timestamp for e in all_events]
    breaks = [
        bisect.bisect_left(keys, origin + (i + 1) * slice_width)
        for i in range(frame_count - 1)
    ]
    breaks.append(len(all_events))
    tracked = {edge: [(0.0, ref.weight(edge))] for edge in track_edges}
    max_counts = {edge: len(store) for edge, store in ref.edges.items()}
    shadowed = {}
    frames = []
    event_index = 0
    for index in range(frame_count):
        for event in all_events[event_index:breaks[index]]:
            ref.apply(event)
            for edge in ref.edges_of(event):
                if edge in tracked:
                    tracked[edge].append(
                        (event.timestamp, ref.weight(edge))
                    )
        event_index = breaks[index]
        adds, removes = ref.consume()
        states = {}
        counts = {}
        for edge in set(adds) | set(removes):
            ups, downs = adds.get(edge, 0), removes.get(edge, 0)
            if ups and downs:
                states[edge] = EdgeState.FLAPPING
            elif ups:
                states[edge] = EdgeState.GAINING
            else:
                states[edge] = EdgeState.LOSING
            count = ref.weight(edge)
            counts[edge] = count
            peak = max(max_counts.get(edge, 0), count)
            max_counts[edge] = peak
            if count < peak:
                shadowed[edge] = peak
            else:
                shadowed.pop(edge, None)
        frames.append((counts, states, dict(shadowed)))
    return frames, tracked, ref


def event_streams():
    """Small random announce/withdraw scripts over a tiny universe."""
    single = st.tuples(
        st.sampled_from([PEER_A, PEER_B]),
        st.sampled_from(PREFIXES),
        st.sampled_from(PATHS),
        st.booleans(),
    )
    return st.lists(single, min_size=1, max_size=40)


def build_stream(script):
    events = []
    for i, (peer, prefix, path, is_withdraw) in enumerate(script):
        kind = EventKind.WITHDRAW if is_withdraw else EventKind.ANNOUNCE
        events.append(
            BGPEvent(float(i), kind, peer, prefix, attrs(path, NH))
        )
    return EventStream(events)


def assert_equivalent(stream, play_duration, fps, track_edges=()):
    animation = animate_stream(
        stream,
        play_duration=play_duration,
        fps=fps,
        track_edges=track_edges,
    )
    ref_frames, ref_tracked, ref = reference_animation(
        stream, play_duration, fps, track_edges
    )
    assert len(animation.frames) == len(ref_frames)
    for frame, (counts, states, shadows) in zip(
        animation.frames, ref_frames
    ):
        assert frame.edge_counts == counts
        assert frame.edge_states == states
        assert frame.shadows == shadows
    for edge in track_edges:
        assert animation.series[edge].samples == tuple(ref_tracked[edge])
    # The final graph state agrees edge for edge.
    final = {
        edge: Counter(store)
        for edge, store in animation.tamp.graph.raw_edges()
    }
    assert final == ref.edges
    return animation


class TestFrameEquivalence:
    @given(event_streams())
    @settings(max_examples=40, deadline=None)
    def test_frames_match_object_level(self, script):
        assert_equivalent(build_stream(script), play_duration=1.0, fps=5)

    @given(event_streams())
    @settings(max_examples=25, deadline=None)
    def test_tracked_series_match_object_level(self, script):
        edge = (("as", 11423), ("as", 209))
        site_link = (("root", "site"), ("router", "128.32.1.3"))
        assert_equivalent(
            build_stream(script),
            play_duration=1.0,
            fps=4,
            track_edges=[edge, site_link],
        )


class TestSyntheticStreamEquivalence:
    def test_seeded_synthetic_stream(self):
        """The Berkeley-profile generator at small scale, end to end."""
        from repro.collector.rex import RouteExplorer
        from repro.simulator.synthetic import (
            BERKELEY_PROFILE,
            populate_view,
            sized_event_stream,
        )

        rex = RouteExplorer("equiv")
        populate_view(
            rex, 1_500, BERKELEY_PROFILE, routes_per_prefix=1.8, seed=2003
        )
        stream = sized_event_stream(rex, 2_000, 600.0, seed=43)
        animation = assert_equivalent(stream, play_duration=1.0, fps=10)
        assert animation.frames_with_changes()
