"""Unit tests for layout and rendering."""

from repro.net.aspath import ASPath
from repro.net.attributes import PathAttributes
from repro.net.prefix import Prefix, parse_address
from repro.tamp.graph import TampGraph
from repro.tamp.layout import edge_geometry, layout_graph
from repro.tamp.render import node_label, render_ascii, render_svg
from repro.tamp.tree import TampTree

NH = parse_address("128.32.0.66")


def small_site(n_big: int = 80, n_small: int = 20) -> TampGraph:
    tree = TampTree("edge-1-3", include_prefix_leaves=False)
    for i in range(n_big):
        tree.add_route(
            Prefix(0x40000000 + i * 256, 24),
            PathAttributes(nexthop=NH, as_path=ASPath.parse("11423 209 701")),
        )
    for i in range(n_small):
        tree.add_route(
            Prefix(0x41000000 + i * 256, 24),
            PathAttributes(nexthop=NH, as_path=ASPath.parse("11423 2152")),
        )
    return TampGraph.merge([tree], site_name="Berkeley")


class TestLayout:
    def test_layers_follow_depth(self):
        graph = small_site()
        layout = layout_graph(graph)
        assert layout.layers[0] == (("root", "Berkeley"),)
        assert layout.layers[1] == (("router", "edge-1-3"),)
        assert layout.layers[2] == (("nh", NH),)
        assert layout.layers[3] == (("as", 11423),)
        assert set(layout.layers[4]) == {("as", 209), ("as", 2152)}

    def test_x_increases_with_depth(self):
        layout = layout_graph(small_site())
        x_root = layout.position(("root", "Berkeley"))[0]
        x_as = layout.position(("as", 209))[0]
        assert x_as > x_root

    def test_every_node_positioned(self):
        graph = small_site()
        layout = layout_graph(graph)
        assert set(layout.positions) == graph.nodes()

    def test_nodes_in_layer_do_not_collide(self):
        layout = layout_graph(small_site())
        for layer in layout.layers:
            ys = [layout.position(n)[1] for n in layer]
            assert len(set(ys)) == len(ys)

    def test_empty_graph(self):
        layout = layout_graph(TampGraph())
        assert layout.positions == {}
        assert layout.layers == ()

    def test_deterministic(self):
        a = layout_graph(small_site())
        b = layout_graph(small_site())
        assert a.positions == b.positions


class TestEdgeGeometry:
    def test_thickness_proportional_to_fraction(self):
        graph = small_site(n_big=80, n_small=20)
        layout = layout_graph(graph)
        geometry = edge_geometry(graph, layout)
        big = geometry[(("as", 11423), ("as", 209))]
        small = geometry[(("as", 11423), ("as", 2152))]
        assert big.fraction == 0.8
        assert small.fraction == 0.2
        assert big.thickness > small.thickness

    def test_minimum_thickness(self):
        graph = small_site(n_big=999, n_small=1)
        geometry = edge_geometry(graph, layout_graph(graph))
        tiny = geometry[(("as", 11423), ("as", 2152))]
        assert tiny.thickness >= 0.6


class TestVolumeWeightedGeometry:
    def test_weights_override_prefix_counts(self):
        """Section III-D.2: a small-prefix-count edge carrying elephant
        traffic draws thicker than a big mice-only edge."""
        graph = small_site(n_big=80, n_small=20)
        layout = layout_graph(graph)
        big_edge = (("as", 11423), ("as", 209))
        small_edge = (("as", 11423), ("as", 2152))
        weights = {small_edge: 900.0, big_edge: 100.0}
        geometry = edge_geometry(graph, layout, weights=weights)
        assert geometry[small_edge].thickness > geometry[big_edge].thickness
        assert geometry[small_edge].fraction == 1.0

    def test_missing_weight_is_zero(self):
        graph = small_site()
        layout = layout_graph(graph)
        geometry = edge_geometry(graph, layout, weights={})
        assert all(g.fraction == 0.0 for g in geometry.values())

    def test_render_svg_accepts_weights(self):
        graph = small_site()
        svg = render_svg(
            graph, weights={(("as", 11423), ("as", 209)): 42.0}
        )
        assert "<svg" in svg


class TestNodeLabels:
    def test_labels(self):
        assert node_label(("root", "Berkeley")) == "Berkeley"
        assert node_label(("router", "edge-1-3")) == "edge-1-3"
        assert node_label(("nh", NH)) == "128.32.0.66"
        assert node_label(("as", 209)) == "AS209"
        assert node_label(("pfx", Prefix.parse("1.2.3.0/24"))) == "1.2.3.0/24"


class TestAsciiRender:
    def test_contains_every_edge(self):
        graph = small_site()
        text = render_ascii(graph)
        assert "AS11423 -> AS209" in text
        assert "AS11423 -> AS2152" in text
        assert "Berkeley -> edge-1-3" in text

    def test_percentages_shown(self):
        text = render_ascii(small_site(n_big=80, n_small=20))
        assert " 80.0%" in text
        assert " 20.0%" in text

    def test_empty_graph(self):
        assert render_ascii(TampGraph()) == ""


class TestSvgRender:
    def test_valid_svg_document(self):
        import xml.etree.ElementTree as ET

        svg = render_svg(small_site(), title="Berkeley BGP")
        root = ET.fromstring(svg)
        assert root.tag.endswith("svg")

    def test_contains_labels_and_title(self):
        svg = render_svg(small_site(), title="Berkeley BGP")
        assert "Berkeley BGP" in svg
        assert "AS209" in svg
        assert "128.32.0.66" in svg

    def test_edge_states_color_lines(self):
        graph = small_site()
        svg = render_svg(
            graph,
            edge_states={(("as", 11423), ("as", 209)): "losing"},
        )
        assert "#2c7bb6" in svg  # blue for losing

    def test_shadows_rendered(self):
        graph = small_site()
        svg = render_svg(
            graph,
            shadows={(("as", 11423), ("as", 209)): 0.9},
        )
        assert "#bbbbbb" in svg

    def test_clock_text(self):
        svg = render_svg(small_site(), clock_text="t = 1.5 s")
        assert "t = 1.5 s" in svg
