"""Unit tests for flat and hierarchical pruning."""

import pytest

from repro.net.aspath import ASPath
from repro.net.attributes import PathAttributes
from repro.net.prefix import Prefix, parse_address
from repro.tamp.graph import TampGraph
from repro.tamp.prune import prune_flat, prune_hierarchical
from repro.tamp.tree import TampTree

NH_BIG = parse_address("10.0.0.1")
NH_SMALL = parse_address("10.0.0.2")


def bulk_graph(big: int = 95, small: int = 5) -> TampGraph:
    """A site graph with one heavy path and one tiny (backdoor-like) path."""
    tree = TampTree("edge", include_prefix_leaves=False)
    for i in range(big):
        tree.add_route(
            Prefix(0x0A000000 + i * 256, 24),
            PathAttributes(nexthop=NH_BIG, as_path=ASPath.parse("100 200")),
        )
    backdoor_tree = TampTree("backdoor-router", include_prefix_leaves=False)
    for i in range(small):
        backdoor_tree.add_route(
            Prefix(0x0B000000 + i * 256, 24),
            PathAttributes(
                nexthop=NH_SMALL, as_path=ASPath.parse("7018 55001")
            ),
        )
    return TampGraph.merge([tree, backdoor_tree], site_name="site")


class TestFlatPrune:
    def test_default_threshold_removes_small_edges(self):
        graph = bulk_graph(big=97, small=3)
        pruned = prune_flat(graph)  # default 5%
        assert pruned.has_edge(("as", 100), ("as", 200))
        assert not pruned.has_edge(("as", 7018), ("as", 55001))
        # The backdoor router itself vanishes from the picture.
        assert ("router", "backdoor-router") not in pruned.nodes()

    def test_zero_threshold_keeps_everything(self):
        graph = bulk_graph()
        pruned = prune_flat(graph, threshold=0.0)
        assert pruned.edge_count() == graph.edge_count()

    def test_original_untouched(self):
        graph = bulk_graph(big=97, small=3)
        before = graph.edge_count()
        prune_flat(graph)
        assert graph.edge_count() == before

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            prune_flat(TampGraph(), threshold=1.5)
        with pytest.raises(ValueError):
            prune_flat(TampGraph(), threshold=-0.1)

    def test_empty_graph(self):
        pruned = prune_flat(TampGraph("site"))
        assert pruned.edge_count() == 0

    def test_orphan_subtrees_swept(self):
        """Pruning an interior edge must remove the now-unreachable tail,
        not leave a floating island."""
        graph = TampGraph("site")
        p_main = [Prefix(0x0A000000 + i * 256, 24) for i in range(99)]
        p_rare = Prefix(0x0B000000, 24)
        for p in p_main:
            for edge in [
                (("root", "site"), ("router", "r")),
                (("router", "r"), ("as", 1)),
            ]:
                graph.add_prefix(*edge, p)
        # A rare route hanging deep: r -> as2 -> as3 (1 prefix each).
        graph.add_prefix(("root", "site"), ("router", "r"), p_rare)
        graph.add_prefix(("router", "r"), ("as", 2), p_rare)
        graph.add_prefix(("as", 2), ("as", 3), p_rare)
        pruned = prune_flat(graph, threshold=0.05)
        assert not pruned.has_edge(("router", "r"), ("as", 2))
        assert not pruned.has_edge(("as", 2), ("as", 3))


class TestHierarchicalPrune:
    def test_backdoor_survives_near_root(self):
        """The Figure 5 point: with hierarchical pruning the operator's
        own routers, nexthops and neighbor ASes always show — exposing a
        two-prefix backdoor that flat pruning hides."""
        graph = bulk_graph(big=98, small=2)
        flat = prune_flat(graph)
        assert ("router", "backdoor-router") not in flat.nodes()
        hierarchical = prune_hierarchical(graph, keep_depth=4)
        assert ("router", "backdoor-router") in hierarchical.nodes()
        assert hierarchical.has_edge(("as", 7018), ("as", 55001))

    def test_deep_edges_still_pruned(self):
        graph = bulk_graph(big=98, small=2)
        # keep_depth 3 keeps root->router->nh->as edges; the as->as edge
        # at depth 3 faces the threshold.
        hierarchical = prune_hierarchical(graph, keep_depth=3)
        assert ("router", "backdoor-router") in hierarchical.nodes()
        assert not hierarchical.has_edge(("as", 7018), ("as", 55001))

    def test_growth_prunes_harder_with_depth(self):
        tree = TampTree("r", include_prefix_leaves=False)
        # A chain: 10% of prefixes going through a long path.
        for i in range(10):
            tree.add_route(
                Prefix(0x0B000000 + i * 256, 24),
                PathAttributes(
                    nexthop=NH_SMALL, as_path=ASPath.parse("1 2 3 4 5")
                ),
            )
        for i in range(90):
            tree.add_route(
                Prefix(0x0A000000 + i * 256, 24),
                PathAttributes(nexthop=NH_BIG, as_path=ASPath.parse("9")),
            )
        graph = TampGraph.merge([tree], site_name="site")
        gentle = prune_hierarchical(
            graph, threshold=0.05, keep_depth=3, growth=1.0
        )
        harsh = prune_hierarchical(
            graph, threshold=0.05, keep_depth=3, growth=2.0
        )
        assert gentle.has_edge(("as", 4), ("as", 5))
        assert not harsh.has_edge(("as", 4), ("as", 5))

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            prune_hierarchical(TampGraph(), threshold=2.0)
        with pytest.raises(ValueError):
            prune_hierarchical(TampGraph(), keep_depth=-1)
        with pytest.raises(ValueError):
            prune_hierarchical(TampGraph(), growth=0.0)
