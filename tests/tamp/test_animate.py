"""Unit tests for TAMP animation generation."""

import pytest

from repro.bgp.rib import Route
from repro.collector.stream import EventStream
from repro.tamp.animate import EdgeState, animate_stream
from tests.tamp.test_incremental import (
    NH,
    P,
    PEER_A,
    announce,
    attrs,
    withdraw,
)
from repro.net.prefix import Prefix


def prefixes(n: int, base: int = 0x40000000):
    return [Prefix(base + i * 256, 24) for i in range(n)]


class TestFrameStructure:
    def test_fixed_frame_count(self):
        """30 s x 25 fps = 750 frames, whatever the incident timerange."""
        events = EventStream(
            [announce(PEER_A, p, "11423 209", t=float(i))
             for i, p in enumerate(prefixes(20))]
        )
        animation = animate_stream(events)
        assert animation.frame_count == 750

    def test_custom_duration_and_fps(self):
        events = EventStream([announce(PEER_A, P, "11423 209", t=0.0)])
        animation = animate_stream(events, play_duration=2.0, fps=10)
        assert animation.frame_count == 20

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            animate_stream(EventStream(), play_duration=0.0)
        with pytest.raises(ValueError):
            animate_stream(EventStream(), fps=0)

    def test_every_event_consumed(self):
        events = EventStream(
            [announce(PEER_A, p, "11423 209", t=float(i))
             for i, p in enumerate(prefixes(50))]
        )
        animation = animate_stream(events, play_duration=1.0, fps=5)
        assert animation.tamp.route_count() == 50

    def test_timerange_recorded(self):
        events = EventStream(
            [
                announce(PEER_A, P, "11423 209", t=10.0),
                withdraw(PEER_A, P, "11423 209", t=433.0),
            ]
        )
        animation = animate_stream(events, play_duration=1.0, fps=5)
        assert animation.timerange == 423.0

    def test_clock_text_scales_units(self):
        events = EventStream(
            [
                announce(PEER_A, P, "11423 209", t=0.0),
                withdraw(PEER_A, P, "11423 209", t=7200.0 * 3),
            ]
        )
        animation = animate_stream(events, play_duration=1.0, fps=4)
        assert "h" in animation.frames[-1].clock_text()


class TestEdgeStates:
    def test_gaining_edges_green(self):
        events = EventStream(
            [announce(PEER_A, p, "11423 209", t=float(i))
             for i, p in enumerate(prefixes(10))]
        )
        animation = animate_stream(events, play_duration=1.0, fps=5)
        states = animation.states_seen((("as", 11423), ("as", 209)))
        assert states == {EdgeState.GAINING}

    def test_losing_edges_blue(self):
        baseline = [Route(p, attrs("11423 209"), PEER_A) for p in prefixes(10)]
        events = EventStream(
            [withdraw(PEER_A, p, "11423 209", t=float(i))
             for i, p in enumerate(prefixes(10))]
        )
        animation = animate_stream(events, baseline=baseline,
                                   play_duration=1.0, fps=5)
        states = animation.states_seen((("as", 11423), ("as", 209)))
        assert states == {EdgeState.LOSING}

    def test_flapping_edges_yellow(self):
        """Announce+withdraw of the same prefix inside one frame slice."""
        events = []
        for i in range(50):
            events.append(announce(PEER_A, P, "11423 209", t=i * 1.0))
            events.append(withdraw(PEER_A, P, "11423 209", t=i * 1.0 + 0.5))
        animation = animate_stream(
            EventStream(events), play_duration=1.0, fps=2
        )
        states = animation.states_seen((("as", 11423), ("as", 209)))
        assert EdgeState.FLAPPING in states

    def test_shadow_marks_historical_maximum(self):
        baseline = [Route(p, attrs("11423 209"), PEER_A) for p in prefixes(10)]
        events = EventStream(
            [withdraw(PEER_A, p, "11423 209", t=float(i))
             for i, p in enumerate(prefixes(6))]
        )
        animation = animate_stream(events, baseline=baseline,
                                   play_duration=1.0, fps=5)
        shadows = animation.final_shadows()
        assert shadows[(("as", 11423), ("as", 209))] == 10
        # Live weight dropped to 4, shadow remembers 10.
        assert animation.tamp.graph.weight(("as", 11423), ("as", 209)) == 4

    def test_recovered_edge_loses_shadow(self):
        baseline = [Route(p, attrs("11423 209"), PEER_A) for p in prefixes(5)]
        events = []
        for i, p in enumerate(prefixes(5)):
            events.append(withdraw(PEER_A, p, "11423 209", t=float(i)))
        for i, p in enumerate(prefixes(5)):
            events.append(announce(PEER_A, p, "11423 209", t=10.0 + i))
        animation = animate_stream(EventStream(events), baseline=baseline,
                                   play_duration=1.0, fps=5)
        assert (("as", 11423), ("as", 209)) not in animation.final_shadows()


class TestEdgeSeries:
    def test_tracked_edge_sampled(self):
        """The Figure 3 per-edge plot: impulses as the edge flaps between
        carrying and not carrying its one prefix."""
        events = []
        for i in range(20):
            events.append(announce(PEER_A, P, "11423 209", t=i * 1.0))
            events.append(withdraw(PEER_A, P, "11423 209", t=i * 1.0 + 0.5))
        edge = (("as", 11423), ("as", 209))
        animation = animate_stream(
            EventStream(events),
            play_duration=1.0,
            fps=2,
            track_edges=[edge],
        )
        series = animation.series[edge]
        assert series.is_impulse_train()
        assert set(series.counts()) == {0, 1}

    def test_untracked_edges_absent(self):
        events = EventStream([announce(PEER_A, P, "11423 209", t=0.0)])
        animation = animate_stream(events, play_duration=1.0, fps=2)
        assert animation.series == {}

    def test_stable_edge_not_impulse_train(self):
        events = EventStream(
            [announce(PEER_A, p, "11423 209", t=float(i))
             for i, p in enumerate(prefixes(10))]
        )
        edge = (("as", 11423), ("as", 209))
        animation = animate_stream(
            events, play_duration=1.0, fps=2, track_edges=[edge]
        )
        assert not animation.series[edge].is_impulse_train()


class TestChangeSummary:
    def test_frames_with_changes(self):
        events = EventStream([announce(PEER_A, P, "11423 209", t=0.0)])
        animation = animate_stream(events, play_duration=1.0, fps=10)
        changed = animation.frames_with_changes()
        assert len(changed) == 1

    def test_empty_stream(self):
        animation = animate_stream(EventStream(), play_duration=1.0, fps=5)
        assert animation.frame_count == 5
        assert animation.frames_with_changes() == []

    def test_preloaded_tamp_skips_baseline(self):
        """The Table I methodology: baseline loading excluded by passing
        a pre-loaded incremental state."""
        from repro.tamp.incremental import IncrementalTamp

        baseline = [Route(p, attrs("11423 209"), PEER_A) for p in prefixes(5)]
        tamp = IncrementalTamp("site")
        tamp.load_routes(baseline)
        events = EventStream(
            [withdraw(PEER_A, prefixes(5)[0], "11423 209", t=1.0)]
        )
        animation = animate_stream(
            events, play_duration=1.0, fps=5, tamp=tamp
        )
        assert animation.tamp is tamp
        assert animation.tamp.graph.weight(("as", 11423), ("as", 209)) == 4
