"""Unit tests for incremental TAMP maintenance."""

from repro.bgp.rib import Route
from repro.collector.events import BGPEvent, EventKind
from repro.net.aspath import ASPath
from repro.net.attributes import PathAttributes
from repro.net.prefix import Prefix, parse_address
from repro.tamp.incremental import IncrementalTamp

PEER_A = parse_address("128.32.1.3")
PEER_B = parse_address("128.32.1.200")
NH = parse_address("128.32.0.66")
P = Prefix.parse("192.0.2.0/24")


def attrs(path: str, nexthop: int = NH) -> PathAttributes:
    return PathAttributes(nexthop=nexthop, as_path=ASPath.parse(path))


def announce(peer: int, prefix: Prefix, path: str, t=0.0) -> BGPEvent:
    return BGPEvent(t, EventKind.ANNOUNCE, peer, prefix, attrs(path))


def withdraw(peer: int, prefix: Prefix, path: str, t=0.0) -> BGPEvent:
    return BGPEvent(t, EventKind.WITHDRAW, peer, prefix, attrs(path))


class TestBasicMaintenance:
    def test_announcement_adds_branch(self):
        tamp = IncrementalTamp("site")
        tamp.apply(announce(PEER_A, P, "11423 209"))
        assert tamp.graph.weight(("as", 11423), ("as", 209)) == 1
        assert tamp.graph.weight(("root", "site"), ("router", "128.32.1.3")) == 1
        assert tamp.route_count() == 1

    def test_withdrawal_removes_branch(self):
        tamp = IncrementalTamp("site")
        tamp.apply(announce(PEER_A, P, "11423 209"))
        tamp.apply(withdraw(PEER_A, P, "11423 209"))
        assert tamp.graph.edge_count() == 0
        assert tamp.route_count() == 0

    def test_withdrawal_of_unknown_route_is_noop(self):
        tamp = IncrementalTamp("site")
        tamp.apply(withdraw(PEER_A, P, "11423 209"))
        assert tamp.graph.edge_count() == 0

    def test_replacement_moves_prefix(self):
        """An implicit withdrawal: the new path replaces the old one."""
        tamp = IncrementalTamp("site")
        tamp.apply(announce(PEER_A, P, "11423 209"))
        tamp.apply(announce(PEER_A, P, "11423 2152 3356"))
        assert not tamp.graph.has_edge(("as", 11423), ("as", 209))
        assert tamp.graph.weight(("as", 2152), ("as", 3356)) == 1
        assert tamp.route_count() == 1

    def test_identical_reannouncement_is_noop(self):
        tamp = IncrementalTamp("site")
        tamp.apply(announce(PEER_A, P, "11423 209"))
        tamp.apply(announce(PEER_A, P, "11423 209"))
        adds, removes = tamp.consume_changes()
        # Only the first announcement pulsed.
        assert sum(adds.values()) == len(adds)
        assert not removes or all(v == 0 for v in removes.values())
        assert tamp.graph.weight(("as", 11423), ("as", 209)) == 1


class TestSharedEdges:
    def test_shared_as_edge_survives_one_peer_withdrawal(self):
        """Peer A withdrawing must not strip a prefix that peer B's route
        still carries over the same AS edge."""
        tamp = IncrementalTamp("site")
        tamp.apply(announce(PEER_A, P, "11423 209"))
        tamp.apply(announce(PEER_B, P, "11423 209"))
        tamp.apply(withdraw(PEER_A, P, "11423 209"))
        assert tamp.graph.weight(("as", 11423), ("as", 209)) == 1
        tamp.apply(withdraw(PEER_B, P, "11423 209"))
        assert not tamp.graph.has_edge(("as", 11423), ("as", 209))

    def test_pulses_only_on_real_change(self):
        tamp = IncrementalTamp("site")
        tamp.apply(announce(PEER_A, P, "11423 209"))
        tamp.consume_changes()
        tamp.apply(announce(PEER_B, P, "11423 209"))
        adds, _ = tamp.consume_changes()
        # The shared AS edge gained nothing (prefix already there);
        # only peer B's router/nexthop edges pulse.
        assert (("as", 11423), ("as", 209)) not in adds
        assert (("router", "128.32.1.200"), ("nh", NH)) in adds


class TestBaseline:
    def test_load_routes_does_not_pulse(self):
        tamp = IncrementalTamp("site")
        tamp.load_routes(
            [Route(P, attrs("11423 209"), PEER_A)]
        )
        adds, removes = tamp.consume_changes()
        assert adds == {} and removes == {}
        assert tamp.graph.weight(("as", 11423), ("as", 209)) == 1

    def test_events_on_top_of_baseline(self):
        tamp = IncrementalTamp("site")
        tamp.load_routes([Route(P, attrs("11423 209"), PEER_A)])
        tamp.apply(withdraw(PEER_A, P, "11423 209"))
        _, removes = tamp.consume_changes()
        assert (("as", 11423), ("as", 209)) in removes

    def test_current_attributes(self):
        tamp = IncrementalTamp("site")
        tamp.apply(announce(PEER_A, P, "11423 209"))
        assert tamp.current_attributes(PEER_A, P) == attrs("11423 209")
        assert tamp.current_attributes(PEER_B, P) is None
