"""Unit tests for event-rate binning."""

import pytest

from repro.collector.rates import EventRateSeries, bin_events
from tests.collector.test_stream import event


class TestBinning:
    def test_basic_binning(self):
        events = [event(t) for t in (0.0, 0.5, 1.5, 3.5)]
        series = bin_events(events, bin_seconds=1.0)
        assert series.counts == (2, 1, 0, 1)
        assert series.start == 0.0

    def test_explicit_range_drops_outside(self):
        events = [event(t) for t in (0.0, 5.0, 50.0)]
        series = bin_events(events, bin_seconds=1.0, start=1.0, end=10.0)
        assert sum(series.counts) == 1

    def test_empty(self):
        series = bin_events([], bin_seconds=1.0)
        assert series.counts == ()
        assert series.mean() == 0.0
        assert series.peak() == (0.0, 0)
        assert series.grass_level() == 0.0
        assert series.spikes() == []

    def test_single_event(self):
        series = bin_events([event(7.0)], bin_seconds=60.0)
        assert series.counts == (1,)

    def test_invalid_bin_width(self):
        with pytest.raises(ValueError):
            bin_events([], bin_seconds=0)

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            bin_events([event(1.0)], bin_seconds=1.0, start=10.0, end=0.0)


class TestSeriesAnalysis:
    def test_peak(self):
        series = EventRateSeries(0.0, 10.0, (1, 50, 3))
        assert series.peak() == (10.0, 50)

    def test_mean_and_grass(self):
        series = EventRateSeries(0.0, 1.0, (2, 2, 2, 100))
        assert series.mean() == pytest.approx(26.5)
        assert series.grass_level() == 2.0

    def test_grass_even_count(self):
        series = EventRateSeries(0.0, 1.0, (1, 3))
        assert series.grass_level() == 2.0

    def test_spike_detection_finds_spikes_not_grass(self):
        """The Figure 8 lesson: rate thresholds see spikes, not the grass."""
        counts = [2] * 100
        counts[42] = 500  # a session reset spike
        series = EventRateSeries(0.0, 3600.0, tuple(counts))
        spikes = series.spikes(threshold_factor=10.0)
        assert spikes == [42]

    def test_bin_start(self):
        series = EventRateSeries(100.0, 60.0, (0, 0, 0))
        assert series.bin_start(2) == 220.0
