"""Unit tests for BGP events and their serializations."""

from hypothesis import given
from hypothesis import strategies as st

from repro.collector.events import BGPEvent, EventKind
from repro.net.aspath import ASPath
from repro.net.attributes import Community, Origin, PathAttributes
from repro.net.prefix import Prefix, parse_address


def event(
    kind=EventKind.WITHDRAW,
    peer="128.32.1.3",
    nexthop="128.32.0.70",
    path="11423 209 701 1299 5713",
    prefix="192.96.10.0/24",
    t=0.0,
    **attr_kwargs,
) -> BGPEvent:
    return BGPEvent(
        timestamp=t,
        kind=kind,
        peer=parse_address(peer),
        prefix=Prefix.parse(prefix),
        attributes=PathAttributes(
            nexthop=parse_address(nexthop),
            as_path=ASPath.parse(path),
            **attr_kwargs,
        ),
    )


class TestSequenceEncoding:
    def test_paper_encoding(self):
        """c = x h a1 … an p, with namespaced tokens."""
        e = event(path="11423 209")
        assert e.sequence == (
            ("peer", parse_address("128.32.1.3")),
            ("nh", parse_address("128.32.0.70")),
            ("as", 11423),
            ("as", 209),
            ("pfx", Prefix.parse("192.96.10.0/24")),
        )

    def test_namespaces_prevent_collisions(self):
        """An ASN numerically equal to an address must not unify."""
        e = event(path="209")
        tokens = set(e.sequence)
        assert ("as", 209) in tokens
        assert ("nh", 209) not in tokens

    def test_empty_path(self):
        e = event(path="")
        assert len(e.sequence) == 3  # peer, nexthop, prefix

    def test_prepending_collapses(self):
        """A prepended path traverses the AS once; the encoding must not
        let one event count a subsequence twice."""
        e = event(path="11423 11423 11423 209")
        as_tokens = [v for ns, v in e.sequence if ns == "as"]
        assert as_tokens == [11423, 209]


class TestFigure4Format:
    def test_format_matches_paper(self):
        line = event().format_line()
        assert line == (
            "W 128.32.1.3 NEXT_HOP: 128.32.0.70 "
            "ASPATH: 11423 209 701 1299 5713 PREFIX: 192.96.10.0/24"
        )

    def test_round_trip(self):
        original = event(kind=EventKind.ANNOUNCE, path="11423 209 7018 13606")
        parsed = BGPEvent.parse_line(original.format_line())
        assert parsed.kind == original.kind
        assert parsed.peer == original.peer
        assert parsed.prefix == original.prefix
        assert parsed.attributes.as_path == original.attributes.as_path


class TestJsonRoundTrip:
    def test_minimal(self):
        e = event()
        assert BGPEvent.from_json(e.to_json()) == e

    def test_full_attributes(self):
        e = event(
            kind=EventKind.ANNOUNCE,
            t=1234.5,
            local_pref=80,
            med=30,
            communities=[Community.parse("11423:65350")],
            origin=Origin.INCOMPLETE,
        )
        restored = BGPEvent.from_json(e.to_json())
        assert restored == e
        assert restored.attributes.med == 30
        assert restored.attributes.origin is Origin.INCOMPLETE

    @given(
        st.sampled_from([EventKind.ANNOUNCE, EventKind.WITHDRAW]),
        st.integers(0, 0xFFFFFFFF),
        st.lists(st.integers(1, 65535), max_size=6),
        st.floats(min_value=0, max_value=1e9, allow_nan=False),
        st.sets(
            st.tuples(st.integers(0, 65535), st.integers(0, 65535)), max_size=3
        ),
    )
    def test_property_round_trip(self, kind, peer, path, t, comm_pairs):
        e = BGPEvent(
            timestamp=t,
            kind=kind,
            peer=peer,
            prefix=Prefix.parse("10.0.0.0/8"),
            attributes=PathAttributes(
                nexthop=parse_address("10.0.0.1"),
                as_path=ASPath(path),
                communities=[Community(a, v) for a, v in comm_pairs],
            ),
        )
        assert BGPEvent.from_json(e.to_json()) == e
