"""Unit tests for the REX passive collector."""

import pytest

from repro.collector.events import EventKind
from repro.collector.rex import RouteExplorer
from repro.net.aspath import ASPath
from repro.net.attributes import PathAttributes
from repro.net.message import BGPUpdate
from repro.net.prefix import Prefix, parse_address

PEER = parse_address("128.32.1.3")
P1 = Prefix.parse("192.96.10.0/24")
P2 = Prefix.parse("12.2.41.0/24")


def attrs(path="11423 209", nexthop="128.32.0.66") -> PathAttributes:
    return PathAttributes(
        nexthop=parse_address(nexthop), as_path=ASPath.parse(path)
    )


class TestWithdrawalAugmentation:
    def test_withdrawal_carries_old_attributes(self):
        """The core Section II mechanism: withdrawals are augmented."""
        rex = RouteExplorer()
        rex.observe(PEER, BGPUpdate.announce([P1], attrs()), now=1.0)
        events = rex.observe(PEER, BGPUpdate.withdraw([P1]), now=2.0)
        assert len(events) == 1
        withdrawal = events[0]
        assert withdrawal.kind is EventKind.WITHDRAW
        assert withdrawal.attributes == attrs()
        assert withdrawal.attributes.as_path == ASPath.parse("11423 209")

    def test_withdrawal_for_unknown_route_dropped(self):
        rex = RouteExplorer()
        events = rex.observe(PEER, BGPUpdate.withdraw([P1]), now=1.0)
        assert events == []
        assert rex.dropped_withdrawals == 1

    def test_implicit_replacement_default_single_event(self):
        rex = RouteExplorer()
        rex.observe(PEER, BGPUpdate.announce([P1], attrs()), now=1.0)
        events = rex.observe(
            PEER, BGPUpdate.announce([P1], attrs(path="11423 701")), now=2.0
        )
        assert [e.kind for e in events] == [EventKind.ANNOUNCE]

    def test_implicit_replacement_optional_withdrawal(self):
        rex = RouteExplorer(emit_implicit_withdrawals=True)
        rex.observe(PEER, BGPUpdate.announce([P1], attrs()), now=1.0)
        events = rex.observe(
            PEER, BGPUpdate.announce([P1], attrs(path="11423 701")), now=2.0
        )
        assert [e.kind for e in events] == [
            EventKind.WITHDRAW,
            EventKind.ANNOUNCE,
        ]
        assert events[0].attributes == attrs()  # old route's attributes

    def test_per_peer_ribs_are_independent(self):
        rex = RouteExplorer()
        other = parse_address("128.32.1.200")
        rex.observe(PEER, BGPUpdate.announce([P1], attrs()), now=1.0)
        events = rex.observe(other, BGPUpdate.withdraw([P1]), now=2.0)
        assert events == []  # other peer never announced P1


class TestSessionLoss:
    def test_session_loss_synthesizes_withdrawals(self):
        rex = RouteExplorer()
        rex.observe(PEER, BGPUpdate.announce([P1, P2], attrs()), now=1.0)
        events = rex.observe_session_loss(PEER, now=5.0)
        assert len(events) == 2
        assert all(e.kind is EventKind.WITHDRAW for e in events)
        assert rex.route_count() == 0

    def test_session_loss_unknown_peer_raises(self):
        with pytest.raises(KeyError):
            RouteExplorer().observe_session_loss(PEER, now=1.0)


class TestInventory:
    def test_counts(self):
        rex = RouteExplorer()
        other = parse_address("128.32.1.200")
        rex.observe(PEER, BGPUpdate.announce([P1, P2], attrs()), now=1.0)
        rex.observe(
            other,
            BGPUpdate.announce([P1], attrs(nexthop="128.32.0.90")),
            now=1.0,
        )
        assert rex.route_count() == 3
        assert rex.prefix_count() == 2
        assert rex.nexthop_count() == 2
        assert rex.neighbor_as_count() == 1  # all paths start with 11423

    def test_events_accumulate_in_stream(self):
        rex = RouteExplorer()
        rex.observe(PEER, BGPUpdate.announce([P1], attrs()), now=1.0)
        rex.observe(PEER, BGPUpdate.withdraw([P1]), now=2.0)
        assert len(rex.events) == 2

    def test_peer_registration(self):
        rex = RouteExplorer()
        rex.peer_with(PEER)
        assert rex.peers() == [PEER]
        assert len(rex.rib(PEER)) == 0
