"""Unit tests for event streams."""

from repro.collector.events import BGPEvent, EventKind
from repro.collector.stream import EventStream
from repro.net.aspath import ASPath
from repro.net.attributes import Community, PathAttributes
from repro.net.prefix import Prefix, parse_address


def event(t: float, prefix="10.0.0.0/8", kind=EventKind.ANNOUNCE,
          peer="1.1.1.1", path="100 200", communities=()) -> BGPEvent:
    return BGPEvent(
        timestamp=t,
        kind=kind,
        peer=parse_address(peer),
        prefix=Prefix.parse(prefix),
        attributes=PathAttributes(
            nexthop=parse_address("2.2.2.2"),
            as_path=ASPath.parse(path),
            communities=[Community.parse(c) for c in communities],
        ),
    )


class TestOrdering:
    def test_out_of_order_append_sorts(self):
        stream = EventStream()
        stream.append(event(5.0))
        stream.append(event(1.0))
        stream.append(event(3.0))
        assert [e.timestamp for e in stream] == [1.0, 3.0, 5.0]

    def test_stable_for_equal_timestamps(self):
        stream = EventStream()
        w = event(1.0, kind=EventKind.WITHDRAW)
        a = event(1.0, kind=EventKind.ANNOUNCE)
        stream.append(w)
        stream.append(a)
        assert list(stream) == [w, a]

    def test_indexing(self):
        stream = EventStream([event(2.0), event(1.0)])
        assert stream[0].timestamp == 1.0


class TestTimeProperties:
    def test_timerange(self):
        stream = EventStream([event(10.0), event(199.0)])
        assert stream.timerange == 189.0
        assert stream.start_time == 10.0
        assert stream.end_time == 199.0

    def test_empty_stream(self):
        stream = EventStream()
        assert stream.timerange == 0.0
        assert stream.start_time is None
        assert len(stream) == 0

    def test_between_is_half_open(self):
        stream = EventStream([event(t) for t in (1.0, 2.0, 3.0, 4.0)])
        window = stream.between(2.0, 4.0)
        assert [e.timestamp for e in window] == [2.0, 3.0]


class TestFilters:
    def test_for_peer(self):
        stream = EventStream(
            [event(1.0, peer="1.1.1.1"), event(2.0, peer="9.9.9.9")]
        )
        assert len(stream.for_peer(parse_address("9.9.9.9"))) == 1

    def test_for_prefix_and_prefixes(self):
        stream = EventStream(
            [event(1.0, prefix="10.0.0.0/8"), event(2.0, prefix="11.0.0.0/8")]
        )
        assert len(stream.for_prefix(Prefix.parse("10.0.0.0/8"))) == 1
        both = stream.for_prefixes(
            {Prefix.parse("10.0.0.0/8"), Prefix.parse("11.0.0.0/8")}
        )
        assert len(both) == 2

    def test_with_community(self):
        stream = EventStream(
            [
                event(1.0, communities=["2152:65297"]),
                event(2.0),
            ]
        )
        tagged = stream.with_community(Community.parse("2152:65297"))
        assert len(tagged) == 1

    def test_traversing_as(self):
        stream = EventStream(
            [event(1.0, path="100 200"), event(2.0, path="300 400")]
        )
        assert len(stream.traversing_as(200)) == 1

    def test_merged_with(self):
        a = EventStream([event(2.0)])
        b = EventStream([event(1.0)])
        merged = a.merged_with(b)
        assert [e.timestamp for e in merged] == [1.0, 2.0]


class TestSummaries:
    def test_counts(self):
        stream = EventStream(
            [
                event(1.0, kind=EventKind.ANNOUNCE),
                event(2.0, kind=EventKind.WITHDRAW),
                event(3.0, kind=EventKind.WITHDRAW),
            ]
        )
        assert stream.announce_count() == 1
        assert stream.withdraw_count() == 2

    def test_sets(self):
        stream = EventStream(
            [
                event(1.0, prefix="10.0.0.0/8", peer="1.1.1.1"),
                event(2.0, prefix="11.0.0.0/8", peer="1.1.1.1"),
            ]
        )
        assert stream.prefixes() == {
            Prefix.parse("10.0.0.0/8"),
            Prefix.parse("11.0.0.0/8"),
        }
        assert stream.peers() == {parse_address("1.1.1.1")}
        assert stream.nexthops() == {parse_address("2.2.2.2")}


class TestPersistence:
    def test_save_load_round_trip(self, tmp_path):
        stream = EventStream(
            [
                event(1.5, kind=EventKind.WITHDRAW, communities=["1:2"]),
                event(0.5),
            ]
        )
        path = tmp_path / "events.jsonl"
        stream.save(path)
        restored = EventStream.load(path)
        assert list(restored) == list(stream)

    def test_load_skips_blank_lines(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text(event(1.0).to_json() + "\n\n")
        assert len(EventStream.load(path)) == 1


class TestLazySortRegressions:
    """The lazy-sort + ``_keys`` cache invariants, each pinned by a
    regression test: reads sort, appends invalidate, stability holds
    across re-sorts."""

    def test_out_of_order_append_after_read_resorts(self):
        stream = EventStream()
        stream.append(event(2.0))
        stream.append(event(4.0))
        # A read access sorts the stream and marks it sorted...
        assert [e.timestamp for e in stream] == [2.0, 4.0]
        # ...an earlier-timestamped append afterwards must un-sort it.
        stream.append(event(3.0))
        stream.append(event(1.0))
        assert [e.timestamp for e in stream] == [1.0, 2.0, 3.0, 4.0]
        assert stream[0].timestamp == 1.0
        assert stream.start_time == 1.0

    def test_equal_timestamp_stability_survives_a_resort(self):
        stream = EventStream()
        w = event(5.0, kind=EventKind.WITHDRAW)
        a = event(5.0, kind=EventKind.ANNOUNCE)
        stream.append(w)
        stream.append(a)
        list(stream)  # sort once
        # The re-sort triggered by this out-of-order append must keep
        # the w-then-a arrival order at t=5.0 (stable sort).
        stream.append(event(0.0))
        assert [e.kind for e in stream if e.timestamp == 5.0] == [
            EventKind.WITHDRAW,
            EventKind.ANNOUNCE,
        ]

    def test_in_order_append_after_read_extends_the_tail(self):
        stream = EventStream([event(1.0)])
        list(stream)
        stream.append(event(2.0))  # already in order: no re-sort needed
        assert [e.timestamp for e in stream] == [1.0, 2.0]
        assert stream.end_time == 2.0

    def test_between_reflects_appends_after_a_read(self):
        stream = EventStream([event(1.0), event(3.0)])
        assert len(stream.between(0.0, 4.0)) == 2
        stream.append(event(2.0))
        assert [e.timestamp for e in stream.between(1.5, 3.0)] == [2.0]

    def test_slice_indices_reflect_equal_timestamp_appends(self):
        stream = EventStream([event(1.0), event(2.0)])
        assert stream.slice_indices([2.0]) == [1]
        # Appending at the same timestamp keeps the stream sorted but
        # must still invalidate the bisection keys.
        stream.append(event(2.0))
        assert stream.slice_indices([2.0, 5.0]) == [1, 3]

    def test_merged_with_after_reads_is_sorted(self):
        a = EventStream([event(3.0), event(1.0)])
        b = EventStream([event(2.0)])
        list(a), list(b)
        merged = a.merged_with(b)
        assert [e.timestamp for e in merged] == [1.0, 2.0, 3.0]


class TestFingerprint:
    def test_append_order_does_not_matter(self):
        forward = EventStream([event(t) for t in (1.0, 2.0, 3.0)])
        backward = EventStream([event(t) for t in (3.0, 2.0, 1.0)])
        assert forward.fingerprint() == backward.fingerprint()

    def test_different_events_different_fingerprint(self):
        a = EventStream([event(1.0)])
        b = EventStream([event(1.0, prefix="11.0.0.0/8")])
        assert a.fingerprint() != b.fingerprint()

    def test_fingerprint_tracks_appends(self):
        stream = EventStream([event(1.0)])
        before = stream.fingerprint()
        stream.append(event(0.5))
        assert stream.fingerprint() != before

    def test_empty_stream_has_a_stable_fingerprint(self):
        assert EventStream().fingerprint() == EventStream().fingerprint()


class TestSliceIndices:
    def test_matches_bisect_semantics(self):
        stream = EventStream()
        for t in (0.0, 1.0, 1.0, 2.5, 4.0):
            stream.append(event(t))
        boundaries = [0.5, 1.0, 3.0, 10.0]
        indices = stream.slice_indices(boundaries)
        timestamps = [e.timestamp for e in stream]
        import bisect

        assert indices == [
            bisect.bisect_left(timestamps, b) for b in boundaries
        ]

    def test_empty_stream(self):
        assert EventStream().slice_indices([1.0, 2.0]) == [0, 0]

    def test_append_invalidates_key_cache(self):
        stream = EventStream()
        stream.append(event(1.0))
        assert stream.slice_indices([5.0]) == [1]
        stream.append(event(0.5))  # out of order: forces a re-sort too
        assert stream.slice_indices([0.7, 5.0]) == [1, 2]

    def test_between_after_slice_indices(self):
        stream = EventStream()
        for t in (0.0, 1.0, 2.0, 3.0):
            stream.append(event(t))
        stream.slice_indices([1.5])
        assert [e.timestamp for e in stream.between(1.0, 3.0)] == [1.0, 2.0]
