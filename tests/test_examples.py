"""The examples must stay runnable: they are the public API's contract."""

import py_compile
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
ALL_EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    names = {p.name for p in ALL_EXAMPLES}
    assert "quickstart.py" in names
    assert len(ALL_EXAMPLES) >= 3


@pytest.mark.parametrize("path", ALL_EXAMPLES, ids=lambda p: p.name)
def test_example_compiles(path):
    py_compile.compile(str(path), doraise=True)


def test_quickstart_runs_end_to_end(tmp_path):
    """Execute the quickstart in a subprocess; it must report detection
    and write its SVG output."""
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr
    assert "matches injected incident: True" in result.stdout
    assert (EXAMPLES_DIR / "output" / "berkeley_picture.svg").exists()
