"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.collector.stream import EventStream
from tests.stemming.test_stemmer import mk_event, spike


@pytest.fixture
def stream_file(tmp_path):
    path = tmp_path / "events.jsonl"
    EventStream(spike("100 200 300", 20)).save(path)
    return path


class TestDiagnose:
    def test_diagnose_prints_report(self, stream_file, capsys):
        assert main(["diagnose", str(stream_file)]) == 0
        out = capsys.readouterr().out
        assert "headline:" in out
        assert "AS200--AS300" in out

    def test_component_limit_forwarded(self, stream_file, capsys):
        assert main(["diagnose", str(stream_file), "--components", "1"]) == 0
        out = capsys.readouterr().out
        assert "components" in out

    def test_missing_file_errors(self, tmp_path, capsys):
        code = main(["diagnose", str(tmp_path / "nope.jsonl")])
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestRender:
    def test_ascii_to_stdout(self, tmp_path, capsys):
        path = tmp_path / "announce.jsonl"
        from repro.collector.events import EventKind

        events = [
            mk_event(float(i), "1.1.1.1", "2.2.2.2", "100 200",
                     f"10.0.{i}.0/24", EventKind.ANNOUNCE)
            for i in range(10)
        ]
        EventStream(events).save(path)
        assert main(["render", str(path)]) == 0
        out = capsys.readouterr().out
        assert "AS100 -> AS200" in out

    def test_svg_output(self, tmp_path, capsys):
        path = tmp_path / "announce.jsonl"
        from repro.collector.events import EventKind

        events = [
            mk_event(float(i), "1.1.1.1", "2.2.2.2", "100 200",
                     f"10.0.{i}.0/24", EventKind.ANNOUNCE)
            for i in range(10)
        ]
        EventStream(events).save(path)
        out_svg = tmp_path / "picture.svg"
        assert main(["render", str(path), "-o", str(out_svg)]) == 0
        assert out_svg.exists()
        assert "<svg" in out_svg.read_text()


class TestProfile:
    def test_render_profile_writes_stats_and_summary(
        self, tmp_path, capsys
    ):
        import pstats

        path = tmp_path / "announce.jsonl"
        from repro.collector.events import EventKind

        events = [
            mk_event(float(i), "1.1.1.1", "2.2.2.2", "100 200",
                     f"10.0.{i}.0/24", EventKind.ANNOUNCE)
            for i in range(10)
        ]
        EventStream(events).save(path)
        prof = tmp_path / "render.prof"
        assert main(["render", str(path), "--profile", str(prof)]) == 0
        captured = capsys.readouterr()
        assert "AS100 -> AS200" in captured.out
        assert str(prof) in captured.err
        # The binary pstats load, and the text summary is the top-25
        # cumulative table.
        stats = pstats.Stats(str(prof))
        assert stats.total_calls > 0
        summary = (tmp_path / "render.prof.txt").read_text()
        assert "cumulative" in summary

    def test_profile_preserves_failure_exit_code(self, tmp_path, capsys):
        prof = tmp_path / "fail.prof"
        code = main(
            ["diagnose", str(tmp_path / "nope.jsonl"),
             "--profile", str(prof)]
        )
        assert code == 1
        assert "error:" in capsys.readouterr().err
        # The profile is still written for the failing run.
        assert prof.exists()
        assert (tmp_path / "fail.prof.txt").exists()

    def test_demo_accepts_profile(self, tmp_path, capsys):
        prof = tmp_path / "demo.prof"
        assert main(
            ["demo", "backdoor", "--prefixes", "150",
             "--profile", str(prof)]
        ) == 0
        assert prof.exists()

    def test_animate_accepts_profile(self, tmp_path, capsys):
        path = tmp_path / "events.jsonl"
        EventStream(spike("100 200", 10)).save(path)
        out = tmp_path / "anim.svg"
        prof = tmp_path / "animate.prof"
        assert main(
            ["animate", str(path), "-o", str(out), "--duration", "1",
             "--fps", "5", "--profile", str(prof)]
        ) == 0
        assert out.exists()
        assert prof.exists()
        assert (tmp_path / "animate.prof.txt").exists()

    def test_monitor_accepts_profile(self, tmp_path, capsys):
        prof = tmp_path / "monitor.prof"
        assert main(
            ["monitor", "--synthetic", "200", "--window", "600",
             "--profile", str(prof)]
        ) == 0
        assert "window(s)" in capsys.readouterr().out
        assert prof.exists()
        assert (tmp_path / "monitor.prof.txt").exists()


class TestRate:
    def test_rate_plot(self, stream_file, capsys):
        assert main(["rate", str(stream_file)]) == 0
        out = capsys.readouterr().out
        assert "peak" in out
        assert "grass level" in out

    def test_empty_stream(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        EventStream().save(path)
        assert main(["rate", str(path)]) == 0
        assert "empty stream" in capsys.readouterr().out


class TestAnimate:
    def test_animate_writes_smil_svg(self, tmp_path, capsys):
        from repro.collector.events import BGPEvent, EventKind

        events = []
        for i, e in enumerate(spike("100 200", 10)):
            events.append(
                BGPEvent(e.timestamp, EventKind.ANNOUNCE, e.peer, e.prefix,
                         e.attributes)
            )
            events.append(
                BGPEvent(e.timestamp + 50.0, EventKind.WITHDRAW, e.peer,
                         e.prefix, e.attributes)
            )
        path = tmp_path / "events.jsonl"
        EventStream(events).save(path)
        out = tmp_path / "anim.svg"
        assert main(
            ["animate", str(path), "-o", str(out), "--duration", "2",
             "--fps", "5"]
        ) == 0
        text = out.read_text()
        assert "<animate" in text
        assert "10 frames" in capsys.readouterr().out


class TestMrtInput:
    def test_diagnose_mrt_file(self, tmp_path, capsys):
        """RouteViews-style MRT updates feed the same pipeline."""
        from repro.mrt.loader import dump_updates

        events = spike("100 200 300", 15)
        # An MRT archive carries announcements; make the spike one.
        from repro.collector.events import BGPEvent, EventKind

        announce = [
            BGPEvent(e.timestamp, EventKind.ANNOUNCE, e.peer, e.prefix,
                     e.attributes)
            for e in events
        ]
        path = tmp_path / "updates.mrt"
        dump_updates(announce, path)
        assert main(["diagnose", str(path)]) == 0
        out = capsys.readouterr().out
        assert "headline:" in out

    def test_render_mrt_file(self, tmp_path, capsys):
        from repro.collector.events import BGPEvent, EventKind
        from repro.mrt.loader import dump_updates

        announce = [
            BGPEvent(e.timestamp, EventKind.ANNOUNCE, e.peer, e.prefix,
                     e.attributes)
            for e in spike("100 200", 10)
        ]
        path = tmp_path / "updates.mrt"
        dump_updates(announce, path)
        assert main(["render", str(path)]) == 0
        assert "AS100 -> AS200" in capsys.readouterr().out


class TestDemo:
    def test_demo_med_oscillation(self, capsys, tmp_path):
        save = tmp_path / "osc.jsonl"
        assert main(
            ["demo", "med-oscillation", "--save", str(save)]
        ) == 0
        out = capsys.readouterr().out
        assert "med-oscillation" in out
        assert "headline:" in out
        assert save.exists()
        restored = EventStream.load(save)
        assert len(restored) > 0

    def test_demo_backdoor_small(self, capsys):
        assert main(["demo", "backdoor", "--prefixes", "150"]) == 0
        out = capsys.readouterr().out
        assert "backdoor" in out
