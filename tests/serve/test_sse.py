"""SSE feed: framing, ring replay, Last-Event-ID over a real socket."""

import asyncio

from repro.serve import (
    ServeApp,
    ShardSet,
    SnapshotHub,
    TransitionFeed,
    format_sse,
)
from tests.pipeline.conftest import small_source
from tests.serve.conftest import serve_config


class TestFraming:
    def test_frame_shape(self):
        frame = format_sse(3, {"to": "open", "incident": 1})
        assert frame == (
            b"id: 3\nevent: incident\n"
            b'data: {"incident": 1, "to": "open"}\n\n'
        )


class TestRing:
    def test_ids_are_monotonic_and_replay_is_a_suffix(self):
        feed = TransitionFeed(capacity=4)
        ids = [feed.publish({"n": n}) for n in range(10)]
        assert ids == list(range(1, 11))
        assert feed.last_id == 10
        # Bounded ring: only the last 4 frames survive.
        assert feed.replay_since(0) == [
            format_sse(i, {"n": i - 1}) for i in range(7, 11)
        ]
        assert feed.replay_since(8) == [
            format_sse(9, {"n": 8}),
            format_sse(10, {"n": 9}),
        ]
        assert feed.replay_since(10) == []

    def test_subscribers_get_live_frames_and_the_close_sentinel(self):
        async def main():
            feed = TransitionFeed()
            queue = feed.subscribe()
            feed.publish({"a": 1})
            assert (await queue.get()) == format_sse(1, {"a": 1})
            feed.close()
            assert (await queue.get()) is None
            feed.unsubscribe(queue)
            feed.publish({"a": 2})  # no queue to fill now
            assert feed.published == 2

        asyncio.run(main())


class TestTransitionWatcher:
    def test_pipeline_transitions_surface_exactly_once(self):
        shard_set = ShardSet(small_source(), serve_config())
        entries = []
        for event in small_source().events():
            entries.extend(shard_set.offer(event))
        entries.extend(shard_set.finish())
        assert entries
        required = {
            "incident",
            "shard",
            "transition",
            "at",
            "from",
            "to",
            "reason",
            "status",
            "severity",
        }
        for entry in entries:
            assert required <= set(entry)
        # Re-observing the same records emits nothing new.
        shard = shard_set._shards[0]
        again = shard_set.watcher.observe(
            shard.live_manager.all_incidents(), shard=0
        )
        assert again == []
        shard_set.close()


class TestLastEventIdReplay:
    def test_reconnect_receives_exactly_the_missed_suffix(self):
        async def main():
            shard_set = ShardSet(small_source(), serve_config())
            hub = SnapshotHub(shard_set)
            feed = TransitionFeed()
            app = ServeApp(hub, feed)
            port = await app.start()
            for n in range(5):
                feed.publish({"n": n})

            reader, writer = await asyncio.open_connection(
                "127.0.0.1", port
            )
            writer.write(
                b"GET /events HTTP/1.1\r\nHost: x\r\n"
                b"Last-Event-ID: 2\r\n\r\n"
            )
            await writer.drain()
            head = await reader.readuntil(b"\r\n\r\n")
            assert b"200 OK" in head
            assert b"text/event-stream" in head

            async def next_frame() -> bytes:
                return await asyncio.wait_for(
                    reader.readuntil(b"\n\n"), timeout=10.0
                )

            assert (await next_frame()) == b"retry: 2000\n\n"
            for expect in (3, 4, 5):
                frame = await next_frame()
                assert frame == format_sse(expect, {"n": expect - 1})
            # A live publish reaches the open stream.
            feed.publish({"n": 5})
            assert (await next_frame()) == format_sse(6, {"n": 5})

            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass
            feed.close()
            await app.close()
            shard_set.close()

        asyncio.run(main())

    def test_fresh_client_gets_the_whole_ring(self):
        async def main():
            shard_set = ShardSet(small_source(), serve_config())
            hub = SnapshotHub(shard_set)
            feed = TransitionFeed()
            app = ServeApp(hub, feed)
            port = await app.start()
            feed.publish({"n": 0})
            feed.publish({"n": 1})

            reader, writer = await asyncio.open_connection(
                "127.0.0.1", port
            )
            writer.write(b"GET /events HTTP/1.1\r\nHost: x\r\n\r\n")
            await writer.drain()
            await reader.readuntil(b"\r\n\r\n")
            burst = await asyncio.wait_for(
                reader.readuntil(format_sse(2, {"n": 1})), timeout=10.0
            )
            assert format_sse(1, {"n": 0}) in burst

            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass
            feed.close()
            await app.close()
            shard_set.close()

        asyncio.run(main())
