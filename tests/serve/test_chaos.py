"""Kill one shard mid-serve, keep serving, resume, converge.

The harshest recovery path the serve layer promises (DESIGN.md §14):
shard 1's pipeline is run by an *external* ``run_monitor`` process
over the same :class:`~repro.pipeline.sources.ShardView`, killed with
``os._exit`` mid-run so only its checkpoint directory survives. The
serving process then boots with that shard dead, answers requests
from the survivors (incidents for the dead shard come from its
last-synced sqlite store), resumes the shard from the crashed
process's checkpoint, and converges to a merged picture byte-equal
to an uninterrupted two-shard run — with the degraded ETag never
validating a 304 against the recovered picture.
"""

import asyncio
import json
import os
import subprocess
import sys
from pathlib import Path

from repro.serve import ServeApp, ShardSet, SnapshotHub, TransitionFeed
from repro.serve.sharding import shard_dir
from tests.pipeline.conftest import small_source
from tests.serve.conftest import http_get, serve_config

SRC_DIR = Path(__file__).resolve().parents[2] / "src"

#: Crash an external monitor over shard 1's slice after 4 reports.
#: ``os._exit`` skips every finally block: no flush, no close — the
#: checkpoint directory is exactly what the last cycle wrote.
CRASH_SCRIPT = """
import os, sys
from pathlib import Path
from repro.pipeline import (
    MonitorConfig, ShardView, SyntheticSource, run_monitor,
)
seen = 0
def kill_hard(report):
    global seen
    seen += 1
    if seen == 4:
        os._exit(7)
run_monitor(
    ShardView(SyntheticSource(1600, 600.0, seed=7, n_routes=400), 1, 2),
    MonitorConfig(window=120.0, slide=60.0, batch_size=64,
                  checkpoint_every=1),
    checkpoint_dir=Path(sys.argv[1]),
    on_report=kill_hard,
)
"""


def subprocess_env() -> dict[str, str]:
    env = dict(os.environ)
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = (
        f"{SRC_DIR}{os.pathsep}{existing}" if existing else str(SRC_DIR)
    )
    return env


def uninterrupted_picture() -> bytes:
    shard_set = ShardSet(small_source(), serve_config(), shards=2)
    for event in small_source().events():
        shard_set.offer(event)
    shard_set.finish()
    body = SnapshotHub(shard_set).render().body
    shard_set.close()
    return body


class TestShardDeathAndResume:
    def test_kill_serve_degraded_resume_converge(self, tmp_path):
        expected = uninterrupted_picture()

        # Phase 1: an external monitor owns shard 1, dies hard.
        crash_root = tmp_path / "chaos"
        proc = subprocess.run(
            [
                sys.executable,
                "-c",
                CRASH_SCRIPT,
                str(shard_dir(crash_root, 1)),
            ],
            env=subprocess_env(),
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert proc.returncode == 7, proc.stderr

        async def main():
            # Phase 2: serve with shard 1 dead from the start.
            shard_set = ShardSet(
                small_source(),
                serve_config(),
                shards=2,
                checkpoint_root=crash_root,
                start_dead=(1,),
            )
            hub = SnapshotHub(shard_set)
            feed = TransitionFeed()
            app = ServeApp(hub, feed)
            port = await app.start()

            events = list(small_source().events())
            half = len(events) // 2
            for event in events[:half]:
                feed.publish_all(shard_set.offer(event))

            # Mid-stream, mid-outage: the survivors still answer.
            status, headers, degraded = await http_get(
                port, "/picture.svg"
            )
            assert status == 200
            degraded_etag = headers["etag"]
            status, _, body = await http_get(port, "/status")
            info = json.loads(body)
            assert info["alive"] == [True, False]
            assert ["dead", 1] in info["version"]

            # Dead-shard incidents come from the crashed process's
            # last-synced sqlite store.
            status, _, body = await http_get(port, "/incidents")
            assert status == 200
            rows = json.loads(body)["incidents"]
            dead_rows = [row for row in rows if row["shard"] == 1]
            assert dead_rows

            for event in events[half:]:
                feed.publish_all(shard_set.offer(event))
            feed.publish_all(shard_set.finish())

            # Phase 3: resume from the crashed checkpoint; the shard
            # replays its slice up to the set's position, then the
            # second finish() finalizes only the resumed shard.
            feed.publish_all(shard_set.resume(1))
            feed.publish_all(shard_set.finish())
            assert shard_set.alive() == (True, True)
            offered = shard_set._offered
            assert shard_set._shards[1].offset == offered[1]

            # Convergence: byte-equal to the uninterrupted run, and
            # the degraded ETag never 304s against the newer picture.
            status, headers, body = await http_get(
                port,
                "/picture.svg",
                headers={"If-None-Match": degraded_etag},
            )
            assert status == 200
            assert headers["etag"] != degraded_etag
            assert body != degraded
            assert body == expected

            # Incidents now come from the live resumed manager and
            # match what the stream produced.
            status, _, body = await http_get(
                port, "/incidents"
            )
            live_rows = json.loads(body)["incidents"]
            assert [r for r in live_rows if r["shard"] == 1]

            await app.close()
            shard_set.close()

        asyncio.run(main())
