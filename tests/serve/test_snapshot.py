"""Render-once/serve-many: cache keying, single-flight, ETags."""

import asyncio

from repro.serve import ShardSet, SnapshotHub
from repro.serve.snapshot import PictureSnapshot
from tests.pipeline.conftest import small_source
from tests.serve.conftest import serve_config


def fed_set(shards: int = 2) -> ShardSet:
    shard_set = ShardSet(small_source(), serve_config(), shards=shards)
    for event in small_source().events():
        shard_set.offer(event)
    shard_set.finish()
    return shard_set


class TestWireSnapshots:
    def test_etag_is_content_derived(self):
        a = PictureSnapshot.build((1,), "<svg/>")
        b = PictureSnapshot.build((2,), "<svg/>")
        c = PictureSnapshot.build((3,), "<svg >x</svg>")
        # Identical bytes legitimately share an ETag (a 304 against
        # either is byte-correct); different bytes never do.
        assert a.etag == b.etag
        assert a.etag != c.etag
        assert a.etag.startswith('"') and a.etag.endswith('"')

    def test_wire_responses_are_prebuilt(self):
        snap = PictureSnapshot.build((1,), "<svg/>")
        assert snap.response_200.startswith(b"HTTP/1.1 200 OK\r\n")
        assert snap.response_200.endswith(snap.body)
        assert f"ETag: {snap.etag}".encode() in snap.response_200
        assert (
            f"Content-Length: {len(snap.body)}".encode()
            in snap.response_200
        )
        assert snap.response_304.startswith(
            b"HTTP/1.1 304 Not Modified\r\n"
        )
        assert snap.etag.encode() in snap.response_304


class TestCacheKeying:
    def test_renders_once_per_window_advance(self):
        """The tentpole invariant: repeat requests are dict compares."""
        shard_set = ShardSet(
            small_source(), serve_config(), shards=2
        )
        hub = SnapshotHub(shard_set)
        events = list(small_source().events())
        half = len(events) // 2
        for event in events[:half]:
            shard_set.offer(event)
        shard_set.flush()

        async def main():
            first = await hub.snapshot()
            assert hub.renders == 1
            for _ in range(100):
                assert (await hub.snapshot()) is first
            assert hub.renders == 1

            for event in events[half:]:
                shard_set.offer(event)
            shard_set.finish()
            second = await hub.snapshot()
            assert hub.renders == 2
            assert second.version != first.version
            # More traffic changed the picture, so the old ETag can
            # never validate against the newer pulse count.
            assert second.body != first.body
            assert second.etag != first.etag

        asyncio.run(main())
        shard_set.close()

    def test_concurrent_first_render_is_single_flight(self):
        shard_set = fed_set()
        hub = SnapshotHub(shard_set)

        async def main():
            snaps = await asyncio.gather(
                *(hub.snapshot() for _ in range(32))
            )
            assert hub.renders == 1
            assert all(snap is snaps[0] for snap in snaps)

        asyncio.run(main())
        shard_set.close()

    def test_dead_shard_gets_its_own_version(self):
        """A degraded picture never shares a cache key with a full one."""
        shard_set = fed_set()
        full = shard_set.version()
        shard_set.kill(1)
        degraded = shard_set.version()
        assert degraded != full
        assert degraded[1] == ("dead", 1)
        assert shard_set.alive() == (True, False)
        shard_set.close()
