"""Fan-in correctness: N shards merge to the unsharded picture."""

from repro.pipeline.sources import ShardView, shard_for_peer
from repro.serve import ShardSet, SnapshotHub
from tests.pipeline.conftest import small_source
from tests.serve.conftest import serve_config


def run_sharded(shards: int) -> ShardSet:
    shard_set = ShardSet(small_source(), serve_config(), shards=shards)
    for event in small_source().events():
        shard_set.offer(event)
    shard_set.finish()
    return shard_set


class TestShardView:
    def test_views_partition_the_stream_by_peer(self):
        parent = small_source()
        total = sum(1 for _ in parent.events())
        counts = []
        for k in range(3):
            events = list(ShardView(parent, k, 3).events())
            assert all(event.peer % 3 == k for event in events)
            counts.append(len(events))
        assert sum(counts) == total
        assert all(counts)  # every shard sees traffic

    def test_offsets_are_shard_local(self):
        view = ShardView(small_source(), 1, 2)
        events = list(view.events())
        assert list(view.events(5)) == events[5:]

    def test_shard_for_peer(self):
        assert shard_for_peer(7, 3) == 1
        assert [shard_for_peer(p, 2) for p in range(4)] == [0, 1, 0, 1]


class TestBitIdentity:
    def test_sharded_pictures_match_the_unsharded_run(self):
        """The acceptance bar: merged output byte-equals one shard's."""
        bodies = []
        for shards in (1, 2, 3):
            shard_set = run_sharded(shards)
            bodies.append(SnapshotHub(shard_set).render().body)
            shard_set.close()
        assert bodies[0] == bodies[1] == bodies[2]

    def test_merged_graph_refcounts_sum_across_shards(self):
        single = run_sharded(1)
        double = run_sharded(2)
        expected = {
            edge: dict(store)
            for edge, store in single.merged_graph().raw_edges()
        }
        merged = {
            edge: dict(store)
            for edge, store in double.merged_graph().raw_edges()
        }
        assert merged == expected
        single.close()
        double.close()


class TestIncidentRows:
    def test_rows_are_shard_tagged_and_ordered(self):
        shard_set = run_sharded(2)
        rows = shard_set.incident_rows()
        assert rows
        assert {row["shard"] for row in rows} <= {0, 1}
        keys = [(row["shard"], row["id"]) for row in rows]
        assert keys == sorted(keys)
        first = rows[0]
        fetched = shard_set.incident_row(
            first["id"], shard=first["shard"]
        )
        assert fetched == first
        assert shard_set.incident_row(10**9) is None
        shard_set.close()
