"""Shared serve-layer test helpers.

The serve loop is cooperative on a single event loop, so test clients
must be non-blocking: a blocking ``urllib`` call issued from inside
the loop would deadlock the very server it queries. ``http_get`` is
the minimal asyncio client the tests here use; pytest has no asyncio
plugin in this environment, so each test wraps its coroutine body in
``asyncio.run``.
"""

import asyncio
from typing import Optional

from repro.pipeline.monitor import MonitorConfig


def serve_config(**overrides) -> MonitorConfig:
    """The config every serve test runs: small sliding windows."""
    params = dict(
        window=120.0, slide=60.0, batch_size=64, checkpoint_every=1
    )
    params.update(overrides)
    return MonitorConfig(**params)


async def http_get(
    port: int,
    path: str,
    headers: Optional[dict[str, str]] = None,
    host: str = "127.0.0.1",
) -> tuple[int, dict[str, str], bytes]:
    """GET *path*; returns (status, lower-cased headers, body)."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        lines = [f"GET {path} HTTP/1.1", f"Host: {host}"]
        for name, value in (headers or {}).items():
            lines.append(f"{name}: {value}")
        lines.append("Connection: close")
        writer.write(
            ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        )
        await writer.drain()
        raw = await asyncio.wait_for(reader.read(), timeout=30.0)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass
    head, _, body = raw.partition(b"\r\n\r\n")
    status_line, *header_lines = head.decode("latin-1").split("\r\n")
    status = int(status_line.split(" ")[1])
    parsed: dict[str, str] = {}
    for line in header_lines:
        name, _, value = line.partition(":")
        parsed[name.strip().lower()] = value.strip()
    return status, parsed, body
