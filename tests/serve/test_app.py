"""End-to-end route behavior over a real socket."""

import asyncio
import json

from repro.serve import (
    ServeApp,
    ShardSet,
    SnapshotHub,
    TransitionFeed,
    run_serve,
)
from tests.pipeline.conftest import small_source
from tests.serve.conftest import http_get, serve_config


def build_app(shards: int = 2):
    shard_set = ShardSet(small_source(), serve_config(), shards=shards)
    hub = SnapshotHub(shard_set)
    feed = TransitionFeed()
    return shard_set, hub, feed, ServeApp(hub, feed)


class TestPictureRoute:
    def test_conditional_flow_across_a_window_advance(self):
        """200 with body, then 304, then a fresh 200 after new data."""
        shard_set, hub, feed, app = build_app()
        events = list(small_source().events())
        half = len(events) // 2

        async def main():
            port = await app.start()
            for event in events[:half]:
                shard_set.offer(event)
            shard_set.flush()

            status, headers, body = await http_get(
                port, "/picture.svg"
            )
            assert status == 200
            assert headers["content-type"] == "image/svg+xml"
            assert int(headers["content-length"]) == len(body)
            assert body.startswith(b"<?xml") or body.startswith(b"<svg")
            etag = headers["etag"]

            status, headers2, body2 = await http_get(
                port, "/picture.svg", headers={"If-None-Match": etag}
            )
            assert status == 304
            assert body2 == b""
            assert headers2["etag"] == etag
            assert hub.renders == 1

            for event in events[half:]:
                shard_set.offer(event)
            shard_set.finish()

            # The stale ETag must not validate against the new window.
            status, headers3, body3 = await http_get(
                port, "/picture.svg", headers={"If-None-Match": etag}
            )
            assert status == 200
            assert headers3["etag"] != etag
            assert body3 != body
            assert hub.renders == 2
            await app.close()

        asyncio.run(main())
        shard_set.close()


class TestJsonRoutes:
    def test_incidents_metrics_status_and_errors(self):
        shard_set, hub, feed, app = build_app()
        for event in small_source().events():
            entries = shard_set.offer(event)
            feed.publish_all(entries)
        feed.publish_all(shard_set.finish())

        async def main():
            port = await app.start()

            status, _, body = await http_get(port, "/incidents")
            assert status == 200
            rows = json.loads(body)["incidents"]
            assert rows
            statuses = {row["status"] for row in rows}
            pick = rows[0]["status"]
            status, _, body = await http_get(
                port, f"/incidents?status={pick}"
            )
            filtered = json.loads(body)["incidents"]
            assert filtered
            assert {row["status"] for row in filtered} == {pick}
            assert statuses >= {pick}

            status, _, body = await http_get(
                port,
                f"/incidents/{rows[0]['id']}?shard={rows[0]['shard']}",
            )
            assert status == 200
            assert json.loads(body)["id"] == rows[0]["id"]
            status, _, _ = await http_get(port, "/incidents/999999")
            assert status == 404
            status, _, _ = await http_get(port, "/incidents/nope")
            assert status == 404

            await http_get(port, "/picture.svg")  # force one render
            status, _, body = await http_get(port, "/metrics")
            assert status == 200
            text = body.decode()
            assert "repro_serve_requests_total_picture 1" in text
            assert "repro_serve_picture_renders_total 1" in text
            assert "repro_serve_shards_alive 2" in text
            status, _, body = await http_get(port, "/metrics.json")
            data = json.loads(body)
            assert data["repro_serve_events_offered_total"] == 1600

            status, _, body = await http_get(port, "/status")
            info = json.loads(body)
            assert info["alive"] == [True, True]
            assert info["renders"] == 1
            assert info["events_offered"] == 1600
            assert len(info["version"]) == 2

            status, _, body = await http_get(port, "/healthz")
            assert (status, body) == (200, b"ok")
            status, _, _ = await http_get(port, "/nope")
            assert status == 404

            # Non-GET methods are refused.
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", port
            )
            writer.write(
                b"POST /healthz HTTP/1.1\r\nHost: x\r\n"
                b"Connection: close\r\n\r\n"
            )
            await writer.drain()
            raw = await reader.read()
            assert raw.startswith(b"HTTP/1.1 405")
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

            await app.close()

        asyncio.run(main())
        shard_set.close()


class TestKeepAlive:
    def test_one_connection_serves_many_requests(self):
        shard_set, hub, feed, app = build_app()
        for event in small_source().events():
            shard_set.offer(event)
        shard_set.finish()

        async def main():
            port = await app.start()
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", port
            )
            for _ in range(5):
                writer.write(
                    b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n"
                )
                await writer.drain()
                head = await reader.readuntil(b"\r\n\r\n")
                assert b"200 OK" in head
                assert (await reader.readexactly(2)) == b"ok"
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass
            await app.close()

        asyncio.run(main())
        shard_set.close()


class TestRunServe:
    def test_driver_feeds_and_serves_on_one_loop(self):
        async def main():
            started = asyncio.Event()
            box: dict[str, object] = {}

            def on_started(app: ServeApp) -> None:
                box["port"] = app.server.port
                started.set()

            async def client() -> None:
                # Runs while the feeder is still pumping events: the
                # cooperative loop answers between batches.
                await started.wait()
                port = box["port"]
                status, headers, _ = await http_get(
                    port, "/picture.svg"
                )
                assert status == 200
                assert headers["etag"]
                status, _, body = await http_get(port, "/healthz")
                assert (status, body) == (200, b"ok")

            serve = asyncio.create_task(
                run_serve(
                    small_source(),
                    serve_config(),
                    shards=2,
                    linger=1.5,
                    on_started=on_started,
                )
            )
            await client()
            result = await serve
            assert result.events == 1600
            assert result.renders >= 1
            assert result.stopped == "end"
            assert result.port == box["port"]
            assert result.status["alive"] == [True, True]

        asyncio.run(main())
