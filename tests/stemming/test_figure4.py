"""The paper's Figure 4 walk-through, verbatim.

Ten route withdrawals during a Berkeley event spike. Eight of them share
the portion 11423-209; Stemming must locate the problem at the last edge
of that common portion, i.e. the AS edge 11423--209.
"""

from repro.collector.events import BGPEvent
from repro.stemming.encode import format_stem
from repro.stemming.stemmer import Stemmer

FIGURE_4_LINES = [
    "W 128.32.1.3 NEXT_HOP: 128.32.0.70 ASPATH: 11423 209 701 1299 5713 PREFIX: 192.96.10.0/24",
    "W 128.32.1.3 NEXT_HOP: 128.32.0.66 ASPATH: 11423 11422 209 4519 PREFIX: 207.191.23.0/24",
    "W 128.32.1.200 NEXT_HOP: 128.32.0.90 ASPATH: 11423 209 701 1299 5713 PREFIX: 192.96.10.0/24",
    "W 128.32.1.200 NEXT_HOP: 128.32.0.90 ASPATH: 11423 209 1239 3228 21408 PREFIX: 212.22.132.0/23",
    "W 128.32.1.3 NEXT_HOP: 128.32.0.66 ASPATH: 11423 209 701 705 PREFIX: 203.14.156.0/24",
    "W 128.32.1.3 NEXT_HOP: 128.32.0.66 ASPATH: 11423 11422 209 1239 3602 PREFIX: 209.5.188.0/24",
    "W 128.32.1.3 NEXT_HOP: 128.32.0.66 ASPATH: 11423 209 7018 13606 PREFIX: 12.2.41.0/24",
    "W 128.32.1.3 NEXT_HOP: 128.32.0.66 ASPATH: 11423 209 7018 13606 PREFIX: 12.96.77.0/24",
    "W 128.32.1.3 NEXT_HOP: 128.32.0.66 ASPATH: 11423 209 1239 5400 15410 PREFIX: 62.80.64.0/20",
    "W 128.32.1.200 NEXT_HOP: 128.32.0.90 ASPATH: 11423 209 1239 5400 15410 PREFIX: 62.80.64.0/20",
]


def figure4_events() -> list[BGPEvent]:
    return [
        BGPEvent.parse_line(line, timestamp=float(i))
        for i, line in enumerate(FIGURE_4_LINES)
    ]


class TestFigure4:
    def test_stem_is_11423_209(self):
        """The paper: 'The last edge of the common portion, in this case
        11423-209, would be the failure location.'"""
        component = Stemmer().strongest_component(figure4_events())
        assert component is not None
        assert component.location == (11423, 209)
        assert component.stem == (("as", 11423), ("as", 209))

    def test_eight_of_ten_share_the_stem(self):
        component = Stemmer().strongest_component(figure4_events())
        assert component.strength == 8

    def test_affected_prefixes(self):
        """P = prefixes of events containing s'; E = all events touching
        those prefixes. 62.80.64.0/20 and 192.96.10.0/24 are each
        withdrawn at two peers, so E covers those extra events too."""
        component = Stemmer().strongest_component(figure4_events())
        prefix_texts = {str(p) for p in component.prefixes}
        assert "192.96.10.0/24" in prefix_texts
        assert "12.2.41.0/24" in prefix_texts
        # The two events not sharing 11423-209 (via 11423 11422 209 ...)
        # do not contribute their prefixes.
        assert "207.191.23.0/24" not in prefix_texts
        assert "209.5.188.0/24" not in prefix_texts

    def test_component_events_superset_of_matches(self):
        component = Stemmer().strongest_component(figure4_events())
        # 8 events contain the subsequence directly; they touch 6
        # distinct prefixes (two prefixes are withdrawn at both peers).
        assert component.event_count == 8
        assert len(component.prefixes) == 6

    def test_one_hop_down_variant(self):
        """The paper: had the failure been between 209 and 7018, the
        common portion would be 11423-209-7018 and the stem 209-7018.
        Key ingredient: the withdrawn paths *diverge after* 7018."""
        lines = [
            "W 128.32.1.3 NEXT_HOP: 128.32.0.66 ASPATH: 11423 209 7018 13606 PREFIX: 12.2.41.0/24",
            "W 128.32.1.3 NEXT_HOP: 128.32.0.66 ASPATH: 11423 209 7018 6389 PREFIX: 12.96.77.0/24",
            "W 128.32.1.3 NEXT_HOP: 128.32.0.66 ASPATH: 11423 209 7018 2386 PREFIX: 12.44.9.0/24",
            "W 128.32.1.200 NEXT_HOP: 128.32.0.90 ASPATH: 11423 209 7018 4323 PREFIX: 12.108.1.0/24",
        ]
        events = [
            BGPEvent.parse_line(line, timestamp=float(i))
            for i, line in enumerate(lines)
        ]
        component = Stemmer().strongest_component(events)
        assert component.location == (209, 7018)

    def test_full_decomposition_explains_spike(self):
        result = Stemmer(min_strength=1).decompose(figure4_events())
        assert result.components[0].location == (11423, 209)
        assert result.coverage() == 1.0

    def test_format_stem_readable(self):
        component = Stemmer().strongest_component(figure4_events())
        assert format_stem(component.stem) == "AS11423--AS209"
