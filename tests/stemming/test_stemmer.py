"""Unit tests for the recursive Stemming decomposition."""

from repro.collector.events import BGPEvent, EventKind
from repro.net.aspath import ASPath
from repro.net.attributes import PathAttributes
from repro.net.prefix import Prefix, parse_address
from repro.stemming.stemmer import Stemmer, _contains


def mk_event(t, peer, nexthop, path, prefix, kind=EventKind.WITHDRAW):
    return BGPEvent(
        timestamp=t,
        kind=kind,
        peer=parse_address(peer),
        prefix=Prefix.parse(prefix),
        attributes=PathAttributes(
            nexthop=parse_address(nexthop), as_path=ASPath.parse(path)
        ),
    )


def spike(path: str, count: int, start_prefix: int = 0, peer="1.1.1.1"):
    """*count* withdrawals sharing *path* but diverging after it.

    Each event gets a distinct origin AS appended, mimicking a failure at
    the last edge of *path* whose fallout fans out to many destinations —
    the Figure 4 shape.
    """
    return [
        mk_event(
            float(i),
            peer,
            "2.2.2.2",
            f"{path} {60000 + start_prefix + i}",
            f"10.{(start_prefix + i) >> 8}.{(start_prefix + i) & 0xFF}.0/24",
        )
        for i in range(count)
    ]


class TestDecomposition:
    def test_empty_stream(self):
        result = Stemmer().decompose([])
        assert result.components == ()
        assert result.coverage() == 0.0
        assert result.strongest is None

    def test_single_component(self):
        result = Stemmer().decompose(spike("100 200 300", 20))
        assert len(result.components) == 1
        assert result.components[0].location == (200, 300)
        assert result.coverage() == 1.0

    def test_two_components_ranked_by_strength(self):
        events = spike("100 200 300", 30) + spike(
            "500 600 700", 10, start_prefix=1000, peer="5.5.5.5"
        )
        result = Stemmer().decompose(events)
        assert len(result.components) == 2
        assert result.components[0].location == (200, 300)
        assert result.components[1].location == (600, 700)
        assert result.components[0].strength > result.components[1].strength

    def test_component_removal_is_by_prefix(self):
        """Events sharing a prefix with component 1 must not re-appear in
        component 2, even if their paths differ."""
        flap = spike("100 200 300", 10)
        # Same prefixes announced over an alternate path.
        alternates = [
            mk_event(
                100.0 + i,
                "1.1.1.1",
                "2.2.2.2",
                "900 910 300",
                str(e.prefix),
                EventKind.ANNOUNCE,
            )
            for i, e in enumerate(flap)
        ]
        result = Stemmer().decompose(flap + alternates)
        assert len(result.components) == 1
        assert result.components[0].event_count == 20

    def test_min_strength_stops_recursion(self):
        events = spike("100 200 300", 10) + [
            mk_event(99.0, "9.9.9.9", "8.8.8.8", "1 2 3", "192.0.2.0/24")
        ]
        result = Stemmer(min_strength=2).decompose(events)
        assert len(result.components) == 1
        assert result.residual_events == 1
        assert 0.9 < result.coverage() < 1.0

    def test_max_components_bound(self):
        events = []
        for i in range(8):
            events += spike(
                f"{100 + i} {200 + i} 300",
                5,
                start_prefix=i * 100,
                peer=f"5.5.5.{i + 1}",
            )
        result = Stemmer(max_components=3).decompose(events)
        assert len(result.components) == 3

    def test_component_at_lookup(self):
        events = spike("100 200 300", 10)
        result = Stemmer().decompose(events)
        assert result.component_at((200, 300)) is result.components[0]
        assert result.component_at((1, 2)) is None

    def test_oscillation_beats_reset_over_long_windows(self):
        """Section III-B's key claim: over a long window, a single-prefix
        oscillation accumulates more correlation than a one-shot reset."""
        reset = spike("100 200 300", 50)  # one event per prefix
        oscillation = [
            mk_event(
                1000.0 + i,
                "3.3.3.3",
                "4.4.4.4",
                "700 800",
                "4.5.0.0/16",
                EventKind.WITHDRAW if i % 2 else EventKind.ANNOUNCE,
            )
            for i in range(200)
        ]
        result = Stemmer().decompose(reset + oscillation)
        top = result.components[0]
        assert top.prefixes == frozenset({Prefix.parse("4.5.0.0/16")})
        assert top.strength == 200

    def test_rank_numbers_sequential(self):
        events = spike("100 200 300", 20) + spike(
            "500 600 700", 10, start_prefix=1000, peer="5.5.5.5"
        )
        result = Stemmer().decompose(events)
        assert [c.rank for c in result.components] == [1, 2]

    def test_summary_and_describe(self):
        result = Stemmer().decompose(spike("100 200 300", 5))
        text = result.summary()
        assert "components" in text
        assert "AS200--AS300" in text


class TestSessionResetLocalization:
    def test_peer_session_loss_stems_at_peer_nexthop(self):
        """When one peer withdraws everything across *diverse* paths, the
        only common structure is the peer+nexthop pair — localizing the
        problem at the session, which is where it is."""
        events = [
            mk_event(
                float(i),
                "1.1.1.1",
                "2.2.2.2",
                f"{100 + i % 17} {200 + i % 13} {300 + i}",
                f"10.{i >> 8}.{i & 0xFF}.0/24",
            )
            for i in range(60)
        ]
        component = Stemmer().strongest_component(events)
        assert component.stem == (
            ("peer", parse_address("1.1.1.1")),
            ("nh", parse_address("2.2.2.2")),
        )
        assert component.strength == 60


class TestContains:
    def test_contains_basic(self):
        seq = (("as", 1), ("as", 2), ("as", 3))
        assert _contains(seq, (("as", 2), ("as", 3)))
        assert not _contains(seq, (("as", 3), ("as", 2)))
        assert not _contains(seq, (("as", 1), ("as", 3)))

    def test_needle_longer_than_sequence(self):
        assert not _contains((("as", 1),), (("as", 1), ("as", 2)))
