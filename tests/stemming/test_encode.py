"""Direct tests for token formatting."""

import pytest

from repro.net.prefix import Prefix
from repro.stemming.encode import format_stem, format_token, stem_values


class TestFormatToken:
    def test_peer(self):
        assert format_token(("peer", 0x80200103)) == "peer 128.32.1.3"

    def test_nexthop(self):
        assert format_token(("nh", 0x80200042)) == "nexthop 128.32.0.66"

    def test_asn(self):
        assert format_token(("as", 11423)) == "AS11423"

    def test_prefix(self):
        prefix = Prefix.parse("192.96.10.0/24")
        assert format_token(("pfx", prefix)) == "192.96.10.0/24"

    def test_unknown_namespace_rejected(self):
        with pytest.raises(ValueError):
            format_token(("bogus", 1))


class TestFormatStem:
    def test_as_edge(self):
        assert format_stem((("as", 11423), ("as", 209))) == "AS11423--AS209"

    def test_session_edge(self):
        text = format_stem((("peer", 0x01010101), ("nh", 0x02020202)))
        assert text == "peer 1.1.1.1--nexthop 2.2.2.2"

    def test_stem_values_strips_namespaces(self):
        assert stem_values((("as", 11423), ("as", 209))) == (11423, 209)
