"""Unit and property tests for subsequence counting."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.stemming.counter import (
    NaiveSubsequenceCounter,
    SubsequenceCounter,
    _subsequences,
)
from tests.collector.test_stream import event


def seq(*tokens):
    """Shorthand: build a token sequence from (ns, value) pairs."""
    return tuple(tokens)


A, B, C, D = ("as", 1), ("as", 2), ("as", 3), ("as", 4)


class TestSubsequenceEnumeration:
    def test_all_contiguous_length_ge_2(self):
        subs = set(_subsequences((A, B, C), None))
        assert subs == {(A, B), (B, C), (A, B, C)}

    def test_max_length_bound(self):
        subs = set(_subsequences((A, B, C, D), 2))
        assert subs == {(A, B), (B, C), (C, D)}

    def test_short_sequences_yield_nothing(self):
        assert list(_subsequences((A,), None)) == []
        assert list(_subsequences((), None)) == []

    @given(st.integers(2, 8))
    def test_count_formula(self, n):
        tokens = tuple(("as", i) for i in range(n))
        assert len(list(_subsequences(tokens, None))) == n * (n - 1) // 2


class TestCounting:
    def test_counts_across_sequences(self):
        counter = SubsequenceCounter()
        counter.add_sequence((A, B, C))
        counter.add_sequence((A, B, D))
        counts = counter.counts()
        assert counts[(A, B)] == 2
        assert counts[(B, C)] == 1
        assert counts[(A, B, C)] == 1

    def test_duplicate_sequences_multiply(self):
        counter = SubsequenceCounter()
        for _ in range(5):
            counter.add_sequence((A, B))
        assert counter.counts()[(A, B)] == 5
        assert counter.event_count == 5
        assert counter.unique_sequence_count == 1

    def test_top_prefers_count(self):
        counter = SubsequenceCounter()
        counter.add_sequence((A, B, C))
        counter.add_sequence((A, B, D))
        top, count = counter.top()
        assert top == (A, B)
        assert count == 2

    def test_top_prefers_length_on_ties(self):
        counter = SubsequenceCounter()
        counter.add_sequence((A, B, C))
        counter.add_sequence((A, B, C))
        top, count = counter.top()
        assert top == (A, B, C)  # count 2 ties (A,B); longer wins
        assert count == 2

    def test_top_empty(self):
        assert SubsequenceCounter().top() is None

    def test_add_events(self):
        counter = SubsequenceCounter()
        counter.add_all([event(1.0, path="100 200"), event(2.0, path="100 200")])
        assert counter.event_count == 2

    def test_count_monotone_under_extension(self):
        counter = SubsequenceCounter()
        counter.add_sequence((A, B, C))
        counter.add_sequence((A, B, C, D))
        counter.add_sequence((B, C))
        counts = counter.counts()
        assert counts[(B, C)] >= counts[(A, B, C)] >= counts[(A, B, C, D)]


class TestNaiveEquivalence:
    @given(
        st.lists(
            st.lists(st.integers(1, 5), min_size=2, max_size=6),
            min_size=1,
            max_size=20,
        )
    )
    def test_same_counts_as_naive(self, raw_sequences):
        fast = SubsequenceCounter()
        naive = NaiveSubsequenceCounter()
        for raw in raw_sequences:
            tokens = tuple(("as", v) for v in raw)
            fast.add_sequence(tokens)
            naive.add_sequence(tokens)
        assert fast.counts() == naive.counts()
        assert fast.top() == naive.top()

    @given(
        st.lists(
            st.lists(st.integers(1, 4), min_size=2, max_size=7),
            min_size=1,
            max_size=15,
        ),
        st.integers(2, 4),
    )
    def test_same_counts_with_length_bound(self, raw_sequences, bound):
        fast = SubsequenceCounter(max_length=bound)
        naive = NaiveSubsequenceCounter(max_length=bound)
        for raw in raw_sequences:
            tokens = tuple(("as", v) for v in raw)
            fast.add_sequence(tokens)
            naive.add_sequence(tokens)
        assert fast.counts() == naive.counts()


class TestMultiplicity:
    def test_grouped_add_equals_repeated_adds(self):
        grouped = SubsequenceCounter()
        grouped.add_sequence((A, B, C), multiplicity=5)
        looped = SubsequenceCounter()
        for _ in range(5):
            looped.add_sequence((A, B, C))
        assert grouped.counts() == looped.counts()
        assert grouped.top() == looped.top()
        assert grouped.event_count == 5

    def test_invalid_multiplicity(self):
        counter = SubsequenceCounter()
        with pytest.raises(ValueError):
            counter.add_sequence((A, B), multiplicity=0)

    def test_multiplicity_after_expansion(self):
        counter = SubsequenceCounter()
        counter.add_sequence((A, B), multiplicity=2)
        assert counter.counts()[(A, B)] == 2  # materialize the expansion
        counter.add_sequence((A, B), multiplicity=3)
        assert counter.counts()[(A, B)] == 5
        counter.subtract_sequence((A, B), 4)
        assert counter.counts()[(A, B)] == 1
        assert counter.top() == ((A, B), 1)
