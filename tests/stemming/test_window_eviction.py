"""Window-eviction regressions: counter subtraction and tracker bounds.

The streaming monitor keeps one live :class:`SubsequenceCounter` per
window stage and *subtracts* evicted events instead of recounting the
buffer. That is only sound if remove-then-readd is indistinguishable
from never having removed — these tests pin that equivalence against a
freshly built counter, across the counter's lazy materialization paths.
"""

import random

import pytest

from repro.stemming.counter import SubsequenceCounter
from repro.stemming.detector import StreamingDetector
from repro.stemming.tracker import IncidentState, IncidentTracker
from tests.stemming.test_stemmer import spike


def window_events():
    """Three overlapping bursts, the middle one destined for eviction."""
    first = spike("100 200 300", 25)
    second = spike("100 400 500", 20, start_prefix=100, peer="3.3.3.3")
    third = spike("100 200 300", 15, start_prefix=300)
    return first, second, third


def counter_of(*event_groups):
    counter = SubsequenceCounter()
    for events in event_groups:
        for event in events:
            counter.add_sequence(event.sequence)
    return counter


def assert_equivalent(left, right):
    assert left.counts() == right.counts()
    assert left.top() == right.top()
    assert left.event_count == right.event_count
    assert left.unique_sequence_count == right.unique_sequence_count


class TestRemoveThenReaddEquivalence:
    def test_subtract_matches_a_fresh_counter(self):
        first, second, third = window_events()
        live = counter_of(first, second, third)
        live.subtract_sequences(
            [(event.sequence, 1) for event in second]
        )
        assert_equivalent(live, counter_of(first, third))

    def test_readding_restores_full_equality(self):
        first, second, third = window_events()
        live = counter_of(first, second, third)
        live.subtract_sequences(
            [(event.sequence, 1) for event in second]
        )
        for event in second:
            live.add_sequence(event.sequence)
        assert_equivalent(live, counter_of(first, second, third))

    def test_equivalence_survives_materialized_state(self):
        # top()/counts() build lazy internal indexes; subtraction after
        # materialization must keep them coherent.
        first, second, third = window_events()
        live = counter_of(first, second, third)
        assert live.top() is not None
        live.counts()
        live.subtract_sequences(
            [(event.sequence, 1) for event in second]
        )
        for event in second:
            live.add_sequence(event.sequence)
        assert_equivalent(live, counter_of(first, second, third))

    def test_sliding_eviction_order_is_irrelevant(self):
        # Evicting in timestamp order (the window stage) and in any
        # shuffled order converge to the same counter.
        first, second, third = window_events()
        in_order = counter_of(first, second, third)
        shuffled = counter_of(first, second, third)
        removals = [(event.sequence, 1) for event in second]
        in_order.subtract_sequences(removals)
        rng = random.Random(13)
        mixed = list(removals)
        rng.shuffle(mixed)
        shuffled.subtract_sequences(mixed)
        assert_equivalent(in_order, shuffled)

    def test_subtracting_more_than_counted_raises(self):
        (first, _, _) = window_events()
        counter = counter_of(first)
        with pytest.raises(ValueError, match="cannot subtract"):
            counter.subtract_sequences(
                [(first[0].sequence, 2)]
            )

    def test_draining_everything_leaves_an_empty_counter(self):
        first, second, third = window_events()
        live = counter_of(first, second, third)
        live.subtract_sequences(
            [(e.sequence, 1) for e in first + second + third]
        )
        assert live.event_count == 0
        assert live.top() is None
        assert live.counts() == counter_of().counts()


def tracker_with_resolved(order, max_resolved=None):
    """A tracker holding RESOLVED incidents, inserted in *order*."""
    tracker = IncidentTracker(resolve_after=50.0,
                              max_resolved=max_resolved)
    paths = {
        "a": "100 200 300",
        "b": "100 400 500",
        "c": "100 600 700",
    }
    at = {"a": 10.0, "b": 20.0, "c": 30.0}
    for key in order:
        detector = StreamingDetector(windows=(40.0,))
        detector.ingest(
            spike(paths[key], 20, start_prefix=ord(key) * 40)
        )
        tracker.observe(detector.report(at=at[key]))
    # Much later: everything resolves in one sweep.
    tracker.observe(StreamingDetector(windows=(40.0,)).report(at=500.0))
    return tracker


class TestTrackerEviction:
    def test_unbounded_tracker_keeps_every_resolved_incident(self):
        tracker = tracker_with_resolved("abc")
        assert len(tracker.all_incidents()) == 3
        assert tracker.evict_resolved() == []

    def test_evicts_oldest_resolved_first(self):
        tracker = tracker_with_resolved("abc")
        evicted = tracker.evict_resolved(max_resolved=1)
        # a (last_seen 10) and b (20) go; c (30) survives.
        assert [i.last_seen for i in evicted] == [10.0, 20.0]
        assert len(tracker.all_incidents()) == 1

    def test_eviction_is_insertion_order_independent(self):
        for order in ("abc", "cba", "bac"):
            tracker = tracker_with_resolved(order, max_resolved=1)
            survivors = [
                i.location for i in tracker.all_incidents()
            ]
            assert survivors == [(600, 700)], order

    def test_observe_applies_the_cap_automatically(self):
        tracker = tracker_with_resolved("abc", max_resolved=2)
        resolved = [
            i for i in tracker.all_incidents()
            if i.state is IncidentState.RESOLVED
        ]
        assert len(resolved) == 2

    def test_evicted_location_relapses_as_new(self):
        from tests.stemming.test_stemmer import mk_event

        tracker = tracker_with_resolved("abc", max_resolved=0)
        assert tracker.all_incidents() == []
        detector = StreamingDetector(windows=(40.0,))
        detector.ingest([
            mk_event(
                580.0 + i, "1.1.1.1", "2.2.2.2",
                f"100 200 300 {60900 + i}", f"10.30.{i}.0/24",
            )
            for i in range(20)
        ])
        changed = tracker.observe(detector.report(at=600.0))
        assert [i.state for i in changed] == [IncidentState.NEW]
