"""Unit tests for the windowed streaming detector."""

import pytest

from repro.stemming.detector import StreamingDetector
from tests.stemming.test_stemmer import mk_event, spike


def oscillation(prefix: str, count: int, start: float, period: float,
                peer="3.3.3.3"):
    from repro.collector.events import EventKind

    return [
        mk_event(
            start + i * period,
            peer,
            "4.4.4.4",
            "700 800",
            prefix,
            EventKind.WITHDRAW if i % 2 else EventKind.ANNOUNCE,
        )
        for i in range(count)
    ]


class TestConstruction:
    def test_rejects_no_windows(self):
        with pytest.raises(ValueError):
            StreamingDetector(windows=())

    def test_rejects_nonpositive_window(self):
        with pytest.raises(ValueError):
            StreamingDetector(windows=(0.0,))


class TestIngestion:
    def test_buffer_grows_and_sorts(self):
        detector = StreamingDetector(windows=(100.0,))
        detector.ingest(spike("100 200", 5))
        assert detector.buffered == 5

    def test_trim_discards_beyond_longest_window(self):
        detector = StreamingDetector(windows=(10.0,))
        detector.ingest([mk_event(0.0, "1.1.1.1", "2.2.2.2", "1 2", "10.0.0.0/24")])
        detector.ingest([mk_event(100.0, "1.1.1.1", "2.2.2.2", "1 2", "10.0.0.0/24")])
        assert detector.buffered == 1

    def test_out_of_order_ingest(self):
        detector = StreamingDetector(windows=(1000.0,))
        detector.ingest([mk_event(50.0, "1.1.1.1", "2.2.2.2", "1 2", "10.0.0.0/24")])
        detector.ingest([mk_event(10.0, "1.1.1.1", "2.2.2.2", "1 2", "10.1.0.0/24")])
        report = detector.report(at=30.0)
        # Only the t=10 event falls inside (at-window, at].
        assert report.by_window[1000.0].total_events == 1


class TestWindowing:
    def test_short_window_sees_recent_spike_only(self):
        detector = StreamingDetector(windows=(60.0, 10_000.0))
        old_spike = spike("100 200 300", 30)  # t = 0..29
        recent = oscillation("4.5.0.0/16", 40, start=5000.0, period=1.0)
        detector.ingest(old_spike + recent)
        report = detector.report(at=5040.0)
        short = report.by_window[60.0]
        long_ = report.by_window[10_000.0]
        assert short.total_events == 40  # oscillation only
        assert long_.total_events == 70

    def test_oscillation_dominates_long_window(self):
        """The paper's detection story: the oscillation out-correlates a
        bigger spike when the window is long enough to accumulate it."""
        detector = StreamingDetector(windows=(60.0, 100_000.0))
        reset = spike("100 200 300", 50)  # 50 events at t=0..49
        osc = oscillation("4.5.0.0/16", 300, start=100.0, period=300.0)
        detector.ingest(reset + osc)
        report = detector.report()
        top_long = report.strongest(100_000.0)
        assert top_long is not None
        assert str(next(iter(top_long.prefixes))) == "4.5.0.0/16"

    def test_persistent_anomalies_flags_oscillation(self):
        detector = StreamingDetector(windows=(60.0, 100_000.0))
        osc = oscillation("4.5.0.0/16", 300, start=0.0, period=300.0)
        # A fresh, louder spike inside the short window.
        recent_spike = spike("100 200 300", 40)
        shifted = [
            mk_event(
                89_000.0 + e.timestamp,
                "1.1.1.1",
                "2.2.2.2",
                str(e.attributes.as_path),
                str(e.prefix),
                e.kind,
            )
            for e in recent_spike
        ]
        detector.ingest(osc + shifted)
        report = detector.report()
        persistent = report.persistent_anomalies()
        assert any(
            "4.5.0.0/16" in {str(p) for p in c.prefixes} for c in persistent
        )

    def test_strongest_overall_normalizes(self):
        detector = StreamingDetector(windows=(60.0, 100_000.0))
        detector.ingest(oscillation("4.5.0.0/16", 100, start=0.0, period=500.0))
        report = detector.report()
        assert report.strongest_overall() is not None

    def test_report_on_empty_detector(self):
        detector = StreamingDetector(windows=(60.0,))
        report = detector.report()
        assert report.by_window[60.0].total_events == 0
        assert report.strongest(60.0) is None
        assert report.strongest_overall() is None
