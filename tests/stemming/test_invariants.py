"""Property-based invariants of the Stemming decomposition."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collector.events import BGPEvent, EventKind
from repro.net.aspath import ASPath
from repro.net.attributes import PathAttributes
from repro.net.prefix import Prefix
from repro.stemming.counter import SubsequenceCounter
from repro.stemming.stemmer import Stemmer, _contains


@st.composite
def random_streams(draw):
    """Random small event streams with tunable correlation structure."""
    n = draw(st.integers(min_value=0, max_value=60))
    events = []
    for i in range(n):
        peer = draw(st.integers(1, 3))
        nexthop = draw(st.integers(10, 12))
        path = draw(
            st.lists(st.integers(100, 105), min_size=1, max_size=4)
        )
        prefix_index = draw(st.integers(0, 9))
        events.append(
            BGPEvent(
                timestamp=float(i),
                kind=draw(
                    st.sampled_from([EventKind.ANNOUNCE, EventKind.WITHDRAW])
                ),
                peer=peer,
                prefix=Prefix(0x0A000000 + prefix_index * 256, 24),
                attributes=PathAttributes(
                    nexthop=nexthop, as_path=ASPath(path)
                ),
            )
        )
    return events


class TestDecompositionInvariants:
    @given(random_streams())
    @settings(max_examples=60, deadline=None)
    def test_components_partition_prefixes(self, events):
        """No prefix belongs to two components."""
        result = Stemmer(min_strength=1).decompose(events)
        seen: set = set()
        for component in result.components:
            assert not (seen & set(component.prefixes))
            seen |= set(component.prefixes)

    @given(random_streams())
    @settings(max_examples=60, deadline=None)
    def test_events_accounted_for(self, events):
        """Component events + residual = total; no event lost or doubled."""
        result = Stemmer(min_strength=1, max_components=64).decompose(events)
        explained = sum(c.event_count for c in result.components)
        assert explained + result.residual_events == result.total_events

    @given(random_streams())
    @settings(max_examples=60, deadline=None)
    def test_strengths_non_increasing(self, events):
        result = Stemmer(min_strength=1).decompose(events)
        strengths = [c.strength for c in result.components]
        assert strengths == sorted(strengths, reverse=True)

    @given(random_streams())
    @settings(max_examples=60, deadline=None)
    def test_stem_is_suffix_of_subsequence(self, events):
        result = Stemmer(min_strength=1).decompose(events)
        for component in result.components:
            assert component.stem == tuple(component.subsequence[-2:])

    @given(random_streams())
    @settings(max_examples=60, deadline=None)
    def test_every_component_event_touches_its_prefixes(self, events):
        result = Stemmer(min_strength=1).decompose(events)
        for component in result.components:
            for event in component.events:
                assert event.prefix in component.prefixes

    @given(random_streams())
    @settings(max_examples=60, deadline=None)
    def test_strength_counts_subsequence_occurrences(self, events):
        """The reported strength equals the number of events (in the
        stream at extraction time) containing the winning subsequence.
        For the FIRST component that stream is the full input."""
        result = Stemmer(min_strength=1).decompose(events)
        if not result.components:
            return
        first = result.components[0]
        actual = sum(
            1 for e in events if _contains(e.sequence, first.subsequence)
        )
        assert first.strength == actual

    @given(random_streams())
    @settings(max_examples=40, deadline=None)
    def test_coverage_bounds(self, events):
        result = Stemmer(min_strength=1).decompose(events)
        assert 0.0 <= result.coverage() <= 1.0
        if events and len(result.components):
            assert result.coverage() > 0.0


class TestCounterInvariants:
    @given(random_streams())
    @settings(max_examples=40, deadline=None)
    def test_monotonicity_under_extension(self, events):
        """count(s) ≥ count(s + t) for every counted extension."""
        counter = SubsequenceCounter()
        counter.add_all(events)
        counts = counter.counts()
        for subsequence, count in counts.items():
            if len(subsequence) > 2:
                assert counts[subsequence[:-1]] >= count
                assert counts[subsequence[1:]] >= count

    @given(random_streams())
    @settings(max_examples=40, deadline=None)
    def test_top_is_maximal(self, events):
        counter = SubsequenceCounter()
        counter.add_all(events)
        top = counter.top()
        if top is None:
            return
        _, best_count = top
        assert best_count == max(counter.counts().values())
