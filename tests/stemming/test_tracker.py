"""Tests for incident lifecycle tracking."""

from repro.stemming.detector import StreamingDetector
from repro.stemming.tracker import IncidentState, IncidentTracker
from tests.stemming.test_stemmer import mk_event, spike


def detector_with(events, windows=(600.0,)):
    detector = StreamingDetector(windows=windows)
    detector.ingest(events)
    return detector


class TestLifecycle:
    def test_new_incident(self):
        tracker = IncidentTracker()
        detector = detector_with(spike("100 200 300", 20))
        changed = tracker.observe(detector.report(at=30.0))
        assert len(changed) == 1
        assert changed[0].state is IncidentState.NEW
        assert changed[0].location == (200, 300)

    def test_ongoing_incident(self):
        tracker = IncidentTracker()
        detector = StreamingDetector(windows=(600.0,))
        detector.ingest(spike("100 200 300", 20))
        tracker.observe(detector.report(at=30.0))
        detector.ingest(
            spike("100 200 300", 10, start_prefix=500)
        )
        changed = tracker.observe(detector.report(at=60.0))
        incident = tracker.incident_at((200, 300))
        assert incident.state is IncidentState.ONGOING
        assert incident.observations == 2
        assert incident.duration == 30.0
        # An ongoing incident is not a *change*.
        assert incident not in changed

    def test_resolution_after_grace(self):
        tracker = IncidentTracker(resolve_after=100.0)
        detector = StreamingDetector(windows=(50.0,))
        detector.ingest(spike("100 200 300", 20))
        tracker.observe(detector.report(at=30.0))
        # Much later: the window no longer contains the spike.
        changed = tracker.observe(detector.report(at=500.0))
        incident = tracker.incident_at((200, 300))
        assert incident.state is IncidentState.RESOLVED
        assert incident in changed

    def test_no_premature_resolution(self):
        tracker = IncidentTracker(resolve_after=1000.0)
        detector = StreamingDetector(windows=(50.0,))
        detector.ingest(spike("100 200 300", 20))
        tracker.observe(detector.report(at=30.0))
        tracker.observe(detector.report(at=200.0))  # quiet, within grace
        assert (
            tracker.incident_at((200, 300)).state is not IncidentState.RESOLVED
        )

    def test_relapse_is_a_change(self):
        tracker = IncidentTracker(resolve_after=50.0)
        detector = StreamingDetector(windows=(40.0,))
        detector.ingest(spike("100 200 300", 20))
        tracker.observe(detector.report(at=30.0))
        tracker.observe(detector.report(at=200.0))  # resolves
        assert tracker.incident_at((200, 300)).state is IncidentState.RESOLVED
        # The same location flares again.
        relapse = [
            mk_event(300.0 + i, "1.1.1.1", "2.2.2.2",
                     f"100 200 300 {60000 + i}", f"10.9.{i}.0/24")
            for i in range(10)
        ]
        detector.ingest(relapse)
        changed = tracker.observe(detector.report(at=310.0))
        incident = tracker.incident_at((200, 300))
        assert incident.state is IncidentState.ONGOING
        assert incident in changed

    def test_weak_components_ignored(self):
        tracker = IncidentTracker(min_strength=10)
        detector = detector_with(spike("100 200 300", 4))
        tracker.observe(detector.report(at=10.0))
        assert tracker.all_incidents() == []


class TestQueries:
    def test_active_sorted_by_peak(self):
        tracker = IncidentTracker()
        detector = StreamingDetector(windows=(600.0,))
        detector.ingest(spike("100 200 300", 30))
        detector.ingest(
            spike("500 600 700", 8, start_prefix=500, peer="5.5.5.5")
        )
        tracker.observe(detector.report(at=40.0))
        active = tracker.active()
        assert len(active) == 2
        assert active[0].location == (200, 300)

    def test_summary_readable(self):
        tracker = IncidentTracker()
        assert tracker.summary() == "no incidents tracked"
        detector = detector_with(spike("100 200 300", 20))
        tracker.observe(detector.report(at=10.0))
        text = tracker.summary()
        assert "AS200--AS300" in text
        assert "new" in text


class TestOperationalStory:
    def test_oscillation_tracked_through_life(self):
        """A persistent oscillation: NEW on first sight, ONGOING across
        many reports, RESOLVED after the fix."""
        from repro.collector.events import EventKind

        tracker = IncidentTracker(resolve_after=120.0)
        detector = StreamingDetector(windows=(300.0,))

        def osc(start, count):
            return [
                mk_event(
                    start + i * 10.0, "3.3.3.3", "4.4.4.4", "700 800",
                    "4.5.0.0/16",
                    EventKind.WITHDRAW if i % 2 else EventKind.ANNOUNCE,
                )
                for i in range(count)
            ]

        detector.ingest(osc(0.0, 30))
        first = tracker.observe(detector.report(at=300.0))
        assert first and first[0].state is IncidentState.NEW
        detector.ingest(osc(300.0, 30))
        tracker.observe(detector.report(at=600.0))
        incident = tracker.active()[0]
        assert incident.state is IncidentState.ONGOING
        assert incident.observations == 2
        # Fixed: no more events; reports go quiet past the grace period.
        tracker.observe(detector.report(at=1200.0))
        assert incident.state is IncidentState.RESOLVED
        assert tracker.active() == []
