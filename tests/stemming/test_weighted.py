"""Unit tests for traffic-weighted Stemming."""

from repro.net.prefix import Prefix
from repro.stemming.weighted import TrafficWeightedStemmer
from tests.stemming.test_stemmer import mk_event, spike


class TestWeighting:
    def test_elephant_outranks_mice(self):
        """Ten mice events lose to two elephant events when the elephant
        prefix carries 100x the traffic — the Section III-D.2 rationale."""
        mice = spike("100 200 300", 10)  # prefixes 10.0.x.0/24
        elephant_prefix = "192.0.2.0/24"
        elephants = [
            mk_event(50.0 + i, "9.9.9.9", "8.8.8.8", "500 600", elephant_prefix)
            for i in range(2)
        ]
        volumes = {Prefix.parse(elephant_prefix): 100.0}
        weighted = TrafficWeightedStemmer(volumes=volumes, default_volume=1.0)
        result = weighted.decompose(mice + elephants)
        top = result.components[0]
        assert Prefix.parse(elephant_prefix) in top.prefixes
        assert top.strength == 200  # 2 events x volume 100

    def test_unweighted_ranking_reversed(self):
        """Sanity check: the plain stemmer ranks the same stream the
        other way around."""
        from repro.stemming.stemmer import Stemmer

        mice = spike("100 200 300", 10)
        elephants = [
            mk_event(50.0 + i, "9.9.9.9", "8.8.8.8", "500 600", "192.0.2.0/24")
            for i in range(2)
        ]
        result = Stemmer().decompose(mice + elephants)
        assert Prefix.parse("192.0.2.0/24") not in result.components[0].prefixes

    def test_default_volume_applies(self):
        weighted = TrafficWeightedStemmer(volumes={}, default_volume=3.0)
        result = weighted.decompose(spike("100 200 300", 4))
        assert result.components[0].strength == 12

    def test_decomposition_structure_matches_unweighted_for_uniform_volumes(self):
        from repro.stemming.stemmer import Stemmer

        events = spike("100 200 300", 20) + spike(
            "500 600 700", 8, start_prefix=500, peer="5.5.5.5"
        )
        uniform = TrafficWeightedStemmer(volumes={}, default_volume=1.0)
        weighted_result = uniform.decompose(events)
        plain_result = Stemmer().decompose(events)
        assert [c.location for c in weighted_result.components] == [
            c.location for c in plain_result.components
        ]
        assert [c.strength for c in weighted_result.components] == [
            c.strength for c in plain_result.components
        ]

    def test_empty_stream(self):
        weighted = TrafficWeightedStemmer(volumes={})
        result = weighted.decompose([])
        assert result.components == ()

    def test_max_components_bound(self):
        events = []
        for i in range(6):
            events += spike(
                f"{100 + i} {200 + i} {300 + i}",
                3,
                start_prefix=i * 50,
                peer=f"7.7.7.{i + 1}",
            )
        weighted = TrafficWeightedStemmer(volumes={}, max_components=2)
        assert len(weighted.decompose(events).components) == 2

    def test_volume_of(self):
        p = Prefix.parse("10.0.0.0/8")
        weighted = TrafficWeightedStemmer(volumes={p: 7.0}, default_volume=2.0)
        assert weighted.volume_of(p) == 7.0
        assert weighted.volume_of(Prefix.parse("11.0.0.0/8")) == 2.0
