"""Property suite pinning the interned counter to the naive reference.

The columnar :class:`~repro.stemming.counter.SubsequenceCounter` (packed
pair keys, id-keyed buckets, bulk pair streaming — DESIGN.md §10) must
be observationally identical to :class:`NaiveSubsequenceCounter`, which
recounts every contiguous subsequence from scratch. Hypothesis drives
both through the same scripts — bulk adds with multiplicities above and
below the streaming repeat limit, optional mid-script expansion
materialization, and partial ``subtract_sequences`` — and asserts the
decoded ``counts()`` and ``top()`` ranking never diverge.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stemming.counter import (
    _STREAM_REPEAT_LIMIT,
    NaiveSubsequenceCounter,
    SubsequenceCounter,
)


def toks(raw):
    return tuple(("as", v) for v in raw)


raw_sequences = st.lists(
    st.integers(1, 5), min_size=2, max_size=6
).map(tuple)


@st.composite
def counter_scripts(draw):
    """(adds, subtractions, materialize_before_subtract).

    Multiplicities straddle ``_STREAM_REPEAT_LIMIT`` so both the
    repeat-extend and the per-pair arithmetic branches of the bulk pair
    streaming run; subtractions never exceed what was added (the
    counter's documented precondition).
    """
    adds = draw(
        st.lists(
            st.tuples(
                raw_sequences,
                st.integers(1, 2 * _STREAM_REPEAT_LIMIT),
            ),
            min_size=1,
            max_size=12,
        )
    )
    totals: dict = {}
    for raw, mult in adds:
        totals[raw] = totals.get(raw, 0) + mult
    subtractions = []
    for raw, total in sorted(totals.items()):
        k = draw(st.integers(0, total))
        if k:
            subtractions.append((raw, k))
    materialize = draw(st.booleans())
    return adds, subtractions, materialize


class TestCountsAndRanking:
    @given(counter_scripts())
    @settings(max_examples=60)
    def test_counts_match_naive(self, script):
        adds, _, _ = script
        fast = SubsequenceCounter()
        naive = NaiveSubsequenceCounter()
        for raw, mult in adds:
            fast.add_sequence(toks(raw), mult)
            naive.add_sequence(toks(raw), mult)
        assert fast.counts() == naive.counts()
        assert fast.event_count == naive.event_count

    @given(counter_scripts())
    @settings(max_examples=60)
    def test_top_ranking_matches_naive(self, script):
        adds, _, _ = script
        fast = SubsequenceCounter()
        naive = NaiveSubsequenceCounter()
        for raw, mult in adds:
            fast.add_sequence(toks(raw), mult)
            naive.add_sequence(toks(raw), mult)
        assert fast.top() == naive.top()

    @given(counter_scripts())
    @settings(max_examples=60)
    def test_bulk_id_adds_match_naive(self, script):
        """``add_id_counts`` (the stemmer's bulk entry) = token adds."""
        adds, _, _ = script
        fast = SubsequenceCounter()
        naive = NaiveSubsequenceCounter()
        fast.add_id_counts(
            (fast.intern_sequence(toks(raw)), mult) for raw, mult in adds
        )
        for raw, mult in adds:
            naive.add_sequence(toks(raw), mult)
        assert fast.counts() == naive.counts()
        assert fast.top() == naive.top()


def naive_residual(adds, subtractions):
    """A naive counter over the post-subtraction multiset.

    The naive reference has no per-sequence bookkeeping to subtract, so
    the model for ``subtract_sequences`` is *recounting with the
    subtracted copies never added* — exactly the semantics the
    incremental subtract must preserve.
    """
    remaining: dict = {}
    for raw, mult in adds:
        remaining[raw] = remaining.get(raw, 0) + mult
    for raw, k in subtractions:
        remaining[raw] -= k
    naive = NaiveSubsequenceCounter()
    for raw, mult in remaining.items():
        if mult:
            naive.add_sequence(toks(raw), mult)
    return naive


class TestSubtraction:
    @given(counter_scripts())
    @settings(max_examples=60)
    def test_subtract_matches_naive(self, script):
        adds, subtractions, materialize = script
        fast = SubsequenceCounter()
        for raw, mult in adds:
            fast.add_sequence(toks(raw), mult)
        if materialize:
            # Force the lazy full expansion first so the incremental
            # (buckets-maintained) subtract branch runs too.
            fast.counts()
        fast.subtract_sequences(
            [(toks(raw), k) for raw, k in subtractions]
        )
        naive = naive_residual(adds, subtractions)
        assert fast.counts() == naive.counts()
        assert fast.top() == naive.top()
        assert fast.event_count == naive.event_count

    @given(counter_scripts())
    @settings(max_examples=40)
    def test_id_level_subtract_matches_naive(self, script):
        """``subtract_id_sequences`` (the stemmer's path) = token path."""
        adds, subtractions, materialize = script
        fast = SubsequenceCounter()
        for raw, mult in adds:
            fast.add_sequence(toks(raw), mult)
        if materialize:
            fast.top()  # warm the pair-majority path instead
        fast.subtract_id_sequences(
            [(fast.intern_sequence(toks(raw)), k) for raw, k in subtractions]
        )
        naive = naive_residual(adds, subtractions)
        assert fast.counts() == naive.counts()
        assert fast.top() == naive.top()


class TestDecodeBoundary:
    @given(st.lists(raw_sequences, min_size=1, max_size=10))
    @settings(max_examples=40)
    def test_top_ids_decode_to_top(self, raws):
        counter = SubsequenceCounter()
        for raw in raws:
            counter.add_sequence(toks(raw))
        top = counter.top()
        top_ids = counter.top_ids()
        assert (top is None) == (top_ids is None)
        if top is not None:
            ids, count = top_ids
            token = counter.symbols.token
            assert (tuple(token(tid) for tid in ids), count) == top

    @given(st.lists(raw_sequences, min_size=1, max_size=10))
    @settings(max_examples=40)
    def test_id_counts_decode_to_counts(self, raws):
        counter = SubsequenceCounter()
        for raw in raws:
            counter.add_sequence(toks(raw))
        token = counter.symbols.token
        decoded = {
            tuple(token(tid) for tid in ids): count
            for ids, count in counter.id_counts().items()
        }
        assert decoded == counter.counts()
