"""Integration tests for the Berkeley and ISP-Anon workload builders."""

import pytest

from repro.net.prefix import parse_address
from repro.simulator.workloads import (
    COMM_CENIC_LAAP,
    COMM_ISP,
    EDGE_13,
    EDGE_200,
    NH_90,
    RL_66,
    RL_70,
    BerkeleySite,
    IspAnonSite,
    _family_partition,
    synthetic_prefixes,
)


@pytest.fixture(scope="module")
def berkeley() -> BerkeleySite:
    return BerkeleySite(n_prefixes=400)


@pytest.fixture(scope="module")
def isp() -> IspAnonSite:
    return IspAnonSite(n_reflectors=4, n_prefixes=200)


class TestFamilyPartition:
    def test_fractions_sum_to_total(self):
        counts = _family_partition(1000)
        assert sum(counts.values()) == 1000

    def test_published_split(self):
        counts = _family_partition(10000)
        assert counts["commodity-66"] == 7800
        assert counts["commodity-70"] == 500
        assert counts["internet2"] == 600

    def test_synthetic_prefixes_deterministic(self):
        assert synthetic_prefixes(5, 3) == synthetic_prefixes(5, 3)
        assert synthetic_prefixes(1, 0)[0].length == 24


class TestBerkeleySite:
    def test_rejects_tiny_universe(self):
        with pytest.raises(ValueError):
            BerkeleySite(n_prefixes=10)

    def test_full_table_at_rex(self, berkeley):
        # REX sees every prefix (each edge relays its EBGP best routes).
        assert berkeley.rex.prefix_count() == berkeley.n_prefixes

    def test_nexthop_split_matches_misconfiguration(self, berkeley):
        """Section IV-A: .66 carries 78%, .70 carries 5% of all prefixes."""
        per_nexthop: dict[int, int] = {}
        for route in berkeley.rex.all_routes():
            per_nexthop.setdefault(route.attributes.nexthop, set()).add(
                route.prefix
            )
        total = berkeley.n_prefixes
        share66 = len(per_nexthop[parse_address(RL_66)]) / total
        share70 = len(per_nexthop[parse_address(RL_70)]) / total
        assert share66 == pytest.approx(0.78, abs=0.02)
        assert share70 == pytest.approx(0.05, abs=0.02)

    def test_edge13_filters_non_commodity(self, berkeley):
        """128.32.1.3 only accepts ISP-tagged (commodity) routes."""
        edge13_peer = parse_address(EDGE_13)
        prefixes_via_13 = {
            e.prefix for e in berkeley.rex.events.for_peer(edge13_peer)
        }
        commodity = set(berkeley.commodity_prefixes())
        assert prefixes_via_13 <= commodity

    def test_edge200_carries_non_commodity(self, berkeley):
        """Internet2 / CENIC routes reach REX via 128.32.1.200 only."""
        edge200_peer = parse_address(EDGE_200)
        i2 = set(berkeley.family("internet2").prefixes)
        via_200 = {
            e.prefix for e in berkeley.rex.events.for_peer(edge200_peer)
        }
        assert i2 <= via_200
        nexthops = {
            e.attributes.nexthop
            for e in berkeley.rex.events.for_peer(edge200_peer)
        }
        assert nexthops == {parse_address(NH_90)}

    def test_commodity_best_path_via_edge13(self, berkeley):
        """LOCAL_PREF 80 at .3 beats 70 at .200 for commodity routes, so
        edge200 selects the IBGP path via edge13 and stays quiet."""
        prefix = berkeley.commodity_prefixes()[0]
        best = berkeley.edge200.best_route(prefix)
        assert best.peer == berkeley.edge13.address

    def test_laap_tag_split(self, berkeley):
        """Figure 6 ground truth: ~32% Los Nettos, ~68% KDDI."""
        ln = len(berkeley.family("cenic-los-nettos").prefixes)
        kddi = len(berkeley.family("cenic-kddi").prefixes)
        assert ln / (ln + kddi) == pytest.approx(0.32, abs=0.03)

    def test_tagged_events_selectable(self, berkeley):
        tagged = berkeley.rex.events.with_community(COMM_CENIC_LAAP)
        assert len(tagged.prefixes()) == len(
            berkeley.family("cenic-los-nettos").prefixes
        ) + len(berkeley.family("cenic-kddi").prefixes)

    def test_family_lookup(self, berkeley):
        assert berkeley.family("internet2").klass == "internet2"
        with pytest.raises(KeyError):
            berkeley.family("ghost")
        assert len(berkeley.families_of("commodity-66")) >= 1

    def test_isp_tag_on_commodity_only(self, berkeley):
        for family in berkeley.families:
            if family.klass.startswith("commodity"):
                assert COMM_ISP in family.communities
            else:
                assert COMM_ISP not in family.communities


class TestIspAnonSite:
    def test_rejects_single_reflector(self):
        with pytest.raises(ValueError):
            IspAnonSite(n_reflectors=1)

    def test_rex_peers_with_every_reflector(self, isp):
        assert len(isp.rex.peers()) == isp.n_reflectors

    def test_full_prefix_coverage(self, isp):
        assert isp.rex.prefix_count() == isp.n_prefixes

    def test_routes_amplified_by_reflection(self, isp):
        """Every reflector announces its best path to REX, so the route
        count is roughly prefixes × reflectors (the paper's 200k → 1.5M
        amplification, at our reflector count)."""
        assert isp.rex.route_count() == isp.n_prefixes * isp.n_reflectors

    def test_many_neighbor_ases(self, isp):
        assert isp.rex.neighbor_as_count() >= 20

    def test_reflectors_converge_to_same_best(self, isp):
        prefix = isp.feed_families[0].prefixes[0]
        bests = {
            r.best_route(prefix).attributes.as_path.sequence
            for r in isp.reflectors
        }
        assert len(bests) == 1
