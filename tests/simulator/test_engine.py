"""Unit tests for the discrete-event engine."""

import pytest

from repro.simulator.engine import Engine


class TestScheduling:
    def test_events_fire_in_time_order(self):
        engine = Engine()
        fired = []
        engine.schedule_at(3.0, lambda: fired.append("c"))
        engine.schedule_at(1.0, lambda: fired.append("a"))
        engine.schedule_at(2.0, lambda: fired.append("b"))
        engine.run()
        assert fired == ["a", "b", "c"]

    def test_fifo_for_equal_times(self):
        engine = Engine()
        fired = []
        for label in "abc":
            engine.schedule_at(1.0, lambda l=label: fired.append(l))
        engine.run()
        assert fired == ["a", "b", "c"]

    def test_clock_advances(self):
        engine = Engine()
        seen = []
        engine.schedule_at(5.0, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [5.0]
        assert engine.now == 5.0

    def test_schedule_after(self):
        engine = Engine(start_time=10.0)
        seen = []
        engine.schedule_after(2.5, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [12.5]

    def test_cannot_schedule_in_past(self):
        engine = Engine(start_time=10.0)
        with pytest.raises(ValueError):
            engine.schedule_at(5.0, lambda: None)
        with pytest.raises(ValueError):
            engine.schedule_after(-1.0, lambda: None)

    def test_callbacks_can_schedule_more(self):
        engine = Engine()
        fired = []

        def chain(n: int) -> None:
            fired.append(n)
            if n < 3:
                engine.schedule_after(1.0, lambda: chain(n + 1))

        engine.schedule_at(0.0, lambda: chain(0))
        engine.run()
        assert fired == [0, 1, 2, 3]
        assert engine.now == 3.0


class TestRunControl:
    def test_run_returns_count(self):
        engine = Engine()
        for t in (1.0, 2.0):
            engine.schedule_at(t, lambda: None)
        assert engine.run() == 2
        assert engine.pending() == 0

    def test_run_with_cap_stops_early(self):
        """A livelocked (persistently oscillating) queue must be stoppable."""
        engine = Engine()

        def reschedule() -> None:
            engine.schedule_after(1.0, reschedule)

        engine.schedule_at(0.0, reschedule)
        executed = engine.run(max_events=50)
        assert executed == 50
        assert engine.pending() == 1

    def test_run_until_executes_only_due_events(self):
        engine = Engine()
        fired = []
        engine.schedule_at(1.0, lambda: fired.append(1))
        engine.schedule_at(5.0, lambda: fired.append(5))
        executed = engine.run_until(2.0)
        assert executed == 1
        assert fired == [1]
        assert engine.now == 2.0
        engine.run()
        assert fired == [1, 5]

    def test_run_until_rejects_past_deadline(self):
        engine = Engine(start_time=10.0)
        with pytest.raises(ValueError):
            engine.run_until(5.0)

    def test_step_on_empty_returns_false(self):
        assert not Engine().step()

    def test_executed_counter(self):
        engine = Engine()
        engine.schedule_at(1.0, lambda: None)
        engine.run()
        assert engine.executed == 1
