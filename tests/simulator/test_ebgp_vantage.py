"""The EBGP (RouteViews-style) vantage point: the paper's generality claim.

Section II: "our algorithms are general and designed to apply to EBGP as
well". These tests run TAMP and Stemming over a multi-AS EBGP view and
check that the algorithms behave identically: union-weighted pictures
across administrative domains, and cross-vantage localization of a
transit failure.
"""

import pytest

from repro.simulator.workloads import EBGP_VANTAGE_ASES, EbgpVantage
from repro.stemming.stemmer import Stemmer
from repro.tamp.graph import TampGraph
from repro.tamp.prune import prune_flat
from repro.tamp.tree import TampTree
from repro.net.prefix import format_address


@pytest.fixture(scope="module")
def vantage() -> EbgpVantage:
    return EbgpVantage(n_peers=5, n_prefixes=300)


class TestConstruction:
    def test_peer_count_bounds(self):
        with pytest.raises(ValueError):
            EbgpVantage(n_peers=0)
        with pytest.raises(ValueError):
            EbgpVantage(n_peers=99)

    def test_each_peer_full_view(self, vantage):
        assert vantage.rex.route_count() == 5 * 300
        assert vantage.rex.prefix_count() == 300

    def test_paths_start_with_peer_as(self, vantage):
        for index, asn in enumerate(vantage.peer_ases):
            peer = vantage.peer_address(index)
            for route in vantage.rex.rib(peer).routes():
                assert route.attributes.as_path.neighbor_as == asn

    def test_many_neighbor_ases(self, vantage):
        assert vantage.rex.neighbor_as_count() == 5


class TestTampOverEbgp:
    def test_merged_picture_spans_ases(self, vantage):
        trees = [
            TampTree.from_routes(
                format_address(peer),
                vantage.rex.rib(peer).routes(),
                include_prefix_leaves=False,
            )
            for peer in vantage.rex.peers()
        ]
        graph = TampGraph.merge(trees, site_name="route-views")
        pruned = prune_flat(graph)
        # Every vantage AS carries 100% of prefixes on its first edge.
        for asn in vantage.peer_ases:
            carried = set()
            for (parent, child), prefixes in pruned.edges():
                if child == ("as", asn):
                    carried |= prefixes
            assert len(carried) == graph.total_prefixes()


class TestStemmingOverEbgp:
    def test_transit_failure_localized_across_vantages(self, vantage):
        """A failure inside one transit AS is withdrawn at every vantage
        peer; Stemming's strongest component must name that transit AS
        despite the five different first-hop ASes."""
        transit = 200  # middle AS used by slot 0's paths at peer 0
        events = vantage.withdraw_via(transit, now=100.0)
        assert len(events) > 0
        assert len(events.peers()) >= 2  # seen from several vantages
        component = Stemmer().strongest_component(events)
        assert component is not None
        values = {v for ns, v in component.subsequence if ns == "as"}
        assert transit in values

    def test_vantage_local_failure_stays_local(self):
        """Withdrawing one peer's routes localizes at that peer, not at
        any shared AS."""
        vantage = EbgpVantage(n_peers=4, n_prefixes=200)
        peer = vantage.peer_address(0)
        from repro.net.message import BGPUpdate

        doomed = [r.prefix for r in vantage.rex.rib(peer).routes()]
        produced = vantage.rex.observe(
            peer, BGPUpdate.withdraw(doomed), now=50.0
        )
        component = Stemmer().strongest_component(produced)
        assert component.subsequence[0] == ("peer", peer)
        assert component.strength == len(doomed)
