"""Unit tests for the synthetic collector views and event generators."""

import pytest

from repro.collector.rex import RouteExplorer
from repro.net.aspath import ASPath
from repro.net.prefix import Prefix
from repro.simulator.synthetic import (
    BERKELEY_PROFILE,
    ISP_ANON_PROFILE,
    background_churn_events,
    oscillation_events,
    path_exploration_events,
    populate_view,
    replay_into,
    session_reset_events,
)


class TestPopulateView:
    def test_route_count_matches_request(self):
        rex = RouteExplorer()
        populate_view(rex, 5000, ISP_ANON_PROFILE)
        assert rex.route_count() == 5000

    def test_inventory_within_profile(self):
        rex = RouteExplorer()
        populate_view(rex, 20000, ISP_ANON_PROFILE)
        assert rex.nexthop_count() <= ISP_ANON_PROFILE.nexthop_count
        assert rex.neighbor_as_count() <= ISP_ANON_PROFILE.neighbor_as_count
        assert len(rex.peers()) <= ISP_ANON_PROFILE.peer_count
        # At this size the pools should be well exercised.
        assert rex.neighbor_as_count() > 100

    def test_berkeley_profile_small(self):
        rex = RouteExplorer()
        populate_view(rex, 2000, BERKELEY_PROFILE, routes_per_prefix=1.8)
        assert rex.nexthop_count() <= 13
        assert len(rex.peers()) <= 4

    def test_deterministic(self):
        a, b = RouteExplorer(), RouteExplorer()
        populate_view(a, 3000, seed=5)
        populate_view(b, 3000, seed=5)
        assert a.route_count() == b.route_count()
        assert a.nexthop_count() == b.nexthop_count()

    def test_does_not_pollute_event_stream(self):
        rex = RouteExplorer()
        populate_view(rex, 1000)
        assert len(rex.events) == 0

    def test_routes_per_prefix_controls_amplification(self):
        rex = RouteExplorer()
        prefixes = populate_view(rex, 6000, routes_per_prefix=3.0)
        assert len(prefixes) == 2000


class TestSessionResetEvents:
    def test_reset_produces_w_then_a(self):
        rex = RouteExplorer()
        populate_view(rex, 2000)
        peer_index = 0
        events = session_reset_events(rex, peer_index, start=100.0,
                                      convergence_seconds=30.0)
        assert events.withdraw_count() == events.announce_count()
        assert events.withdraw_count() > 0
        assert events.start_time >= 100.0
        assert events.end_time <= 130.0

    def test_withdrawals_carry_attributes(self):
        rex = RouteExplorer()
        populate_view(rex, 500)
        events = session_reset_events(rex, 0, 0.0, 10.0)
        assert all(len(e.attributes.as_path) > 0 for e in events)


class TestPathExploration:
    def test_exploration_produces_multiple_paths(self):
        prefixes = [Prefix.parse("64.0.0.0/24"), Prefix.parse("64.0.1.0/24")]
        alternates = [ASPath.parse("100 300"), ASPath.parse("100 400 500")]
        events = path_exploration_events(
            prefixes, 0, failed_edge=(100, 200), alternates=alternates,
            start=0.0, spread_seconds=60.0,
        )
        # Every prefix is withdrawn once over the failed edge.
        withdrawals = [e for e in events if e.is_withdrawal]
        assert len(withdrawals) == 2
        assert all(
            e.attributes.as_path.sequence[:2] == (100, 200)
            for e in withdrawals
        )
        assert events.announce_count() >= 2


class TestOscillation:
    def test_event_volume(self):
        events = oscillation_events(
            Prefix.parse("4.5.0.0/16"),
            peer_indices=[0, 1],
            paths=[ASPath.parse("1 45"), ASPath.parse("2 45")],
            start=0.0,
            duration=100.0,
            period=10.0,
        )
        # 2 peers x 2 events x 10 cycles.
        assert len(events) == 40
        assert events.prefixes() == {Prefix.parse("4.5.0.0/16")}

    def test_invalid_period(self):
        with pytest.raises(ValueError):
            oscillation_events(
                Prefix.parse("4.5.0.0/16"), [0], [ASPath.parse("1 45")],
                0.0, 10.0, period=0.0,
            )


class TestBackgroundChurn:
    def test_rate(self):
        prefixes = [Prefix.parse("64.0.0.0/24"), Prefix.parse("64.0.1.0/24")]
        events = background_churn_events(
            prefixes, peer_count=4, start=0.0, duration=100.0,
            events_per_second=2.0,
        )
        assert len(events) == 200

    def test_uncorrelated_paths(self):
        prefixes = [Prefix.parse("64.0.0.0/24")]
        events = background_churn_events(
            prefixes, 4, 0.0, 100.0, 5.0, seed=3
        )
        paths = {e.attributes.as_path.sequence for e in events}
        assert len(paths) > 50  # diverse, no dominating structure


class TestSizedStream:
    def _rex(self):
        rex = RouteExplorer()
        populate_view(rex, 2000)
        return rex

    def test_exact_count_and_timerange(self):
        from repro.simulator.synthetic import sized_event_stream

        stream = sized_event_stream(self._rex(), 1500, 423.0)
        assert len(stream) == 1500
        assert stream.timerange == 423.0

    def test_mixture_has_structure_and_noise(self):
        from repro.simulator.synthetic import sized_event_stream
        from repro.stemming.stemmer import Stemmer

        stream = sized_event_stream(self._rex(), 2000, 600.0)
        # The stream must carry findable structure: the strongest
        # component (an oscillating prefix) well above noise, and the
        # leading components jointly explaining a large share.
        result = Stemmer(max_components=8).decompose(stream)
        assert result.components
        assert result.components[0].event_count > 0.05 * len(stream)
        assert result.coverage() > 0.5

    def test_deterministic(self):
        from repro.simulator.synthetic import sized_event_stream

        a = sized_event_stream(self._rex(), 500, 100.0, seed=9)
        b = sized_event_stream(self._rex(), 500, 100.0, seed=9)
        assert [e.timestamp for e in a] == [e.timestamp for e in b]

    def test_rejects_tiny_counts(self):
        import pytest as _pytest

        from repro.simulator.synthetic import sized_event_stream

        with _pytest.raises(ValueError):
            sized_event_stream(self._rex(), 1, 100.0)

    def test_rejects_empty_collector(self):
        import pytest as _pytest

        from repro.simulator.synthetic import sized_event_stream

        with _pytest.raises(ValueError):
            sized_event_stream(RouteExplorer(), 100, 10.0)


class TestReplay:
    def test_replay_applies_collector_semantics(self):
        rex = RouteExplorer()
        populate_view(rex, 300)
        reset = session_reset_events(rex, 0, 10.0, 5.0)
        recorded = replay_into(RouteExplorer(), reset)
        # Announce-before-withdraw per prefix fails augmentation, so the
        # replayed collector records only withdrawals it could augment.
        assert len(recorded) <= len(reset)
        assert recorded.announce_count() == reset.announce_count()
