"""Integration tests for the case-study scenario injectors."""

import pytest

from repro.collector.events import EventKind
from repro.net.prefix import Prefix, parse_address
from repro.simulator.scenarios import (
    backdoor_routes,
    build_med_oscillation_lab,
    community_mistag,
    customer_flap,
    med_oscillation,
    route_leak,
    session_reset,
)
from repro.simulator.workloads import (
    EDGE_13,
    EDGE_200,
    LEAK_PATH_ASES,
    MED_PREFIX,
    NH_BACKDOOR,
    BerkeleySite,
    IspAnonSite,
)


@pytest.fixture
def berkeley() -> BerkeleySite:
    return BerkeleySite(n_prefixes=150)


@pytest.fixture
def isp() -> IspAnonSite:
    return IspAnonSite(n_reflectors=4, n_prefixes=120)


class TestRouteLeak:
    def test_edge13_stops_announcing(self, berkeley):
        """The Figure 7 policy interaction: leaked routes lack the ISP
        community, so 128.32.1.3's import filter drops them and the
        router withdraws — observable as withdrawals at REX."""
        incident = route_leak(berkeley, cycles=1)
        edge13 = parse_address(EDGE_13)
        withdrawals = [
            e
            for e in incident.stream.for_peer(edge13)
            if e.is_withdrawal
        ]
        assert len(withdrawals) >= len(incident.affected_prefixes)

    def test_edge200_moves_to_leak_path(self, berkeley):
        incident = route_leak(berkeley, cycles=1)
        edge200 = parse_address(EDGE_200)
        announcements = [
            e
            for e in incident.stream.for_peer(edge200)
            if not e.is_withdrawal
        ]
        leak_paths = [
            e
            for e in announcements
            if e.attributes.as_path.sequence[: len(LEAK_PATH_ASES)]
            == LEAK_PATH_ASES
        ]
        assert leak_paths, "edge 1.200 never announced the leaked path"

    def test_two_cycles_move_prefixes_twice(self, berkeley):
        incident = route_leak(berkeley, cycles=2)
        edge13 = parse_address(EDGE_13)
        prefix = next(iter(incident.affected_prefixes))
        withdrawals = [
            e
            for e in incident.stream.for_peer(edge13).for_prefix(prefix)
            if e.is_withdrawal
        ]
        assert len(withdrawals) == 2

    def test_restores_converge_back(self, berkeley):
        incident = route_leak(berkeley, cycles=1)
        prefix = next(iter(incident.affected_prefixes))
        best = berkeley.edge200.best_route(prefix)
        # After restoration the best path is via edge13 again (LOCAL_PREF 80).
        assert best.peer == berkeley.edge13.address

    def test_ground_truth(self, berkeley):
        incident = route_leak(berkeley, cycles=1)
        assert incident.true_stem == (11423, 209)
        assert incident.details["cycles"] == 1


class TestBackdoor:
    def test_backdoor_routes_visible_at_rex(self, berkeley):
        incident = backdoor_routes(berkeley)
        assert len(incident.affected_prefixes) == 2
        backdoor_events = incident.stream.for_prefixes(
            incident.affected_prefixes
        )
        assert len(backdoor_events) >= 2
        nexthops = {e.attributes.nexthop for e in backdoor_events}
        assert nexthops == {parse_address(NH_BACKDOOR)}

    def test_backdoor_is_tiny_fraction(self, berkeley):
        incident = backdoor_routes(berkeley)
        assert len(incident.affected_prefixes) / berkeley.n_prefixes < 0.05


class TestSessionReset:
    def test_reset_withdraws_then_reannounces(self, berkeley):
        incident = session_reset(berkeley)
        edge13 = parse_address(EDGE_13)
        stream = incident.stream.for_peer(edge13)
        w = stream.withdraw_count()
        a = stream.announce_count()
        # Everything edge13 carried is withdrawn, then re-announced.
        assert w >= len(set(berkeley.commodity_prefixes()))
        assert a >= w

    def test_reset_is_chatty(self, berkeley):
        """One administrative event produces hundreds of BGP events."""
        incident = session_reset(berkeley)
        assert len(incident.stream) > berkeley.n_prefixes


class TestCommunityMistag:
    def test_split_recorded(self, berkeley):
        incident = community_mistag(berkeley)
        correct = incident.details["correctly_tagged"]
        wrong = incident.details["mistagged"]
        assert wrong / (correct + wrong) == pytest.approx(0.68, abs=0.05)

    def test_stream_only_tagged_routes(self, berkeley):
        incident = community_mistag(berkeley)
        from repro.simulator.workloads import COMM_CENIC_LAAP

        assert all(
            COMM_CENIC_LAAP in e.attributes.communities
            for e in incident.stream
        )


class TestCustomerFlap:
    def test_flap_generates_bounded_churn(self, isp):
        incident = customer_flap(isp, flap_count=5, period=60.0)
        # Low-grade churn: tens of events per flap, not thousands.
        events_per_flap = len(incident.stream) / 5
        assert 4 <= events_per_flap <= 400

    def test_alternates_announced_during_outage(self, isp):
        incident = customer_flap(isp, flap_count=3)
        prefix = next(iter(incident.affected_prefixes))
        paths = {
            e.attributes.as_path.sequence
            for e in incident.stream.for_prefix(prefix)
            if not e.is_withdrawal
        }
        # Both the direct path and ≥1 three-hop alternate appear.
        assert (65001,) in paths
        assert any(len(p) == 3 for p in paths)

    def test_oscillation_spans_full_duration(self, isp):
        incident = customer_flap(isp, flap_count=6, period=60.0)
        assert incident.stream.timerange >= 5 * 60.0 * 0.8

    def test_single_prefix_affected(self, isp):
        incident = customer_flap(isp, flap_count=2)
        assert incident.stream.prefixes() == incident.affected_prefixes


class TestMedOscillation:
    def test_core1_switches_paths(self):
        lab = build_med_oscillation_lab()
        incident = med_oscillation(lab, flap_count=10, period=0.02)
        core1a = lab.cores[0]
        events = incident.stream.for_peer(core1a.address)
        paths = {
            e.attributes.as_path.sequence
            for e in events
            if not e.is_withdrawal
        }
        # core1-a alternates between the AS1 and AS2 paths.
        assert (1, 4545) in paths
        assert (2, 4545) in paths

    def test_single_prefix_dominates(self):
        incident = med_oscillation(flap_count=10, period=0.02)
        assert incident.stream.prefixes() == {MED_PREFIX}
        assert len(incident.stream) > 20

    def test_event_rate_scales_with_flaps(self):
        small = med_oscillation(flap_count=5, period=0.02)
        large = med_oscillation(flap_count=20, period=0.02)
        assert len(large.stream) > 2 * len(small.stream)

    def test_igp_preference_drives_switch(self):
        """When the AS2 route is present, core1-a must select it (its
        nexthop is IGP-closer) — the genuine decision-process mechanism."""
        lab = build_med_oscillation_lab()
        from repro.net.aspath import ASPath
        from repro.net.attributes import PathAttributes
        from repro.net.message import BGPUpdate

        as1 = PathAttributes(
            nexthop=lab.as1_access, as_path=ASPath((1, 4545))
        )
        as2 = PathAttributes(
            nexthop=lab.as2_access, as_path=ASPath((2, 4545)), med=10
        )
        lab.network.inject(
            lab.cores[0], lab.as1_access, BGPUpdate.announce([MED_PREFIX], as1)
        )
        lab.network.inject(
            lab.cores[2], lab.as2_access, BGPUpdate.announce([MED_PREFIX], as2)
        )
        lab.network.run()
        best = lab.cores[0].best_route(MED_PREFIX)
        assert best.attributes.as_path.sequence == (2, 4545)
