"""The Section I war stories, reproduced and detected.

The paper's introduction motivates the work with two famous incident
classes: a small AS announcing the full table with one-hop paths (and
becoming unintended transit for the Internet), and a route leak tripping
a peer's max-prefix safeguard (severing the session entirely). Both are
reproducible with this substrate, and both are detectable with Stemming.
"""

import pytest

from repro.net.prefix import parse_address
from repro.simulator.scenarios import full_table_hijack, max_prefix_leak
from repro.simulator.workloads import BerkeleySite, IspAnonSite
from repro.stemming.stemmer import Stemmer


class TestFullTableHijack:
    @pytest.fixture
    def isp(self):
        return IspAnonSite(n_reflectors=4, n_prefixes=200)

    def test_short_paths_win_everywhere(self, isp):
        """During the hijack every reflector prefers the 1-hop path —
        the decision process computes the catastrophe, as in 1997."""
        incident = full_table_hijack(isp, hold=None)  # hijack standing
        prefix = next(iter(incident.affected_prefixes))
        for router in isp.reflectors:
            best = router.best_route(prefix)
            assert best.attributes.as_path.sequence == (64512,)

    def test_collapse_restores_real_routes(self, isp):
        incident = full_table_hijack(isp)
        prefix = next(iter(incident.affected_prefixes))
        for router in isp.reflectors:
            best = router.best_route(prefix)
            assert best is not None
            assert best.attributes.as_path.sequence != (64512,)

    def test_hijack_affects_entire_table(self, isp):
        incident = full_table_hijack(isp)
        assert len(incident.affected_prefixes) == isp.n_prefixes
        # Far more events than prefixes: take-over plus fail-back at
        # every reflector.
        assert len(incident.stream) >= 2 * isp.n_prefixes

    def test_stemming_names_the_hijacker(self, isp):
        incident = full_table_hijack(isp)
        component = Stemmer().strongest_component(incident.stream)
        values = {v for ns, v in component.subsequence if ns == "as"}
        assert 64512 in values
        # The hijack dominates: most affected prefixes are in the top
        # component.
        assert len(component.prefixes) > 0.9 * isp.n_prefixes


class TestMaxPrefixLeak:
    @pytest.fixture
    def site(self):
        return BerkeleySite(n_prefixes=150)

    def test_limit_trips_and_session_drops(self, site):
        incident = max_prefix_leak(site, leaked_count=500, limit=200)
        assert incident.details["session_down"]

    def test_legitimate_routes_lost_too(self, site):
        """The war story's sting: the safeguard severs *all* connectivity
        to the peer, not just the leaked routes."""
        incident = max_prefix_leak(site, leaked_count=500, limit=200)
        customer_addr = parse_address("169.229.2.1")
        # Nothing survives in the Adj-RIB-In.
        assert len(site.edge222.neighbor(customer_addr).adj_rib_in) == 0
        # The legitimate prefixes are gone from the Loc-RIB.
        legit_lost = incident.details["legitimate_lost"]
        assert legit_lost > 0
        for prefix in list(incident.affected_prefixes)[:20]:
            assert site.edge222.best_route(prefix) is None

    def test_under_limit_no_trip(self, site):
        incident = max_prefix_leak(site, leaked_count=50, limit=200)
        assert not incident.details["session_down"]

    def test_collapse_visible_at_collector(self, site):
        """REX sees the churn: announcements then mass withdrawal."""
        incident = max_prefix_leak(site, leaked_count=500, limit=200)
        assert incident.stream.withdraw_count() > 0
        assert incident.stream.announce_count() > 0
