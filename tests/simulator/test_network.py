"""Integration tests for the simulated network."""

import pytest

from repro.collector.rex import RouteExplorer
from repro.net.aspath import ASPath
from repro.net.attributes import PathAttributes
from repro.net.message import BGPUpdate
from repro.net.prefix import Prefix, parse_address
from repro.simulator.network import Network

P1 = Prefix.parse("192.0.2.0/24")


@pytest.fixture
def net():
    return Network()


class TestConstruction:
    def test_duplicate_name_rejected(self, net):
        net.add_router("a", 100, parse_address("10.0.0.1"))
        with pytest.raises(ValueError):
            net.add_router("a", 100, parse_address("10.0.0.2"))

    def test_duplicate_address_rejected(self, net):
        net.add_router("a", 100, parse_address("10.0.0.1"))
        with pytest.raises(ValueError):
            net.add_router("b", 100, parse_address("10.0.0.1"))

    def test_router_lookup(self, net):
        router = net.add_router("a", 100, parse_address("10.0.0.1"))
        assert net.router("a") is router
        with pytest.raises(KeyError):
            net.router("ghost")


class TestPropagation:
    def test_origination_propagates_over_links(self, net):
        a = net.add_router("a", 100, parse_address("10.0.0.1"))
        b = net.add_router("b", 200, parse_address("10.0.0.2"))
        c = net.add_router("c", 300, parse_address("10.0.0.3"))
        net.connect(a, b)
        net.connect(b, c)
        net.originate(a, [P1])
        net.run()
        assert c.best_route(P1) is not None
        assert c.best_route(P1).attributes.as_path.sequence == (200, 100)

    def test_link_delay_orders_arrival(self, net):
        """A route over a slow link arrives later in virtual time."""
        a = net.add_router("a", 100, parse_address("10.0.0.1"))
        b = net.add_router("b", 200, parse_address("10.0.0.2"))
        net.connect(a, b, delay=5.0)
        net.originate(a, [P1], at=0.0)
        net.run_until(4.0)
        assert b.best_route(P1) is None
        net.run()
        assert b.best_route(P1) is not None

    def test_injection_from_external_peer(self, net):
        r = net.add_router("r", 100, parse_address("10.0.0.1"))
        feed = parse_address("10.9.9.9")
        net.add_external_peer(r, feed, 999)
        net.inject(
            r,
            feed,
            BGPUpdate.announce(
                [P1],
                PathAttributes(nexthop=feed, as_path=ASPath.parse("999 40000")),
            ),
        )
        net.run()
        assert r.best_route(P1) is not None

    def test_updates_to_external_peers_vanish(self, net):
        """Replies toward a scripted peer must not crash the engine."""
        r = net.add_router("r", 100, parse_address("10.0.0.1"))
        feed = parse_address("10.9.9.9")
        net.add_external_peer(r, feed, 999)
        net.originate(r, [P1])
        net.run()  # r announces P1 to the feed address; delivery is a no-op
        assert net.messages_delivered >= 1


class TestSessionOperations:
    def _pair(self, net):
        a = net.add_router("a", 100, parse_address("10.0.0.1"))
        b = net.add_router("b", 200, parse_address("10.0.0.2"))
        net.connect(a, b)
        net.originate(a, [P1])
        net.run()
        return a, b

    def test_fail_session_withdraws(self, net):
        a, b = self._pair(net)
        net.fail_session(a, b.address)
        net.run()
        assert b.best_route(P1) is None
        assert not b.neighbor(a.address).session.is_established

    def test_restore_session_reannounces(self, net):
        a, b = self._pair(net)
        net.fail_session(a, b.address)
        net.run()
        net.restore_session(a, b.address)
        net.run()
        assert b.best_route(P1) is not None


class TestCollectorAttachment:
    def test_collector_sees_best_routes(self, net):
        r = net.add_router("r", 100, parse_address("10.0.0.1"))
        rex = RouteExplorer()
        rex_addr = parse_address("10.255.0.1")
        net.attach_collector(rex, r, rex_addr)
        net.originate(r, [P1])
        net.run()
        assert rex.route_count() == 1
        assert len(rex.events) == 1
        assert rex.events[0].peer == r.address

    def test_collector_address_collision_rejected(self, net):
        r = net.add_router("r", 100, parse_address("10.0.0.1"))
        with pytest.raises(ValueError):
            net.attach_collector(RouteExplorer(), r, r.address)

    def test_collector_sees_withdrawals_with_attributes(self, net):
        a = net.add_router("a", 100, parse_address("10.0.0.1"))
        b = net.add_router("b", 200, parse_address("10.0.0.2"))
        net.connect(a, b)
        rex = RouteExplorer()
        net.attach_collector(rex, b, parse_address("10.255.0.1"))
        net.originate(a, [P1])
        net.run()
        net.fail_session(b, a.address)
        net.run()
        withdrawals = [e for e in rex.events if e.is_withdrawal]
        assert len(withdrawals) == 1
        # Augmentation: withdrawal carries the withdrawn route's path.
        assert withdrawals[0].attributes.as_path.sequence == (100,)
