"""Unit tests for the traffic substrate."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.prefix import Prefix
from repro.traffic.elephants import (
    concentration,
    elephants_of,
    flows_from_volumes,
    zipf_volumes,
)
from repro.traffic.flows import FlowCollector, FlowRecord
from repro.traffic.volume import VolumeTable, edge_volumes, imbalance_report


def prefixes(n: int):
    return [Prefix(0x40000000 + i * 256, 24) for i in range(n)]


class TestFlowRecords:
    def test_negative_counters_rejected(self):
        with pytest.raises(ValueError):
            FlowRecord(0.0, prefixes(1)[0], bytes=-1)

    def test_volume_by_prefix(self):
        collector = FlowCollector()
        p1, p2 = prefixes(2)
        collector.add(FlowRecord(0.0, p1, 100))
        collector.add(FlowRecord(1.0, p1, 50))
        collector.add(FlowRecord(2.0, p2, 10))
        volumes = collector.volume_by_prefix()
        assert volumes == {p1: 150, p2: 10}
        assert collector.total_volume() == 160

    def test_time_windowing(self):
        collector = FlowCollector()
        p = prefixes(1)[0]
        collector.add_all(
            [FlowRecord(t, p, 10) for t in (0.0, 5.0, 10.0)]
        )
        assert collector.volume_by_prefix(start=4.0, end=9.0) == {p: 10}

    def test_volume_by_interface(self):
        collector = FlowCollector()
        p = prefixes(1)[0]
        collector.add(FlowRecord(0.0, p, 100, interface="to-rl-66"))
        collector.add(FlowRecord(0.0, p, 30, interface="to-rl-70"))
        by_iface = collector.volume_by_interface()
        assert by_iface["to-rl-66"] == 100
        assert by_iface["to-rl-70"] == 30


class TestZipfModel:
    def test_total_volume_preserved(self):
        volumes = zipf_volumes(prefixes(100), total_volume=1e6)
        assert sum(volumes.values()) == pytest.approx(1e6)

    def test_elephant_mice_concentration(self):
        """The paper's phenomenon: ~10% of prefixes, most of the traffic."""
        volumes = zipf_volumes(prefixes(1000), alpha=1.1)
        share = concentration(volumes, top_fraction=0.1)
        assert share > 0.6  # strongly concentrated

    def test_higher_alpha_concentrates_more(self):
        flat = zipf_volumes(prefixes(500), alpha=0.5)
        steep = zipf_volumes(prefixes(500), alpha=1.5)
        assert concentration(steep, 0.1) > concentration(flat, 0.1)

    def test_deterministic(self):
        a = zipf_volumes(prefixes(50), seed=3)
        b = zipf_volumes(prefixes(50), seed=3)
        assert a == b

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            zipf_volumes(prefixes(5), alpha=0.0)
        with pytest.raises(ValueError):
            zipf_volumes(prefixes(5), total_volume=0.0)

    def test_empty(self):
        assert zipf_volumes([]) == {}
        assert concentration({}) == 0.0


class TestElephants:
    def test_elephants_carry_share(self):
        volumes = zipf_volumes(prefixes(200), alpha=1.2)
        herd = elephants_of(volumes, volume_share=0.8)
        carried = sum(volumes[p] for p in herd)
        assert carried >= 0.8 * sum(volumes.values())
        assert len(herd) < 0.5 * len(volumes)

    def test_invalid_share(self):
        with pytest.raises(ValueError):
            elephants_of({}, volume_share=0.0)

    def test_empty(self):
        assert elephants_of({}) == set()

    @given(st.integers(10, 100), st.floats(0.5, 0.95))
    def test_elephants_minimal(self, n, share):
        volumes = zipf_volumes(prefixes(n), alpha=1.0, seed=n)
        herd = elephants_of(volumes, volume_share=share)
        total = sum(volumes.values())
        carried = sum(volumes[p] for p in herd)
        assert carried >= share * total
        # Removing the smallest elephant drops below the target share.
        if herd:
            smallest = min(herd, key=lambda p: volumes[p])
            assert carried - volumes[smallest] < share * total


class TestFlowExpansion:
    def test_flows_sum_to_volumes(self):
        volumes = {p: 1000.0 for p in prefixes(5)}
        records = list(flows_from_volumes(volumes, duration=60.0))
        assert len(records) == 25
        collector = FlowCollector()
        collector.add_all(records)
        for p in prefixes(5):
            assert collector.volume_by_prefix()[p] == 1000


class TestVolumeTable:
    def test_exact_lookup(self):
        p = prefixes(1)[0]
        table = VolumeTable({p: 5.0})
        assert table.volume(p) == 5.0
        assert table.total() == 5.0

    def test_longest_match_fallback(self):
        covering = Prefix.parse("64.0.0.0/16")
        table = VolumeTable({covering: 7.0})
        assert table.volume(Prefix.parse("64.0.1.0/24")) == 7.0

    def test_miss_is_zero(self):
        table = VolumeTable({})
        assert table.volume(prefixes(1)[0]) == 0.0


class TestEdgeVolumes:
    def _graph(self):
        from repro.tamp.graph import TampGraph

        graph = TampGraph()
        p1, p2, p3 = prefixes(3)
        for p in (p1, p2):
            graph.add_prefix(("as", 1), ("as", 2), p)
        graph.add_prefix(("as", 1), ("as", 3), p3)
        return graph, (p1, p2, p3)

    def test_edge_volume_sums_prefix_volumes(self):
        graph, (p1, p2, p3) = self._graph()
        table = VolumeTable({p1: 10.0, p2: 20.0, p3: 5.0})
        by_edge = edge_volumes(graph, table)
        assert by_edge[(("as", 1), ("as", 2))] == 30.0
        assert by_edge[(("as", 1), ("as", 3))] == 5.0

    def test_imbalance_report(self):
        """Even prefix split, uneven traffic split — the D.2 insight."""
        graph, (p1, p2, p3) = self._graph()
        table = VolumeTable({p1: 1000.0, p2: 0.0, p3: 1.0})
        rows = imbalance_report(
            graph, table, [(("as", 1), ("as", 2)), (("as", 1), ("as", 3))]
        )
        heavy, light = rows
        assert heavy["prefix_share"] == pytest.approx(2 / 3)
        assert heavy["volume_share"] == pytest.approx(1000 / 1001)
        assert light["volume_share"] == pytest.approx(1 / 1001)
