"""Unit tests for Adj-RIB-In and Loc-RIB."""

from repro.bgp.rib import AdjRibIn, LocRib, Route
from repro.net.aspath import ASPath
from repro.net.attributes import PathAttributes
from repro.net.prefix import Prefix, parse_address


PEER = parse_address("128.32.1.3")
OTHER_PEER = parse_address("128.32.1.200")


def attrs(path: str = "11423 209", nexthop: str = "128.32.0.66") -> PathAttributes:
    return PathAttributes(
        nexthop=parse_address(nexthop), as_path=ASPath.parse(path)
    )


P1 = Prefix.parse("192.96.10.0/24")
P2 = Prefix.parse("12.2.41.0/24")


class TestAdjRibIn:
    def test_announce_and_get(self):
        rib = AdjRibIn(PEER)
        rib.announce(P1, attrs())
        assert rib.get(P1) == attrs()
        assert P1 in rib
        assert len(rib) == 1

    def test_announce_returns_displaced(self):
        rib = AdjRibIn(PEER)
        assert rib.announce(P1, attrs()) is None
        displaced = rib.announce(P1, attrs(path="11423 209 701"))
        assert displaced == attrs()

    def test_withdraw_returns_attributes(self):
        rib = AdjRibIn(PEER)
        rib.announce(P1, attrs())
        assert rib.withdraw(P1) == attrs()
        assert P1 not in rib

    def test_withdraw_unknown_returns_none(self):
        rib = AdjRibIn(PEER)
        assert rib.withdraw(P1) is None

    def test_clear_returns_routes_with_peer(self):
        rib = AdjRibIn(PEER)
        rib.announce(P1, attrs())
        rib.announce(P2, attrs(path="11423 7018"))
        removed = rib.clear()
        assert len(removed) == 2
        assert all(r.peer == PEER for r in removed)
        assert len(rib) == 0

    def test_routes_iteration(self):
        rib = AdjRibIn(PEER)
        rib.announce(P1, attrs())
        routes = list(rib.routes())
        assert routes == [Route(P1, attrs(), PEER)]
        assert list(rib.prefixes()) == [P1]


class TestLocRib:
    def test_candidates_tracked_per_peer(self):
        rib = LocRib()
        rib.add_candidate(Route(P1, attrs(), PEER))
        rib.add_candidate(Route(P1, attrs(path="11423 701"), OTHER_PEER))
        assert len(rib.candidates(P1)) == 2
        assert rib.route_count == 2

    def test_candidate_replacement_same_peer(self):
        rib = LocRib()
        rib.add_candidate(Route(P1, attrs(), PEER))
        rib.add_candidate(Route(P1, attrs(path="11423 701"), PEER))
        assert len(rib.candidates(P1)) == 1

    def test_remove_candidate(self):
        rib = LocRib()
        route = Route(P1, attrs(), PEER)
        rib.add_candidate(route)
        assert rib.remove_candidate(P1, PEER) == route
        assert rib.candidates(P1) == []
        assert rib.remove_candidate(P1, PEER) is None

    def test_best_tracking(self):
        rib = LocRib()
        route = Route(P1, attrs(), PEER)
        rib.add_candidate(route)
        assert rib.set_best(route) is None
        assert rib.best(P1) == route
        assert len(rib) == 1
        assert rib.clear_best(P1) == route
        assert rib.best(P1) is None

    def test_set_best_returns_previous(self):
        rib = LocRib()
        first = Route(P1, attrs(), PEER)
        second = Route(P1, attrs(path="11423 701"), OTHER_PEER)
        rib.set_best(first)
        assert rib.set_best(second) == first

    def test_iteration(self):
        rib = LocRib()
        a = Route(P1, attrs(), PEER)
        b = Route(P2, attrs(path="11423 7018"), OTHER_PEER)
        for route in (a, b):
            rib.add_candidate(route)
            rib.set_best(route)
        assert set(rib.best_routes()) == {a, b}
        assert set(rib.all_routes()) == {a, b}
        assert set(rib.prefixes()) == {P1, P2}
