"""Integration tests for the BGP speaker.

These wire small router topologies by hand and pump messages until
quiescence — a miniature version of what :mod:`repro.simulator` automates.
"""

from collections import deque

import pytest

from repro.bgp.errors import BGPError
from repro.bgp.policy import (
    MatchASInPath,
    Policy,
    RouteMap,
    RouteMapClause,
    SetLocalPref,
)
from repro.bgp.router import BGPRouter
from repro.net.message import BGPUpdate
from repro.net.prefix import Prefix, parse_address


def addr(text: str) -> int:
    return parse_address(text)


class Mesh:
    """A hand-wired set of routers with synchronous message delivery."""

    def __init__(self) -> None:
        self.routers: dict[int, BGPRouter] = {}

    def add(self, name: str, asn: int, address: str, **kwargs) -> BGPRouter:
        router = BGPRouter(
            name=name,
            asn=asn,
            router_id=len(self.routers) + 1,
            address=addr(address),
            **kwargs,
        )
        self.routers[router.address] = router
        return router

    def connect(self, a: BGPRouter, b: BGPRouter, **kwargs) -> None:
        """Create the peering in both directions and bring it up."""
        a_policy = kwargs.pop("a_policy", None)
        b_policy = kwargs.pop("b_policy", None)
        a_client = kwargs.pop("a_sees_client", False)
        b_client = kwargs.pop("b_sees_client", False)
        a.add_neighbor(
            b.address, b.asn, b.router_id, policy=a_policy,
            is_rr_client=a_client, **kwargs
        )
        b.add_neighbor(
            a.address, a.asn, a.router_id, policy=b_policy,
            is_rr_client=b_client, **kwargs
        )
        self.pump(a.session_up(b.address), a)
        self.pump(b.session_up(a.address), b)

    def pump(self, outgoing, sender: BGPRouter) -> int:
        """Deliver messages until the network is quiescent.

        Returns the number of UPDATE messages delivered.
        """
        queue = deque((sender.address, to, update) for to, update in outgoing)
        delivered = 0
        while queue:
            frm, to, update = queue.popleft()
            delivered += 1
            receiver = self.routers[to]
            for nxt_to, nxt_update in receiver.receive_update(frm, update):
                queue.append((to, nxt_to, nxt_update))
        return delivered

    def originate(self, router: BGPRouter, prefix: str, **kwargs) -> int:
        return self.pump(
            router.originate(Prefix.parse(prefix), **kwargs), router
        )


P1 = Prefix.parse("192.0.2.0/24")
P2 = Prefix.parse("198.51.100.0/24")


@pytest.fixture
def ebgp_chain():
    """AS100 -- AS200 -- AS300 in a line."""
    mesh = Mesh()
    r1 = mesh.add("r1", 100, "10.0.0.1")
    r2 = mesh.add("r2", 200, "10.0.0.2")
    r3 = mesh.add("r3", 300, "10.0.0.3")
    mesh.connect(r1, r2)
    mesh.connect(r2, r3)
    return mesh, r1, r2, r3


class TestPropagation:
    def test_route_propagates_along_chain(self, ebgp_chain):
        mesh, r1, r2, r3 = ebgp_chain
        mesh.originate(r1, "192.0.2.0/24")
        assert r2.best_route(P1) is not None
        assert r3.best_route(P1) is not None
        # AS path accumulates: r3 sees 200 100.
        assert r3.best_route(P1).attributes.as_path.sequence == (200, 100)

    def test_nexthop_rewritten_at_each_ebgp_hop(self, ebgp_chain):
        mesh, r1, r2, r3 = ebgp_chain
        mesh.originate(r1, "192.0.2.0/24")
        assert r2.best_route(P1).attributes.nexthop == r1.address
        assert r3.best_route(P1).attributes.nexthop == r2.address

    def test_withdrawal_propagates(self, ebgp_chain):
        mesh, r1, r2, r3 = ebgp_chain
        mesh.originate(r1, "192.0.2.0/24")
        mesh.pump(r1.withdraw_origination(P1), r1)
        assert r2.best_route(P1) is None
        assert r3.best_route(P1) is None

    def test_no_echo_back_to_teacher(self, ebgp_chain):
        mesh, r1, r2, r3 = ebgp_chain
        mesh.originate(r1, "192.0.2.0/24")
        # r2 must not have announced P1 back to r1.
        assert P1 not in r2.neighbor(r1.address).adj_rib_out

    def test_loop_prevention(self):
        """A route whose path already contains the receiver's AS is dropped."""
        mesh = Mesh()
        r1 = mesh.add("r1", 100, "10.0.0.1")
        r2 = mesh.add("r2", 200, "10.0.0.2")
        r3 = mesh.add("r3", 100, "10.0.0.3")  # same AS as r1, EBGP to r2
        mesh.connect(r1, r2)
        mesh.connect(r2, r3)
        mesh.originate(r1, "192.0.2.0/24")
        # r3 is in AS 100; the path 200 100 contains its own AS.
        assert r3.best_route(P1) is None


class TestIbgpRules:
    def test_ibgp_learned_not_relayed_to_ibgp(self):
        """Without a route reflector, IBGP routes do not transit IBGP."""
        mesh = Mesh()
        ext = mesh.add("ext", 999, "10.9.9.9")
        a = mesh.add("a", 100, "10.0.0.1")
        b = mesh.add("b", 100, "10.0.0.2")
        c = mesh.add("c", 100, "10.0.0.3")
        mesh.connect(ext, a)
        mesh.connect(a, b)
        mesh.connect(b, c)
        mesh.originate(ext, "192.0.2.0/24")
        assert a.best_route(P1) is not None
        assert b.best_route(P1) is not None  # EBGP-learned at a, relayed
        assert c.best_route(P1) is None  # b may not relay IBGP-learned

    def test_route_reflector_relays_to_clients(self):
        mesh = Mesh()
        ext = mesh.add("ext", 999, "10.9.9.9")
        edge = mesh.add("edge", 100, "10.0.0.1")
        rr = mesh.add("rr", 100, "10.0.0.2", route_reflector=True)
        client = mesh.add("client", 100, "10.0.0.3")
        mesh.connect(ext, edge)
        mesh.connect(edge, rr)
        mesh.connect(rr, client, a_sees_client=True)
        mesh.originate(ext, "192.0.2.0/24")
        route = client.best_route(P1)
        assert route is not None
        # Reflection stamps ORIGINATOR_ID and CLUSTER_LIST.
        assert route.attributes.originator_id == edge.router_id
        assert rr.cluster_id in route.attributes.cluster_list

    def test_reflector_loop_prevention_by_cluster_id(self):
        """A route that already passed this cluster is not re-accepted."""
        mesh = Mesh()
        rr = mesh.add("rr", 100, "10.0.0.2", route_reflector=True)
        client = mesh.add("client", 100, "10.0.0.3")
        mesh.connect(rr, client, a_sees_client=True)
        # Handcraft an update carrying rr's own cluster id.
        from repro.net.aspath import ASPath
        from repro.net.attributes import PathAttributes

        attrs = PathAttributes(
            nexthop=addr("10.9.9.9"),
            as_path=ASPath.parse("999"),
            originator_id=77,
            cluster_list=(rr.cluster_id,),
        )
        rr.receive_update(client.address, BGPUpdate.announce([P1], attrs))
        assert rr.best_route(P1) is None

    def test_nexthop_self(self):
        mesh = Mesh()
        ext = mesh.add("ext", 999, "10.9.9.9")
        edge = mesh.add("edge", 100, "10.0.0.1")
        core = mesh.add("core", 100, "10.0.0.2")
        mesh.connect(ext, edge)
        edge.add_neighbor(
            core.address, core.asn, core.router_id, nexthop_self=True
        )
        core.add_neighbor(edge.address, edge.asn, edge.router_id)
        mesh.pump(edge.session_up(core.address), edge)
        mesh.pump(core.session_up(edge.address), core)
        mesh.originate(ext, "192.0.2.0/24")
        assert core.best_route(P1).attributes.nexthop == edge.address


class TestPolicyInteraction:
    def test_import_filter_blocks_route(self):
        deny_999 = Policy(
            import_map=RouteMap(
                "deny-999",
                (
                    RouteMapClause(permit=False, matches=(MatchASInPath(999),)),
                    RouteMapClause(permit=True),
                ),
            )
        )
        mesh = Mesh()
        ext = mesh.add("ext", 999, "10.9.9.9")
        r = mesh.add("r", 100, "10.0.0.1")
        ext.add_neighbor(r.address, r.asn, r.router_id)
        r.add_neighbor(ext.address, ext.asn, ext.router_id, policy=deny_999)
        mesh.pump(ext.session_up(r.address), ext)
        mesh.pump(r.session_up(ext.address), r)
        mesh.originate(ext, "192.0.2.0/24")
        assert r.best_route(P1) is None

    def test_local_pref_steers_selection(self):
        """Two paths to the same prefix; import policy prefers one."""
        prefer = Policy(
            import_map=RouteMap(
                "prefer", (RouteMapClause(actions=(SetLocalPref(200),)),)
            )
        )
        mesh = Mesh()
        src = mesh.add("src", 999, "10.9.9.9")
        left = mesh.add("left", 500, "10.5.5.5")
        right = mesh.add("right", 600, "10.6.6.6")
        sink = mesh.add("sink", 100, "10.0.0.1")
        mesh.connect(src, left)
        mesh.connect(src, right)
        # sink prefers routes from right (AS 600) via local-pref.
        sink.add_neighbor(left.address, left.asn, left.router_id)
        left.add_neighbor(sink.address, sink.asn, sink.router_id)
        sink.add_neighbor(
            right.address, right.asn, right.router_id, policy=prefer
        )
        right.add_neighbor(sink.address, sink.asn, sink.router_id)
        for a, b in [(sink, left), (left, sink), (sink, right), (right, sink)]:
            mesh.pump(a.session_up(b.address), a)
        mesh.originate(src, "192.0.2.0/24")
        best = sink.best_route(P1)
        assert best.attributes.local_pref == 200
        assert best.attributes.as_path.neighbor_as == 600

    def test_max_prefix_teardown(self):
        mesh = Mesh()
        leaker = mesh.add("leaker", 999, "10.9.9.9")
        victim = mesh.add("victim", 100, "10.0.0.1")
        leaker.add_neighbor(victim.address, victim.asn, victim.router_id)
        victim.add_neighbor(
            leaker.address, leaker.asn, leaker.router_id, max_prefixes=3
        )
        mesh.pump(leaker.session_up(victim.address), leaker)
        mesh.pump(victim.session_up(leaker.address), victim)
        for i in range(4):
            mesh.originate(leaker, f"10.{i}.0.0/16")
        # Victim's session dropped; all leaked routes flushed.
        assert not victim.neighbor(leaker.address).session.is_established
        assert victim.table_size() == 0


class TestSessionChurn:
    def test_session_down_withdraws_learned_routes(self, ebgp_chain):
        mesh, r1, r2, r3 = ebgp_chain
        mesh.originate(r1, "192.0.2.0/24")
        mesh.originate(r1, "198.51.100.0/24")
        mesh.pump(r2.session_down(r1.address), r2)
        assert r2.best_route(P1) is None
        assert r3.best_route(P1) is None
        assert r3.best_route(P2) is None

    def test_session_restore_reannounces(self, ebgp_chain):
        mesh, r1, r2, r3 = ebgp_chain
        mesh.originate(r1, "192.0.2.0/24")
        mesh.pump(r2.session_down(r1.address), r2)
        r1.session_down(r2.address)
        # Re-establish: both sides come up, then tables are exchanged.
        out1 = r1.session_up(r2.address)
        out2 = r2.session_up(r1.address)
        mesh.pump(out1, r1)
        mesh.pump(out2, r2)
        assert r2.best_route(P1) is not None
        assert r3.best_route(P1) is not None

    def test_failover_to_alternate_path(self):
        """Dual-homed sink falls back when the primary session dies."""
        mesh = Mesh()
        src = mesh.add("src", 999, "10.9.9.9")
        primary = mesh.add("primary", 500, "10.5.5.5")
        backup = mesh.add("backup", 600, "10.6.6.6")
        sink = mesh.add("sink", 100, "10.0.0.1")
        mesh.connect(src, primary)
        mesh.connect(src, backup)
        prefer = Policy(
            import_map=RouteMap(
                "prefer", (RouteMapClause(actions=(SetLocalPref(200),)),)
            )
        )
        sink.add_neighbor(
            primary.address, primary.asn, primary.router_id, policy=prefer
        )
        primary.add_neighbor(sink.address, sink.asn, sink.router_id)
        sink.add_neighbor(backup.address, backup.asn, backup.router_id)
        backup.add_neighbor(sink.address, sink.asn, sink.router_id)
        for a, b in [
            (sink, primary),
            (primary, sink),
            (sink, backup),
            (backup, sink),
        ]:
            mesh.pump(a.session_up(b.address), a)
        mesh.originate(src, "192.0.2.0/24")
        assert sink.best_route(P1).attributes.as_path.neighbor_as == 500
        mesh.pump(sink.session_down(primary.address), sink)
        assert sink.best_route(P1).attributes.as_path.neighbor_as == 600


class TestSequentialMedDisagreement:
    def test_same_candidates_different_order_different_best(self):
        """Two routers in one AS, fed identical candidate sets in
        different arrival orders, steadily disagree on the best path
        when running the old-IOS sequential MED evaluation — the RFC
        3345 lack-of-total-ordering at the speaker level."""
        from repro.bgp.decision import DecisionProcess
        from repro.net.aspath import ASPath
        from repro.net.attributes import PathAttributes
        from repro.net.prefix import Prefix

        costs = {
            addr("10.0.0.1"): 1,
            addr("10.0.0.2"): 2,
            addr("10.0.0.3"): 3,
        }

        def build(name, address):
            router = BGPRouter(
                name,
                100,
                int(address[-1]),
                addr(address),
                decision=DecisionProcess(
                    sequential_med=True,
                    igp_cost=lambda nh: costs.get(nh, 0),
                ),
            )
            for i in range(1, 4):
                router.add_neighbor(addr(f"10.1.0.{i}"), 100, 100 + i)
                router.neighbor(addr(f"10.1.0.{i}")).session.establish_directly(0.0)
            return router

        prefix = Prefix.parse("4.5.0.0/16")
        x = PathAttributes(nexthop=addr("10.0.0.1"),
                           as_path=ASPath.parse("1 9"), med=10)
        y = PathAttributes(nexthop=addr("10.0.0.2"),
                           as_path=ASPath.parse("2 9"))
        z = PathAttributes(nexthop=addr("10.0.0.3"),
                           as_path=ASPath.parse("1 9"), med=5)
        first = build("r-xyz", "10.2.0.1")
        second = build("r-zyx", "10.2.0.2")
        for router, order in ((first, (x, y, z)), (second, (z, y, x))):
            for i, attrs in enumerate(order, start=1):
                router.receive_update(
                    addr(f"10.1.0.{i if router is first else 4 - i}"),
                    BGPUpdate.announce([prefix], attrs),
                )
        best_first = first.best_route(prefix).attributes
        best_second = second.best_route(prefix).attributes
        assert best_first != best_second
        # One lands on the MED winner of AS 1, the other on the IGP
        # nearest — both locally defensible, globally inconsistent.
        assert {best_first.nexthop, best_second.nexthop} == {
            addr("10.0.0.1"),
            addr("10.0.0.3"),
        }


class TestErrors:
    def test_duplicate_neighbor_rejected(self):
        router = BGPRouter("r", 100, 1, addr("10.0.0.1"))
        router.add_neighbor(addr("10.0.0.2"), 200, 2)
        with pytest.raises(BGPError):
            router.add_neighbor(addr("10.0.0.2"), 200, 2)

    def test_unknown_neighbor_rejected(self):
        router = BGPRouter("r", 100, 1, addr("10.0.0.1"))
        with pytest.raises(BGPError):
            router.neighbor(addr("10.0.0.2"))

    def test_withdraw_unoriginated_rejected(self):
        router = BGPRouter("r", 100, 1, addr("10.0.0.1"))
        with pytest.raises(BGPError):
            router.withdraw_origination(P1)

    def test_update_on_down_session_dropped(self):
        router = BGPRouter("r", 100, 1, addr("10.0.0.1"))
        router.add_neighbor(addr("10.0.0.2"), 200, 2)
        from repro.net.aspath import ASPath
        from repro.net.attributes import PathAttributes

        attrs = PathAttributes(
            nexthop=addr("10.0.0.2"), as_path=ASPath.parse("200")
        )
        out = router.receive_update(
            addr("10.0.0.2"), BGPUpdate.announce([P1], attrs)
        )
        assert out == []
        assert router.best_route(P1) is None
