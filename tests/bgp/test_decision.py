"""Unit and property tests for the BGP decision process."""

from hypothesis import given
from hypothesis import strategies as st

from repro.bgp.decision import DecisionProcess, RouteSource
from repro.bgp.rib import Route
from repro.net.aspath import ASPath
from repro.net.attributes import Origin, PathAttributes
from repro.net.prefix import Prefix, parse_address

PREFIX = Prefix.parse("4.5.0.0/16")


def source(
    path: str = "100 200",
    local_pref: int = 100,
    med=None,
    origin: Origin = Origin.IGP,
    is_ebgp: bool = False,
    router_id: int = 1,
    address: int = 1,
    nexthop: str = "10.0.0.1",
) -> RouteSource:
    attrs = PathAttributes(
        nexthop=parse_address(nexthop),
        as_path=ASPath.parse(path),
        origin=origin,
        local_pref=local_pref,
        med=med,
    )
    return RouteSource(
        route=Route(PREFIX, attrs, peer=address),
        is_ebgp=is_ebgp,
        peer_router_id=router_id,
        peer_address=address,
    )


class TestEliminationOrder:
    def test_empty_candidates(self):
        assert DecisionProcess().select([]) is None

    def test_single_candidate(self):
        only = source()
        assert DecisionProcess().select([only]) is only

    def test_local_pref_dominates_path_length(self):
        longer = source(path="1 2 3 4", local_pref=200, router_id=1, address=1)
        shorter = source(path="1 2", local_pref=100, router_id=2, address=2)
        assert DecisionProcess().select([shorter, longer]) is longer

    def test_path_length_dominates_origin(self):
        short_incomplete = source(
            path="1 2", origin=Origin.INCOMPLETE, router_id=1, address=1
        )
        long_igp = source(path="1 2 3", origin=Origin.IGP, router_id=2, address=2)
        selected = DecisionProcess().select([long_igp, short_incomplete])
        assert selected is short_incomplete

    def test_origin_preference(self):
        igp = source(origin=Origin.IGP, router_id=1, address=1)
        egp = source(origin=Origin.EGP, router_id=2, address=2)
        incomplete = source(origin=Origin.INCOMPLETE, router_id=3, address=3)
        assert DecisionProcess().select([incomplete, egp, igp]) is igp

    def test_ebgp_preferred_over_ibgp(self):
        ibgp = source(is_ebgp=False, router_id=1, address=1)
        ebgp = source(is_ebgp=True, router_id=2, address=2)
        assert DecisionProcess().select([ibgp, ebgp]) is ebgp

    def test_igp_cost_tiebreak(self):
        costs = {
            parse_address("10.0.0.1"): 10,
            parse_address("10.0.0.2"): 5,
        }
        process = DecisionProcess(igp_cost=lambda nh: costs.get(nh))
        near = source(nexthop="10.0.0.2", router_id=1, address=1)
        far = source(nexthop="10.0.0.1", router_id=2, address=2)
        assert process.select([far, near]) is near

    def test_unreachable_nexthop_disqualifies(self):
        process = DecisionProcess(
            igp_cost=lambda nh: None if nh == parse_address("10.0.0.1") else 0
        )
        unreachable = source(nexthop="10.0.0.1", local_pref=500)
        reachable = source(nexthop="10.0.0.2", router_id=2, address=2)
        assert process.select([unreachable, reachable]) is reachable
        assert process.select([unreachable]) is None

    def test_router_id_final_tiebreak(self):
        a = source(router_id=5, address=9)
        b = source(router_id=3, address=7)
        assert DecisionProcess().select([a, b]) is b

    def test_peer_address_breaks_router_id_tie(self):
        a = source(router_id=3, address=9)
        b = source(router_id=3, address=7)
        assert DecisionProcess().select([a, b]) is b


class TestMED:
    def test_med_compared_within_same_neighbor_as(self):
        low = source(path="100 200", med=10, router_id=1, address=1)
        high = source(path="100 300", med=50, router_id=2, address=2)
        assert DecisionProcess().select([high, low]) is low

    def test_med_not_compared_across_neighbor_as(self):
        # Different neighbor AS: MED is ignored; router-id decides.
        a = source(path="100 200", med=50, router_id=1, address=1)
        b = source(path="300 200", med=10, router_id=2, address=2)
        assert DecisionProcess().select([a, b]) is a

    def test_always_compare_med(self):
        a = source(path="100 200", med=50, router_id=1, address=1)
        b = source(path="300 200", med=10, router_id=2, address=2)
        process = DecisionProcess(compare_med_always=True)
        assert process.select([a, b]) is b

    def test_missing_med_best_by_default(self):
        with_med = source(path="100 200", med=10, router_id=1, address=1)
        without = source(path="100 300", med=None, router_id=2, address=2)
        assert DecisionProcess().select([with_med, without]) is without

    def test_missing_med_as_worst(self):
        with_med = source(path="100 200", med=10, router_id=1, address=1)
        without = source(path="100 300", med=None, router_id=2, address=2)
        process = DecisionProcess(med_missing_as_worst=True)
        assert process.select([with_med, without]) is with_med

    def test_pairwise_elimination_is_order_independent(self):
        """The default mode considers all pairs, so permuting the
        candidate list never changes the winner."""
        import itertools

        a = source(path="1 9", med=10, router_id=1, address=1)
        b = source(path="2 9", med=0, router_id=2, address=2)
        c = source(path="1 9", med=5, router_id=3, address=3)
        process = DecisionProcess(deterministic_med=False)
        winners = {
            process.select(list(perm)).peer_address
            for perm in itertools.permutations([a, b, c])
        }
        assert len(winners) == 1

    def test_deterministic_med_is_order_independent(self):
        import itertools

        a = source(path="1 9", med=10, router_id=1, address=1)
        b = source(path="2 9", med=0, router_id=2, address=2)
        c = source(path="1 9", med=5, router_id=3, address=3)
        process = DecisionProcess(deterministic_med=True)
        winners = {
            process.select(list(perm)).peer_address
            for perm in itertools.permutations([a, b, c])
        }
        assert len(winners) == 1

    def test_med_group_elimination(self):
        """With deterministic MED, an AS's MED-worse route cannot win even
        if it would beat the other group's winner on a later step."""
        worse_med_better_igp = source(
            path="1 9", med=10, router_id=1, address=1
        )
        best_med = source(path="1 9", med=5, router_id=2, address=2)
        process = DecisionProcess(deterministic_med=True)
        selected = process.select([worse_med_better_igp, best_med])
        assert selected is best_med


class TestSequentialMed:
    """The genuinely order-dependent old-IOS mode — the RFC 3345 engine."""

    def _triple(self, process_costs):
        # X and Z share neighbor AS 1 (MED-comparable); Y is from AS 2.
        # IGP costs: X nearest, then Y, then Z. MED: Z beats X.
        x = source(path="1 9", med=10, router_id=1, address=1,
                   nexthop="10.0.0.1")
        y = source(path="2 9", med=None, router_id=2, address=2,
                   nexthop="10.0.0.2")
        z = source(path="1 9", med=5, router_id=3, address=3,
                   nexthop="10.0.0.3")
        return x, y, z

    def _process(self):
        costs = {
            parse_address("10.0.0.1"): 1,
            parse_address("10.0.0.2"): 2,
            parse_address("10.0.0.3"): 3,
        }
        return DecisionProcess(
            sequential_med=True, igp_cost=lambda nh: costs.get(nh)
        )

    def test_order_changes_the_winner(self):
        """The non-transitive cycle: X beats Y (IGP), Y beats Z (IGP),
        Z beats X (MED). A running-best walk crowns whoever benefits
        from the arrival order — no total ordering exists."""
        process = self._process()
        x, y, z = self._triple(process)
        winner_a = process.select([x, y, z])  # x beats y; z beats x -> z
        winner_b = process.select([z, y, x])  # y beats z; x beats y -> x
        assert winner_a is not winner_b
        assert {winner_a.peer_address, winner_b.peer_address} == {1, 3}

    def test_cycle_is_real(self):
        process = self._process()
        x, y, z = self._triple(process)
        assert process._pairwise_better(x, y)  # IGP 1 < 2
        assert process._pairwise_better(y, z)  # IGP 2 < 3
        assert process._pairwise_better(z, x)  # MED 5 < 10

    def test_single_candidate(self):
        process = self._process()
        x, _, _ = self._triple(process)
        assert process.select([x]) is x

    def test_grouped_mode_breaks_the_cycle(self):
        """The deterministic-med fix: grouping eliminates X (MED-worse
        within AS 1) up front, restoring one winner for every order."""
        import itertools

        costs = {
            parse_address("10.0.0.1"): 1,
            parse_address("10.0.0.2"): 2,
            parse_address("10.0.0.3"): 3,
        }
        process = DecisionProcess(
            deterministic_med=True, igp_cost=lambda nh: costs.get(nh)
        )
        x, y, z = self._triple(process)
        winners = {
            process.select(list(perm)).peer_address
            for perm in itertools.permutations([x, y, z])
        }
        assert len(winners) == 1


class TestReflectionTiebreaks:
    """RFC 4456 §9: reflected routes tie-break on ORIGINATOR_ID and
    CLUSTER_LIST, not on the advertising reflector's router id — the rule
    that keeps a reflector mesh from oscillating (see the simulator's
    scenario tests for the end-to-end version)."""

    def _reflected(self, originator, cluster_list, router_id, address):
        attrs = PathAttributes(
            nexthop=parse_address("10.0.0.9"),
            as_path=ASPath.parse("100 200"),
            originator_id=originator,
            cluster_list=cluster_list,
        )
        return RouteSource(
            route=Route(PREFIX, attrs, peer=address),
            is_ebgp=False,
            peer_router_id=router_id,
            peer_address=address,
        )

    def test_originator_id_beats_peer_router_id(self):
        # Reflector with id 1 relays a route originated by id 90; the
        # direct candidate originated by id 50 must win despite the
        # reflector's lower router id.
        via_reflector = self._reflected(90, (7,), router_id=1, address=1)
        direct = self._reflected(50, (), router_id=60, address=60)
        assert DecisionProcess().select([via_reflector, direct]) is direct

    def test_shorter_cluster_list_wins(self):
        long_path = self._reflected(50, (7, 8), router_id=1, address=1)
        short_path = self._reflected(50, (7,), router_id=2, address=2)
        assert DecisionProcess().select([long_path, short_path]) is short_path

    def test_symmetric_reflection_has_global_winner(self):
        """Two reflectors exchanging reflections of each other's client
        routes must agree on a winner (no mutual preference)."""
        # What reflector A sees: its own client route + B's reflection.
        a_own = self._reflected(100, (), router_id=100, address=100)
        b_reflection = self._reflected(200, (2,), router_id=2, address=2)
        # What reflector B sees: its own client route + A's reflection.
        b_own = self._reflected(200, (), router_id=200, address=200)
        a_reflection = self._reflected(100, (1,), router_id=1, address=1)
        process = DecisionProcess()
        a_choice = process.select([a_own, b_reflection])
        b_choice = process.select([b_own, a_reflection])
        # Both must prefer the route originated at 100.
        assert a_choice.route.attributes.originator_id == 100
        assert b_choice.route.attributes.originator_id == 100


class TestProperties:
    @st.composite
    def candidate_lists(draw):
        n = draw(st.integers(min_value=1, max_value=6))
        sources = []
        for i in range(n):
            sources.append(
                source(
                    path=draw(
                        st.sampled_from(["1 9", "2 9", "1 2 9", "3 9", "2 3 9"])
                    ),
                    local_pref=draw(st.sampled_from([80, 100, 200])),
                    med=draw(st.sampled_from([None, 0, 10, 50])),
                    origin=draw(st.sampled_from(list(Origin))),
                    is_ebgp=draw(st.booleans()),
                    router_id=i + 1,
                    address=i + 1,
                )
            )
        return sources

    @given(candidate_lists())
    def test_selection_total(self, candidates):
        """A winner always exists when any candidate is usable."""
        selected = DecisionProcess().select(candidates)
        assert selected in candidates

    @given(candidate_lists())
    def test_winner_has_maximal_local_pref(self, candidates):
        selected = DecisionProcess().select(candidates)
        best_pref = max(c.route.attributes.local_pref for c in candidates)
        assert selected.route.attributes.local_pref == best_pref

    @given(candidate_lists())
    def test_deterministic_mode_order_independent(self, candidates):
        import random

        process = DecisionProcess(deterministic_med=True)
        baseline = process.select(candidates)
        shuffled = candidates[:]
        random.Random(7).shuffle(shuffled)
        assert process.select(shuffled) is baseline
