"""Randomized consistency checks on BGP speakers.

A seeded random workload (originations, withdrawals, session flaps)
drives a small simulated network; after every convergence the suite
asserts the protocol invariants that hold on real routers. This is the
closest thing to a model check the substrate gets, and it exercises the
interaction paths unit tests cannot enumerate.
"""

import random

import pytest

from repro.net.prefix import Prefix, parse_address
from repro.simulator.network import Network


def build_mesh(seed: int) -> tuple[Network, list]:
    """A five-router two-AS topology with route reflection."""
    net = Network()
    # AS 100: reflector + two clients; AS 200: two border routers.
    rr = net.add_router("rr", 100, parse_address("10.0.0.1"),
                        route_reflector=True)
    c1 = net.add_router("c1", 100, parse_address("10.0.0.2"))
    c2 = net.add_router("c2", 100, parse_address("10.0.0.3"))
    b1 = net.add_router("b1", 200, parse_address("10.0.1.1"))
    b2 = net.add_router("b2", 200, parse_address("10.0.1.2"))
    net.connect(rr, c1, a_sees_client=True)
    net.connect(rr, c2, a_sees_client=True)
    net.connect(c1, b1)
    net.connect(c2, b2)
    net.connect(b1, b2)
    return net, [rr, c1, c2, b1, b2]


def random_workload(net: Network, routers, rng: random.Random, steps: int):
    """Apply *steps* random operations, converging after each."""
    prefixes = [Prefix(0xC0000200 + i * 256, 24) for i in range(6)]
    originated: dict[tuple[int, Prefix], bool] = {}
    up: dict[tuple[int, int], bool] = {}
    for step in range(steps):
        op = rng.choice(["originate", "withdraw", "flap", "restore"])
        router = rng.choice(routers)
        prefix = rng.choice(prefixes)
        key = (router.address, prefix)
        if op == "originate" and not originated.get(key):
            net.originate(router, [prefix])
            originated[key] = True
        elif op == "withdraw" and originated.get(key):
            out = router.withdraw_origination(prefix, net.engine.now)
            net.dispatch(router, out)
            originated[key] = False
        elif op == "flap":
            peers = [
                a for a, n in router.neighbors.items()
                if n.session.is_established and a in net.routers
            ]
            if peers:
                peer = rng.choice(peers)
                net.fail_session(router, peer)
                up[(router.address, peer)] = False
        elif op == "restore":
            down = [
                a for a, n in router.neighbors.items()
                if not n.session.is_established and a in net.routers
            ]
            if down:
                peer = rng.choice(down)
                net.restore_session(router, peer)
                up[(router.address, peer)] = True
        net.run()
        check_invariants(net, routers)


def check_invariants(net: Network, routers) -> None:
    for router in routers:
        # 1. Every Loc-RIB candidate from a remote peer must still be in
        #    that peer's Adj-RIB-In, and the session must be up.
        for route in router.loc_rib.all_routes():
            if route.peer == 0:
                continue
            neighbor = router.neighbor(route.peer)
            assert neighbor.session.is_established, (
                f"{router.name}: candidate from down session"
            )
            assert neighbor.adj_rib_in.get(route.prefix) is not None

        # 2. The selected best is among the candidates.
        for best in router.loc_rib.best_routes():
            candidates = router.loc_rib.candidates(best.prefix)
            assert best in candidates

        # 3. adj_rib_out is consistent: everything announced to a peer
        #    equals the current export of the current best route.
        for neighbor in router.neighbors.values():
            for prefix, sent in neighbor.adj_rib_out.items():
                best = router.best_route(prefix)
                assert best is not None, (
                    f"{router.name} announced {prefix} but has no best"
                )
                expected = router._export_route(neighbor, best)
                assert expected == sent, (
                    f"{router.name}->{neighbor.address:#x} stale export"
                )

        # 4. No AS-path loops anywhere.
        for route in router.loc_rib.all_routes():
            assert not route.attributes.as_path.has_loop(router.asn)


@pytest.mark.parametrize("seed", [1, 7, 42, 1234, 99991])
def test_random_workload_preserves_invariants(seed):
    rng = random.Random(seed)
    net, routers = build_mesh(seed)
    random_workload(net, routers, rng, steps=40)


def test_full_withdrawal_leaves_clean_state():
    """After originating and withdrawing everything, all RIBs drain."""
    net, routers = build_mesh(5)
    prefixes = [Prefix(0xC0000200 + i * 256, 24) for i in range(4)]
    for router in routers:
        for prefix in prefixes:
            net.originate(router, [prefix])
    net.run()
    check_invariants(net, routers)
    for router in routers:
        for prefix in prefixes:
            out = router.withdraw_origination(prefix, net.engine.now)
            net.dispatch(router, out)
    net.run()
    for router in routers:
        assert router.table_size() == 0, router.name
        for neighbor in router.neighbors.values():
            assert len(neighbor.adj_rib_in) == 0
            assert not neighbor.adj_rib_out
