"""Unit tests for the BGP session FSM."""

import pytest

from repro.bgp.errors import SessionError
from repro.bgp.session import BGPSession, SessionState
from repro.net.message import NotificationCode


def make_session(**overrides) -> BGPSession:
    defaults = dict(
        local_address=1,
        peer_address=2,
        peer_asn=209,
        local_asn=11423,
    )
    defaults.update(overrides)
    return BGPSession(**defaults)


class TestLifecycle:
    def test_initial_state(self):
        session = make_session()
        assert session.state is SessionState.IDLE
        assert not session.is_established

    def test_full_establishment(self):
        session = make_session()
        session.start(0.0)
        assert session.state is SessionState.CONNECT
        session.open_sent(0.1)
        assert session.state is SessionState.OPEN_SENT
        session.establish(0.2)
        assert session.is_established
        assert session.last_keepalive == 0.2

    def test_establish_directly(self):
        session = make_session()
        session.establish_directly(1.0)
        assert session.is_established

    def test_out_of_order_transitions_rejected(self):
        session = make_session()
        with pytest.raises(SessionError):
            session.open_sent(0.0)
        with pytest.raises(SessionError):
            session.establish(0.0)
        session.establish_directly(0.0)
        with pytest.raises(SessionError):
            session.start(0.1)

    def test_close_records_flap(self):
        session = make_session()
        session.establish_directly(0.0)
        session.close(5.0)
        assert session.state is SessionState.IDLE
        assert session.flap_count == 1

    def test_close_when_idle_is_noop(self):
        session = make_session()
        session.close(0.0)
        assert session.transitions == []

    def test_flap_cycles(self):
        session = make_session()
        session.establish_directly(0.0)
        for i in range(5):
            session.flap(down_at=60.0 * i + 30, up_at=60.0 * i + 40)
        assert session.flap_count == 5
        assert session.is_established

    def test_flap_rejects_time_travel(self):
        session = make_session()
        session.establish_directly(0.0)
        with pytest.raises(SessionError):
            session.flap(down_at=10.0, up_at=5.0)

    def test_transitions_recorded(self):
        session = make_session()
        session.establish_directly(0.0)
        session.close(9.0, NotificationCode.CEASE)
        reasons = [t.reason for t in session.transitions]
        assert reasons == ["admin up", "open sent", "established", "cease"]


class TestEbgpDetection:
    def test_ebgp(self):
        assert make_session().is_ebgp

    def test_ibgp(self):
        assert not make_session(peer_asn=11423).is_ebgp


class TestHoldTimer:
    def test_expiry_closes_session(self):
        session = make_session(hold_time=90.0)
        session.establish_directly(0.0)
        assert not session.check_hold_timer(60.0)
        assert session.check_hold_timer(91.0)
        assert session.state is SessionState.IDLE
        assert session.transitions[-1].reason == "hold-timer-expired"

    def test_keepalive_refreshes(self):
        session = make_session(hold_time=90.0)
        session.establish_directly(0.0)
        session.keepalive(80.0)
        assert not session.check_hold_timer(150.0)
        assert session.check_hold_timer(171.0)

    def test_disabled_hold_timer(self):
        session = make_session(hold_time=None)
        session.establish_directly(0.0)
        assert not session.check_hold_timer(1e9)

    def test_keepalive_requires_established(self):
        with pytest.raises(SessionError):
            make_session().keepalive(0.0)


class TestMaxPrefix:
    def test_limit_trips(self):
        session = make_session(max_prefixes=100)
        session.establish_directly(0.0)
        assert not session.note_prefixes(100, 1.0)
        assert session.note_prefixes(1, 2.0)
        assert session.state is SessionState.IDLE
        assert session.transitions[-1].reason == "max-prefix-exceeded"
        assert session.prefix_count == 0

    def test_withdrawals_decrement(self):
        session = make_session(max_prefixes=100)
        session.establish_directly(0.0)
        session.note_prefixes(90, 1.0)
        session.note_withdrawn(50)
        assert not session.note_prefixes(55, 2.0)

    def test_withdrawn_never_negative(self):
        session = make_session()
        session.establish_directly(0.0)
        session.note_withdrawn(5)
        assert session.prefix_count == 0

    def test_no_limit(self):
        session = make_session(max_prefixes=None)
        session.establish_directly(0.0)
        assert not session.note_prefixes(10_000_000, 1.0)

    def test_prefixes_require_established(self):
        with pytest.raises(SessionError):
            make_session().note_prefixes(1, 0.0)
