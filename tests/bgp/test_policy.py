"""Unit tests for the routing policy engine."""

import pytest

from repro.bgp.errors import PolicyError
from repro.bgp.policy import (
    PERMIT_ALL,
    AddCommunity,
    ClearCommunities,
    MatchASInPath,
    MatchCommunity,
    MatchLocallyOriginated,
    MatchNeighborAS,
    MatchPrefixList,
    Policy,
    PolicyContext,
    PrefixListEntry,
    PrependASPath,
    RemoveCommunity,
    RouteMap,
    RouteMapClause,
    SetLocalPref,
    SetMED,
    SetNexthop,
    community_list,
)
from repro.net.aspath import ASPath
from repro.net.attributes import Community, PathAttributes
from repro.net.prefix import Prefix, parse_address

P = Prefix.parse("192.0.2.0/24")


def attrs(path: str = "11423 209", communities=()) -> PathAttributes:
    return PathAttributes(
        nexthop=parse_address("128.32.0.66"),
        as_path=ASPath.parse(path),
        communities=[Community.parse(c) for c in communities],
    )


CTX = PolicyContext(neighbor_as=11423, peer_address=parse_address("128.32.1.3"))


class TestPrefixListEntry:
    def test_exact_match(self):
        entry = PrefixListEntry(P)
        assert entry.matches(P)
        assert not entry.matches(Prefix.parse("192.0.2.0/25"))

    def test_le_extends_to_more_specifics(self):
        entry = PrefixListEntry(Prefix.parse("10.0.0.0/8"), le=24)
        assert entry.matches(Prefix.parse("10.0.0.0/8"))
        assert entry.matches(Prefix.parse("10.1.0.0/16"))
        assert not entry.matches(Prefix.parse("10.1.1.0/25"))
        assert not entry.matches(Prefix.parse("11.0.0.0/8"))

    def test_ge_excludes_short(self):
        entry = PrefixListEntry(Prefix.parse("10.0.0.0/8"), ge=16, le=24)
        assert not entry.matches(Prefix.parse("10.0.0.0/8"))
        assert entry.matches(Prefix.parse("10.1.0.0/16"))

    def test_ge_without_le_runs_to_32(self):
        entry = PrefixListEntry(Prefix.parse("10.0.0.0/8"), ge=31)
        assert entry.matches(Prefix.parse("10.0.0.2/31"))
        assert entry.matches(Prefix.parse("10.0.0.1/32"))


class TestMatchConditions:
    def test_match_prefix_list(self):
        condition = MatchPrefixList.exact([P])
        assert condition.matches(P, attrs(), CTX)
        assert not condition.matches(Prefix.parse("198.51.100.0/24"), attrs(), CTX)

    def test_match_community_any(self):
        condition = MatchCommunity(community_list("11423:65350", "11423:65351"))
        assert condition.matches(P, attrs(communities=["11423:65350"]), CTX)
        assert not condition.matches(P, attrs(), CTX)

    def test_match_community_all(self):
        condition = MatchCommunity(
            community_list("1:1", "1:2"), require_all=True
        )
        assert condition.matches(P, attrs(communities=["1:1", "1:2"]), CTX)
        assert not condition.matches(P, attrs(communities=["1:1"]), CTX)

    def test_match_neighbor_as(self):
        assert MatchNeighborAS(11423).matches(P, attrs(), CTX)
        assert not MatchNeighborAS(209).matches(P, attrs(), CTX)

    def test_match_as_in_path(self):
        assert MatchASInPath(209).matches(P, attrs(), CTX)
        assert not MatchASInPath(701).matches(P, attrs(), CTX)

    def test_match_locally_originated(self):
        assert MatchLocallyOriginated().matches(P, attrs(path=""), CTX)
        assert not MatchLocallyOriginated().matches(P, attrs(), CTX)


class TestActions:
    def test_set_local_pref(self):
        assert SetLocalPref(80).apply(attrs()).local_pref == 80

    def test_set_med(self):
        assert SetMED(30).apply(attrs()).med == 30
        assert SetMED(None).apply(SetMED(30).apply(attrs())).med is None

    def test_community_actions(self):
        tag = Community.parse("11423:65300")
        tagged = AddCommunity(tag).apply(attrs())
        assert tag in tagged.communities
        untagged = RemoveCommunity(tag).apply(tagged)
        assert tag not in untagged.communities
        assert ClearCommunities().apply(tagged).communities == frozenset()

    def test_prepend(self):
        result = PrependASPath(11423, count=2).apply(attrs(path="209"))
        assert result.as_path.sequence == (11423, 11423, 209)

    def test_set_nexthop(self):
        nh = parse_address("10.9.9.9")
        assert SetNexthop(nh).apply(attrs()).nexthop == nh


class TestRouteMap:
    def test_first_match_wins(self):
        route_map = RouteMap(
            "test",
            (
                RouteMapClause(
                    permit=True,
                    matches=(MatchCommunity(community_list("11423:65350")),),
                    actions=(SetLocalPref(80),),
                ),
                RouteMapClause(permit=True, actions=(SetLocalPref(70),)),
            ),
        )
        tagged = route_map.apply(P, attrs(communities=["11423:65350"]), CTX)
        untagged = route_map.apply(P, attrs(), CTX)
        assert tagged.local_pref == 80
        assert untagged.local_pref == 70

    def test_deny_clause(self):
        route_map = RouteMap(
            "deny-209",
            (
                RouteMapClause(permit=False, matches=(MatchASInPath(209),)),
                RouteMapClause(permit=True),
            ),
        )
        assert route_map.apply(P, attrs(), CTX) is None
        assert route_map.apply(P, attrs(path="11423 701"), CTX) is not None

    def test_implicit_deny_at_end(self):
        route_map = RouteMap(
            "only-local",
            (RouteMapClause(permit=True, matches=(MatchLocallyOriginated(),)),),
        )
        assert route_map.apply(P, attrs(), CTX) is None
        assert route_map.apply(P, attrs(path=""), CTX) is not None

    def test_empty_clause_matches_everything(self):
        assert PERMIT_ALL.apply(P, attrs()) == attrs()

    def test_empty_route_map_denies(self):
        assert RouteMap("empty").apply(P, attrs()) is None


class TestPolicy:
    def test_default_policy_permits(self):
        policy = Policy()
        assert policy.import_route(P, attrs()) == attrs()
        assert policy.export_route(P, attrs()) == attrs()

    def test_import_map_applies(self):
        policy = Policy(
            import_map=RouteMap(
                "lp", (RouteMapClause(actions=(SetLocalPref(200),)),)
            )
        )
        assert policy.import_route(P, attrs()).local_pref == 200

    def test_community_list_requires_tags(self):
        with pytest.raises(PolicyError):
            community_list()
